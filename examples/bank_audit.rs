//! Inconsistent analysis (histories H1/H2): run a transfer concurrently
//! with an audit at every isolation level and report the total each audit
//! observed.  Levels that permit dirty or fuzzy reads report totals of 60
//! or 140; the stronger levels (and the multi-version levels) always report
//! the invariant 100.
//!
//! ```bash
//! cargo run --example bank_audit
//! ```

use ansi_isolation_critique::prelude::*;
use critique_storage::Row;

/// Run the H1-style interleaving at one level and return the audited total.
fn audited_total(level: IsolationLevel) -> i64 {
    let db = Database::new(level);
    let setup = db.begin();
    let x = setup
        .insert("accounts", Row::new().with("balance", 50))
        .unwrap();
    let y = setup
        .insert("accounts", Row::new().with("balance", 50))
        .unwrap();
    setup.commit().unwrap();

    // T1 transfers 40 from x to y; T2 audits in the middle.
    let t1 = db.begin();
    let _ = t1.update("accounts", x, Row::new().with("balance", 10));

    let t2 = db.begin();
    let read = |row| -> Option<i64> {
        match t2.read("accounts", row) {
            Ok(r) => r.and_then(|r| r.get_int("balance")),
            Err(_) => None, // blocked: the audit waits for the transfer
        }
    };
    let mut seen_x = read(x);
    let _ = t1.update("accounts", y, Row::new().with("balance", 90));
    let _ = t1.commit();
    if seen_x.is_none() {
        seen_x = read(x);
    }
    let seen_y = read(y);
    let _ = t2.commit();
    seen_x.unwrap_or(0) + seen_y.unwrap_or(0)
}

fn main() {
    println!("Inconsistent analysis: total balance observed by a concurrent audit");
    println!("(the invariant is 100; anything else is the paper's 'inconsistent analysis')\n");
    for level in IsolationLevel::ALL {
        let total = audited_total(level);
        let verdict = if total == 100 {
            "consistent"
        } else {
            "INCONSISTENT"
        };
        println!(
            "  {:<26} audit total = {:<4} {}",
            level.name(),
            total,
            verdict
        );
    }
}
