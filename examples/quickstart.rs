//! Quickstart: open a database, run transactions at different isolation
//! levels, inspect the recorded history, and detect phenomena.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use ansi_isolation_critique::prelude::*;
use critique_storage::Row;

fn main() {
    // 1. A database running at READ COMMITTED.
    let db = Database::new(IsolationLevel::ReadCommitted);
    let setup = db.begin();
    let x = setup
        .insert("accounts", Row::new().with("balance", 50))
        .unwrap();
    let y = setup
        .insert("accounts", Row::new().with("balance", 50))
        .unwrap();
    setup.commit().unwrap();
    db.clear_history();

    // 2. Interleave a transfer (T1) with an audit (T2) — the paper's H2.
    let t1 = db.begin();
    let t2 = db.begin();
    let seen_x = t2
        .read("accounts", x)
        .unwrap()
        .unwrap()
        .get_int("balance")
        .unwrap();
    t1.update("accounts", x, Row::new().with("balance", 10))
        .unwrap();
    t1.update("accounts", y, Row::new().with("balance", 90))
        .unwrap();
    t1.commit().unwrap();
    let seen_y = t2
        .read("accounts", y)
        .unwrap()
        .unwrap()
        .get_int("balance")
        .unwrap();
    t2.commit().unwrap();

    println!(
        "audit at READ COMMITTED observed x + y = {}",
        seen_x + seen_y
    );

    // 3. The recorded history, in the paper's notation, and the phenomena
    //    it exhibits.
    let history = db.recorded_history();
    println!("recorded history: {history}");
    for phenomenon in Phenomenon::ALL {
        if detect::exhibits(&history, phenomenon) {
            println!("  exhibits {phenomenon}");
        }
    }

    // 4. The same interleaving under Snapshot Isolation reads a consistent
    //    snapshot.
    let db = Database::new(IsolationLevel::SnapshotIsolation);
    let setup = db.begin();
    let x = setup
        .insert("accounts", Row::new().with("balance", 50))
        .unwrap();
    let y = setup
        .insert("accounts", Row::new().with("balance", 50))
        .unwrap();
    setup.commit().unwrap();

    let t1 = db.begin();
    let t2 = db.begin();
    let seen_x = t2
        .read("accounts", x)
        .unwrap()
        .unwrap()
        .get_int("balance")
        .unwrap();
    t1.update("accounts", x, Row::new().with("balance", 10))
        .unwrap();
    t1.update("accounts", y, Row::new().with("balance", 90))
        .unwrap();
    t1.commit().unwrap();
    let seen_y = t2
        .read("accounts", y)
        .unwrap()
        .unwrap()
        .get_int("balance")
        .unwrap();
    t2.commit().unwrap();
    println!(
        "audit at Snapshot Isolation observed x + y = {}",
        seen_x + seen_y
    );

    // 5. The paper's canonical histories are built in; check H1 directly.
    let h1 = critique_history::canonical::h1();
    println!(
        "H1 = {h1}\n  serializable: {}\n  violates P1: {}",
        conflict_serializable(&h1).is_serializable(),
        detect::exhibits(&h1, Phenomenon::P1)
    );
}
