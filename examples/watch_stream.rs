//! Watchers: observe committed changes with the paper's isolation
//! guarantees.
//!
//! A [`Watcher`] is a read-only observer registered on the database; at
//! each commit it receives the *net committed* row images — never a dirty
//! value (no P1 for observers), never anything from an aborted
//! transaction, and always in commit-timestamp order.  This example
//! registers all three scopes (key, table, predicate), runs a transfer
//! and an aborted tamper attempt, and prints what each watcher saw.
//!
//! ```bash
//! cargo run --example watch_stream
//! ```

use ansi_isolation_critique::prelude::*;
use critique_storage::{Comparison, Condition, Row};

fn main() {
    let db = Database::new(IsolationLevel::SnapshotIsolation);

    // Seed two accounts.
    let setup = db.begin();
    let x = setup
        .insert("accounts", Row::new().with("balance", 50))
        .unwrap();
    let y = setup
        .insert("accounts", Row::new().with("balance", 50))
        .unwrap();
    setup.commit().unwrap();

    // Three watchers, three scopes.  Registration is cheap: a watcher is a
    // queue the commit path fans out into, not a polling thread.
    let on_x = db.watch_key("accounts", x);
    let on_table = db.watch_table("accounts");
    let on_rich = db.watch_predicate(
        "accounts",
        Condition::compare("balance", Comparison::Gt, 80),
    );

    // A committed transfer: x -= 40, y += 40.
    let transfer = db.begin();
    transfer
        .update("accounts", x, Row::new().with("balance", 10))
        .unwrap();
    transfer
        .update("accounts", y, Row::new().with("balance", 90))
        .unwrap();
    transfer.commit().unwrap();

    // An aborted tamper attempt: watchers never hear about it — an
    // observer cannot exhibit P1 (dirty read) by construction.
    let tamper = db.begin();
    tamper
        .update("accounts", x, Row::new().with("balance", 1_000_000))
        .unwrap();
    tamper.abort().unwrap();

    for (name, watcher) in [
        ("key x", &on_x),
        ("table", &on_table),
        ("balance > 80", &on_rich),
    ] {
        println!("watcher on {name}:");
        for event in watcher.drain() {
            println!("  commit ts={} by {}", event.commit_ts.0, event.txn.0);
            for change in &event.changes {
                println!(
                    "    {} row {}: {:?} -> {:?}",
                    change.kind,
                    change.row.0,
                    change.before.as_ref().and_then(|r| r.get_int("balance")),
                    change.after.as_ref().and_then(|r| r.get_int("balance")),
                );
            }
        }
    }

    // The key watcher saw only x; the predicate watcher saw only the row
    // that *ended up* over 80 (y); nobody saw the aborted million.
    assert_eq!(on_x.pending(), 0);
    assert_eq!(on_table.pending(), 0);
    println!("no watcher observed the aborted write — P1-free by construction");
}
