//! Hermitage-style anomaly matrix: run every anomaly scenario against every
//! isolation level and print the observed possibility matrix next to the
//! paper's Table 4, cell by cell.
//!
//! ```bash
//! cargo run --example anomaly_matrix
//! ```

use ansi_isolation_critique::harness::matrix::{compare_table4, observed_extended};

fn main() {
    println!("{}", observed_extended().to_text());
    let comparison = compare_table4();
    println!("{}", comparison.summary());
    println!(
        "Observed Table 4 agrees with the paper on {}/{} cells.",
        comparison.matching(),
        comparison.total()
    );
}
