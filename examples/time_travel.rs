//! Time travel under Snapshot Isolation (Section 4.2): a reader with an old
//! start timestamp takes a historical perspective of the database while
//! never blocking, and never being blocked by, concurrent writers.
//!
//! ```bash
//! cargo run --example time_travel
//! ```

use ansi_isolation_critique::prelude::*;
use critique_storage::Row;

fn main() {
    let db = Database::new(IsolationLevel::SnapshotIsolation);
    let setup = db.begin();
    let account = setup
        .insert("accounts", Row::new().with("balance", 100))
        .unwrap();
    setup.commit().unwrap();

    // The historian starts now and keeps its snapshot for the whole run.
    let historian = db.begin();

    println!("applying 10 deposits of 10 while the historian holds its snapshot...");
    for i in 1..=10 {
        let teller = db.begin();
        let balance = teller
            .read("accounts", account)
            .unwrap()
            .unwrap()
            .get_int("balance")
            .unwrap();
        teller
            .update(
                "accounts",
                account,
                Row::new().with("balance", balance + 10),
            )
            .unwrap();
        teller.commit().unwrap();
        if i % 5 == 0 {
            let seen = historian
                .read("accounts", account)
                .unwrap()
                .unwrap()
                .get_int("balance")
                .unwrap();
            println!("  after {i} deposits the historian still sees {seen}");
        }
    }

    let current = db
        .read_committed("accounts", account)
        .unwrap()
        .get_int("balance")
        .unwrap();
    let historical = historian
        .read("accounts", account)
        .unwrap()
        .unwrap()
        .get_int("balance")
        .unwrap();
    historian.commit().unwrap();

    println!("latest committed balance: {current}");
    println!("historian's view (as of its start timestamp): {historical}");
    println!(
        "the store currently holds {} versions across all rows",
        db.store().version_count()
    );

    // An update transaction with an old snapshot, however, aborts if it
    // tries to write data that newer transactions have updated.
    let stale_writer = {
        let t = db.begin();
        t.read("accounts", account).unwrap();
        t
    };
    let racer = db.begin();
    racer
        .update("accounts", account, Row::new().with("balance", current + 1))
        .unwrap();
    racer.commit().unwrap();
    stale_writer
        .update("accounts", account, Row::new().with("balance", 0))
        .unwrap();
    match stale_writer.commit() {
        Err(TxnError::FirstCommitterConflict { .. }) => {
            println!("stale update transaction correctly aborted by First-Committer-Wins")
        }
        other => println!("unexpected outcome for the stale writer: {other:?}"),
    }
}
