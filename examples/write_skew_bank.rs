//! Write skew (history H5): a bank allows individual balances to go
//! negative as long as the *sum* of a customer's accounts stays positive.
//! Two concurrent withdrawals each check the constraint and proceed — under
//! Snapshot Isolation both commit and the constraint is violated; under
//! SERIALIZABLE (or REPEATABLE READ) one of them is stopped.
//!
//! ```bash
//! cargo run --example write_skew_bank
//! ```

use ansi_isolation_critique::prelude::*;
use critique_storage::Row;

fn run(level: IsolationLevel) -> (i64, &'static str) {
    let db = Database::new(level);
    let setup = db.begin();
    let x = setup
        .insert("accounts", Row::new().with("balance", 50))
        .unwrap();
    let y = setup
        .insert("accounts", Row::new().with("balance", 50))
        .unwrap();
    setup.commit().unwrap();

    let withdraw = |victim, other| -> &'static str {
        let t = db.begin();
        let read = |row| {
            t.read("accounts", row)
                .ok()
                .flatten()
                .and_then(|r| r.get_int("balance"))
        };
        let (Some(a), Some(b)) = (read(victim), read(other)) else {
            let _ = t.abort();
            return "blocked while checking";
        };
        if a + b - 90 <= 0 {
            let _ = t.abort();
            return "refused by application";
        }
        match t.update("accounts", victim, Row::new().with("balance", a - 90)) {
            Ok(()) => match t.commit() {
                Ok(()) => "committed",
                Err(TxnError::FirstCommitterConflict { .. }) => "aborted (first-committer-wins)",
                Err(_) => "aborted",
            },
            Err(TxnError::WouldBlock { .. }) => {
                let _ = t.abort();
                "blocked by a lock"
            }
            Err(_) => "aborted",
        }
    };

    // The two withdrawals run "concurrently": both perform their reads
    // before either writes (the H5 interleaving).
    let t1 = db.begin();
    let t2 = db.begin();
    let r = |t: &Transaction, row| {
        t.read("accounts", row)
            .ok()
            .flatten()
            .and_then(|r| r.get_int("balance"))
            .unwrap_or(50)
    };
    let sum1 = r(&t1, x) + r(&t1, y);
    let sum2 = r(&t2, x) + r(&t2, y);
    let outcome1 = if sum1 > 90 {
        match t1
            .update("accounts", y, Row::new().with("balance", 50 - 90))
            .and_then(|_| t1.commit())
        {
            Ok(()) => "committed",
            Err(TxnError::WouldBlock { .. }) => "blocked",
            Err(_) => "aborted",
        }
    } else {
        "refused"
    };
    let outcome2 = if sum2 > 90 {
        match t2
            .update("accounts", x, Row::new().with("balance", 50 - 90))
            .and_then(|_| t2.commit())
        {
            Ok(()) => "committed",
            Err(TxnError::WouldBlock { .. }) => "blocked",
            Err(_) => "aborted",
        }
    } else {
        "refused"
    };
    let _ = withdraw; // the helper documents the intended application logic

    let total = db.sum_committed(
        &critique_storage::RowPredicate::whole_table("accounts"),
        "balance",
    );
    let detail = match (outcome1, outcome2) {
        ("committed", "committed") => "both withdrawals committed",
        _ => "one withdrawal was stopped",
    };
    (total, detail)
}

fn main() {
    println!("Write skew (H5): constraint is x + y > 0, both start at 50, each txn withdraws 90\n");
    for level in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::RepeatableRead,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializable,
    ] {
        let (total, detail) = run(level);
        let verdict = if total > 0 {
            "constraint holds"
        } else {
            "CONSTRAINT VIOLATED"
        };
        println!(
            "  {:<22} final x + y = {:<5} ({detail}) -> {verdict}",
            level.name(),
            total
        );
    }
}
