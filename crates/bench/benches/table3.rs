//! Table 3: regenerate the P0-P3 matrix from executed scenarios and
//! benchmark the per-cell observation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use critique_core::{IsolationLevel, Phenomenon};
use critique_harness::matrix::{compare_table3, observe_cell};

fn bench(c: &mut Criterion) {
    let comparison = compare_table3();
    println!("{}", critique_harness::observed_table3().to_text());
    println!("{}", comparison.summary());

    c.bench_function("table3/observe_full_matrix", |b| {
        b.iter(critique_harness::observed_table3)
    });
    c.bench_function("table3/observe_cell_rc_p2", |b| {
        b.iter(|| observe_cell(IsolationLevel::ReadCommitted, Phenomenon::P2))
    });
    c.bench_function("table3/observe_cell_serializable_p3", |b| {
        b.iter(|| observe_cell(IsolationLevel::Serializable, Phenomenon::P3))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
