//! Table 4: regenerate the full anomaly matrix from executed scenarios,
//! print the observed-vs-paper comparison, and benchmark each scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use critique_core::IsolationLevel;
use critique_harness::matrix::compare_table4;
use critique_workloads::AnomalyScenario;

fn bench(c: &mut Criterion) {
    let comparison = compare_table4();
    println!("{}", critique_harness::observed_table4().to_text());
    println!("{}", comparison.summary());

    let mut group = c.benchmark_group("table4/scenario");
    for scenario in [
        AnomalyScenario::DirtyRead,
        AnomalyScenario::LostUpdate,
        AnomalyScenario::PhantomAnsi,
        AnomalyScenario::WriteSkew,
    ] {
        for level in [
            IsolationLevel::ReadCommitted,
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::Serializable,
        ] {
            group.bench_with_input(
                BenchmarkId::new(scenario.name().replace(' ', "_"), level.name()),
                &level,
                |b, level| b.iter(|| scenario.run(*level).outcome),
            );
        }
    }
    group.finish();

    c.bench_function("table4/full_matrix", |b| {
        b.iter(critique_harness::observed_table4)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
