//! Thread-count scaling sweep: the sharded substrate's win, measured.
//!
//! Runs [`critique_workloads::ScalingReport`] over 1/2/4/8 workers at READ
//! COMMITTED, for the sharded substrate and for the `shards = 1`
//! configuration that reproduces the old global-lock layout, prints the
//! series, and writes the hand-rolled JSON to `BENCH_scaling.json` at the
//! workspace root so the perf trajectory is tracked from PR to PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use critique_bench::{scaling_workload, SCALING_THREADS};
use critique_core::IsolationLevel;
use critique_workloads::ScalingReport;

/// Where the machine-readable sweep results land (workspace root).
const OUTPUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");

fn run_sweep() -> ScalingReport {
    ScalingReport::run(
        scaling_workload(),
        IsolationLevel::ReadCommitted,
        &SCALING_THREADS,
        &[
            (scaling_workload().shards, "sharded"),
            (1, "single-shard baseline"),
        ],
        3,
    )
}

fn print_and_record() {
    let report = run_sweep();
    print!("{}", report.to_text());
    match std::fs::write(OUTPUT_PATH, report.to_json()) {
        Ok(()) => println!("scaling sweep recorded in {OUTPUT_PATH}"),
        Err(e) => eprintln!("could not write {OUTPUT_PATH}: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    print_and_record();

    // Criterion view of the same shape: one committed-throughput
    // measurement per worker count on the sharded substrate.
    let mut group = c.benchmark_group("scaling/read_committed");
    group.sample_size(10);
    for threads in SCALING_THREADS {
        let workload = scaling_workload().with_threads(threads);
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &workload,
            |b, workload| b.iter(|| workload.run(IsolationLevel::ReadCommitted).committed),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
