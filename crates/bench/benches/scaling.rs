//! Thread-count scaling sweeps and the contended-handoff comparison.
//!
//! Runs [`critique_workloads::ScalingReport`] over 1/2/4/8 workers at READ
//! COMMITTED, SNAPSHOT ISOLATION, and SERIALIZABLE — for the sharded
//! chain-store substrate, for the `shards = 1` configuration that
//! reproduces the old global-lock layout, and for the log-structured
//! backend behind the same schedulers (the `StorageBackend` comparison:
//! same isolation verdicts, different storage representation and cost) —
//! plus the [`HandoffComparison`]: a hot-key workload under FIFO direct
//! handoff vs the wake-all baseline, recorded next to the sweeps.  On
//! this read-modify-write workload the comparison is *bimodal* for
//! DirectHandoff: once a queue forms, the sweep batch-grants compatible
//! Shared locks to several parked readers whose subsequent Exclusive
//! upgrades then deadlock each other (see the ROADMAP's upgrade-deadlock
//! item) — a run either stays out of that mode entirely or cascades
//! through it, and the recorded JSON shows whichever mode the run fell
//! into.  The whole suite is written as hand-rolled JSON to
//! `BENCH_scaling.json` at the workspace root so the perf trajectory is
//! tracked from PR to PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use critique_bench::{
    durable_workload, group_commit_workload, handoff_workload, range_workload, read_heavy_workload,
    scaling_workload, watch_fanout_workload, GROUP_COMMIT_SHARDS, GROUP_COMMIT_WINDOW_MICROS,
    RANGE_FRACTIONS, SCALING_LEVELS, SCALING_THREADS, WATCH_FANOUT_COUNTS,
};
use critique_core::IsolationLevel;
use critique_engine::{Durability, GroupCommit, ReadPath};
use critique_workloads::{
    HandoffComparison, RangeComparison, ScalingReport, ScalingSuite, SubstrateConfig,
    WatchFanoutComparison,
};

/// Where the machine-readable suite results land (workspace root).
const OUTPUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");

fn run_suite() -> ScalingSuite {
    let sweeps = SCALING_LEVELS
        .into_iter()
        .map(|level| {
            ScalingReport::run(
                scaling_workload(),
                level,
                &SCALING_THREADS,
                &[
                    SubstrateConfig::mvstore(scaling_workload().shards, "sharded"),
                    SubstrateConfig::mvstore(1, "single-shard baseline"),
                    SubstrateConfig::logstore("logstore"),
                ],
                3,
            )
        })
        .collect();
    // The read-heavy (95/5) series: the same workload on the epoch read
    // path and on the stripe-read-lock baseline, per isolation level, so
    // the cost of the locks the epoch path removed stays measured.
    let read_heavy = SCALING_LEVELS
        .into_iter()
        .map(|level| {
            ScalingReport::run(
                read_heavy_workload(),
                level,
                &SCALING_THREADS,
                &[
                    SubstrateConfig::mvstore(read_heavy_workload().shards, "epoch"),
                    SubstrateConfig::mvstore(read_heavy_workload().shards, "locked baseline")
                        .with_read_path(ReadPath::Locked),
                ],
                3,
            )
        })
        .collect();
    // The durable-logstore series: the same log-structured workload with
    // segments kept in memory and with every commit fsync'd to a
    // write-ahead file, per isolation level, so the durability tax the
    // commit-record protocol pays stays measured from PR to PR.
    let durable = SCALING_LEVELS
        .into_iter()
        .map(|level| {
            ScalingReport::run(
                durable_workload(),
                level,
                &SCALING_THREADS,
                &[
                    SubstrateConfig::logstore("logstore ephemeral"),
                    SubstrateConfig::logstore("logstore fsync").with_durability(Durability::Fsync),
                ],
                3,
            )
        })
        .collect();
    // The group-commit series: the same fsync'd write-heavy workload over
    // the {per-commit, batched} x {single log, partitioned log} grid, per
    // isolation level, so the batcher's amortisation of the fsync tax —
    // and what write-ahead-log partitioning adds on top — stays measured
    // from PR to PR.
    let batched = GroupCommit::On {
        window_micros: GROUP_COMMIT_WINDOW_MICROS,
    };
    let group_commit = SCALING_LEVELS
        .into_iter()
        .map(|level| {
            ScalingReport::run(
                group_commit_workload(),
                level,
                &SCALING_THREADS,
                &[
                    SubstrateConfig::logstore("fsync per-commit")
                        .with_durability(Durability::Fsync)
                        .with_shards(1),
                    SubstrateConfig::logstore("fsync per-commit sharded")
                        .with_durability(Durability::Fsync)
                        .with_shards(GROUP_COMMIT_SHARDS),
                    SubstrateConfig::logstore("fsync batched")
                        .with_durability(Durability::Fsync)
                        .with_group_commit(batched)
                        .with_shards(1),
                    SubstrateConfig::logstore("fsync batched sharded")
                        .with_durability(Durability::Fsync)
                        .with_group_commit(batched)
                        .with_shards(GROUP_COMMIT_SHARDS),
                ],
                3,
            )
        })
        .collect();
    let handoff = HandoffComparison::run(handoff_workload(), IsolationLevel::Serializable, 3);
    let range = RangeComparison::run(
        range_workload(),
        IsolationLevel::Serializable,
        &RANGE_FRACTIONS,
        3,
    );
    // The watcher fan-out comparison: one writer against 1/100/10k table
    // watchers, so the per-subscriber cost of commit-time notification is
    // tracked from PR to PR alongside the rest of the suite.
    let watch_fanout = WatchFanoutComparison::run(
        watch_fanout_workload(),
        IsolationLevel::Serializable,
        &WATCH_FANOUT_COUNTS,
        3,
    );
    ScalingSuite {
        sweeps,
        read_heavy,
        durable,
        group_commit,
        handoff: Some(handoff),
        range: Some(range),
        watch_fanout: Some(watch_fanout),
        host_cpus: ScalingSuite::detect_host_cpus(),
    }
}

fn print_and_record() {
    let suite = run_suite();
    print!("{}", suite.to_text());
    match std::fs::write(OUTPUT_PATH, suite.to_json()) {
        Ok(()) => println!("scaling suite recorded in {OUTPUT_PATH}"),
        Err(e) => eprintln!("could not write {OUTPUT_PATH}: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    print_and_record();

    // Criterion view of the same shape: one committed-throughput
    // measurement per worker count on the sharded substrate.
    let mut group = c.benchmark_group("scaling/read_committed");
    group.sample_size(10);
    for threads in SCALING_THREADS {
        let workload = scaling_workload().with_threads(threads);
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &workload,
            |b, workload| b.iter(|| workload.run(IsolationLevel::ReadCommitted).committed),
        );
    }
    group.finish();

    // And the handoff comparison as its own criterion group.
    let mut group = c.benchmark_group("scaling/contended_handoff");
    group.sample_size(10);
    for policy in [
        critique_engine::GrantPolicy::DirectHandoff,
        critique_engine::GrantPolicy::WakeAll,
    ] {
        let workload = handoff_workload().with_grant(policy);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &workload,
            |b, workload| b.iter(|| workload.run(IsolationLevel::Serializable).committed),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
