//! Microbenchmarks of the substrates: lock manager, MVCC store, history
//! notation/graph machinery.  These back the ablation discussion in
//! DESIGN.md (cost of predicate locks, version-chain reads, detector
//! scaling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use critique_core::detect;
use critique_core::locking::LockDuration;
use critique_history::{DependencyGraph, History, HistoryBuilder};
use critique_lock::{LockManager, LockMode, LockTarget};
use critique_storage::{MvStore, Row, RowId, RowPredicate, TimestampOracle, TxnToken};

fn lock_manager(c: &mut Criterion) {
    c.bench_function("substrate/lock_acquire_release", |b| {
        let lm = LockManager::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let t = TxnToken(i);
            for row in 0..8u64 {
                lm.try_acquire(
                    t,
                    LockTarget::item("accounts", RowId(row)),
                    LockMode::Shared,
                    &[],
                    LockDuration::Long,
                );
            }
            lm.release_all(t);
        })
    });

    c.bench_function("substrate/predicate_lock_conflict_check", |b| {
        let lm = LockManager::new();
        let predicate = RowPredicate::whole_table("accounts");
        lm.try_acquire(
            TxnToken(1),
            LockTarget::predicate(predicate),
            LockMode::Shared,
            &[],
            LockDuration::Long,
        );
        let row = Row::new().with("balance", 1);
        b.iter(|| {
            lm.conflicts_with(
                TxnToken(2),
                &LockTarget::item("accounts", RowId(7)),
                LockMode::Exclusive,
                std::slice::from_ref(&row),
            )
            .len()
        })
    });
}

fn mvcc_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/mvcc");
    for versions in [1u64, 8, 64] {
        group.bench_with_input(
            BenchmarkId::new("snapshot_read_depth", versions),
            &versions,
            |b, &versions| {
                let store = MvStore::new();
                let ts = TimestampOracle::new();
                let id = store.insert("t", TxnToken(0), Row::new().with("value", 0));
                store.commit(TxnToken(0), ts.next());
                for v in 1..versions {
                    store
                        .update("t", TxnToken(v), id, Row::new().with("value", v as i64))
                        .unwrap();
                    store.commit(TxnToken(v), ts.next());
                }
                let early = critique_storage::Timestamp(1);
                b.iter(|| store.get_committed_as_of("t", id, early).is_some())
            },
        );
    }
    group.finish();

    c.bench_function("substrate/mvcc_insert_commit", |b| {
        let store = MvStore::new();
        let ts = TimestampOracle::new();
        let mut i = 1u64;
        b.iter(|| {
            i += 1;
            let t = TxnToken(i);
            store.insert("t", t, Row::new().with("value", i as i64));
            store.commit(t, ts.next());
        })
    });
}

fn random_history(txns: u32, ops_per_txn: u32) -> History {
    // Deterministic pseudo-random interleaving without external RNG state.
    let mut builder = HistoryBuilder::new();
    let mut seed = 0x9e3779b97f4a7c15u64;
    let mut next = || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for round in 0..ops_per_txn {
        for txn in 1..=txns {
            let item = format!("x{}", next() % 8);
            builder = if next() % 2 == 0 {
                builder.read(txn, item)
            } else {
                builder.write(txn, item)
            };
            let _ = round;
        }
    }
    for txn in 1..=txns {
        builder = builder.commit(txn);
    }
    builder.build().expect("well-formed")
}

fn history_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/history");
    for txns in [4u32, 8, 16] {
        let history = random_history(txns, 6);
        group.bench_with_input(BenchmarkId::new("detect_all", txns), &history, |b, h| {
            b.iter(|| detect::detect_all(h).len())
        });
        group.bench_with_input(
            BenchmarkId::new("dependency_graph", txns),
            &history,
            |b, h| b.iter(|| DependencyGraph::from_history(h).edge_count()),
        );
    }
    group.finish();

    c.bench_function("substrate/notation_roundtrip", |b| {
        let text = "r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1";
        b.iter(|| History::parse(text).unwrap().to_notation())
    });
}

criterion_group!(benches, lock_manager, mvcc_store, history_analysis);
criterion_main!(benches);
