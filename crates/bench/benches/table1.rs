//! Table 1 / Section 3: strict vs broad interpretation analysis of the
//! canonical histories.  Prints the verdicts once, then benchmarks the
//! detector + serializability machinery they rely on.

use criterion::{criterion_group, criterion_main, Criterion};
use critique_core::detect;
use critique_core::Phenomenon;
use critique_harness::ansi::ansi_report_text;
use critique_history::{canonical, conflict_serializable};

fn bench(c: &mut Criterion) {
    println!("{}", ansi_report_text());
    println!("{}", critique_core::tables::table1().to_text());

    let histories = canonical::all_named();
    c.bench_function("table1/detect_all_canonical", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for (_, h) in &histories {
                count += detect::detect_all(h).len();
            }
            count
        })
    });
    c.bench_function("table1/serializability_canonical", |b| {
        b.iter(|| {
            histories
                .iter()
                .filter(|(_, h)| conflict_serializable(h).is_serializable())
                .count()
        })
    });
    let h1 = canonical::h1();
    c.bench_function("table1/detect_p1_h1", |b| {
        b.iter(|| detect::detect(&h1, Phenomenon::P1).len())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
