//! Section 4.2's qualitative claims, made measurable: Snapshot Isolation vs
//! the locking levels under varying read/write mix and contention.
//!
//! Printed series (once per run) and Criterion measurements:
//! * committed-transaction throughput per isolation level for read-heavy,
//!   mixed, and write-heavy workloads;
//! * abort rate per level under low and high contention (SI aborts are all
//!   First-Committer-Wins; locking aborts are deadlocks/timeouts);
//! * the long read-only "audit" probe: blocked or not, and whether the
//!   total drifted (SI: never blocked, no drift).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use critique_bench::{bench_workload, THROUGHPUT_LEVELS};
use critique_core::IsolationLevel;

fn print_series() {
    println!("--- Section 4.2: throughput and abort-rate series ---");
    for (label, read_fraction, hot) in [
        ("read-heavy (90% read, low contention)", 0.9, 0.05),
        ("mixed (50% read, moderate contention)", 0.5, 0.2),
        ("write-heavy (10% read, high contention)", 0.1, 0.6),
    ] {
        println!("workload: {label}");
        for level in THROUGHPUT_LEVELS {
            let stats = bench_workload(read_fraction, hot).run(level);
            println!(
                "  {:<25} committed={:4}  abort-rate={:5.1}%  (fcw={}, deadlock={}, timeout={})  {:8.0} txn/s",
                level.name(),
                stats.committed,
                stats.abort_rate() * 100.0,
                stats.aborted_first_committer,
                stats.aborted_deadlock,
                stats.aborted_timeout,
                stats.throughput(),
            );
        }
    }
    println!("--- long read-only audit probe ---");
    for level in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::Serializable,
        IsolationLevel::SnapshotIsolation,
    ] {
        let (blocked, drift) = bench_workload(0.5, 0.2).long_reader_probe(level);
        println!(
            "  {:<25} blocked={:5}  audit drift={}",
            level.name(),
            blocked,
            drift
        );
    }
}

fn bench(c: &mut Criterion) {
    print_series();

    let mut group = c.benchmark_group("si_vs_locking/throughput");
    group.sample_size(10);
    for (mix_label, read_fraction) in [("read_heavy", 0.9), ("write_heavy", 0.1)] {
        for level in THROUGHPUT_LEVELS {
            let workload = bench_workload(read_fraction, 0.2);
            group.bench_with_input(
                BenchmarkId::new(mix_label, level.name()),
                &level,
                |b, level| b.iter(|| workload.run(*level).committed),
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("si_vs_locking/high_contention");
    group.sample_size(10);
    for level in [
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializable,
    ] {
        let workload = bench_workload(0.0, 0.8);
        group.bench_with_input(
            BenchmarkId::from_parameter(level.name()),
            &level,
            |b, level| b.iter(|| workload.run(*level).aborted()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
