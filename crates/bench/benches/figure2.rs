//! Figure 2: compute and print the isolation hierarchy, and benchmark the
//! lattice machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use critique_core::lattice::{compare, Hierarchy};
use critique_core::IsolationLevel;
use critique_harness::figure2_text;

fn bench(c: &mut Criterion) {
    println!("{}", figure2_text());

    c.bench_function("figure2/compute_hasse", |b| b.iter(Hierarchy::compute));
    c.bench_function("figure2/paper_drawing", |b| {
        b.iter(Hierarchy::paper_figure2)
    });
    c.bench_function("figure2/pairwise_compare", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for a in IsolationLevel::ALL {
                for bb in IsolationLevel::ALL {
                    count += compare(a, bb) as usize;
                }
            }
            count
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
