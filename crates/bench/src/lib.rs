//! # critique-bench
//!
//! Criterion benchmark harnesses for the reproduction.  Each paper artefact
//! has its own bench target:
//!
//! | Paper artefact | Bench target | What it measures / prints |
//! |---|---|---|
//! | Table 1 | `table1` | strict-vs-broad interpretation analysis of H1-H5 |
//! | Table 3 | `table3` | regenerating the P0-P3 matrix from executions |
//! | Table 4 | `table4` | regenerating the full anomaly matrix from executions |
//! | Figure 2 | `figure2` | computing the isolation hierarchy |
//! | Section 4.2 claims | `si_vs_locking` | throughput / abort-rate of SI vs locking levels under varying read mix and contention |
//! | substrate | `substrate` | lock manager, MVCC store, and history-analysis microbenchmarks |
//!
//! The benches also print the regenerated tables once per run, so
//! `cargo bench` doubles as the experiment driver behind `EXPERIMENTS.md`.

#![warn(missing_docs)]

use critique_core::IsolationLevel;
use critique_engine::{
    BackendKind, Durability, FairnessPolicy, GrantPolicy, GroupCommit, ReadPath, UpgradeStrategy,
};
use critique_workloads::MixedWorkload;

/// The isolation levels compared in the throughput studies.
pub const THROUGHPUT_LEVELS: [IsolationLevel; 4] = [
    IsolationLevel::ReadCommitted,
    IsolationLevel::RepeatableRead,
    IsolationLevel::Serializable,
    IsolationLevel::SnapshotIsolation,
];

/// A small mixed workload sized for benchmarking (kept modest so
/// `cargo bench` completes quickly while still showing the qualitative
/// shape).
pub fn bench_workload(read_fraction: f64, hot_fraction: f64) -> MixedWorkload {
    MixedWorkload {
        accounts: 32,
        read_fraction,
        ops_per_txn: 4,
        hot_fraction,
        txns_per_thread: 50,
        threads: 4,
        seed: 99,
        think_micros: 0,
        shards: critique_storage::DEFAULT_SHARDS,
        grant: GrantPolicy::DirectHandoff,
        backend: BackendKind::MvStore,
        upgrade: UpgradeStrategy::SharedThenUpgrade,
        range_fraction: 0.0,
        read_path: ReadPath::Epoch,
        durability: Durability::Ephemeral,
        group_commit: GroupCommit::Off,
        fairness: FairnessPolicy::Barging,
        watchers: 0,
    }
}

/// The workload behind the thread-count scaling sweep (`BENCH_scaling.json`):
/// mostly-read, low contention, and — crucially — non-zero client think
/// time, so throughput is bounded by how many transactions the substrate
/// lets overlap rather than by a single worker's CPU speed.
pub fn scaling_workload() -> MixedWorkload {
    MixedWorkload {
        accounts: 256,
        read_fraction: 0.7,
        ops_per_txn: 4,
        hot_fraction: 0.05,
        txns_per_thread: 120,
        threads: 1,
        seed: 1995,
        think_micros: 250,
        shards: critique_storage::DEFAULT_SHARDS,
        grant: GrantPolicy::DirectHandoff,
        backend: BackendKind::MvStore,
        upgrade: UpgradeStrategy::SharedThenUpgrade,
        range_fraction: 0.0,
        read_path: ReadPath::Epoch,
        durability: Durability::Ephemeral,
        group_commit: GroupCommit::Off,
        fairness: FairnessPolicy::Barging,
        watchers: 0,
    }
}

/// The workload behind the read-heavy epoch-vs-locked series
/// (`BENCH_scaling.json`'s `read_heavy` record): the
/// [`MixedWorkload::read_heavy`] 95/5 mix over the scaling sweep's table,
/// with no think time, so the measured difference between the epoch series
/// and the locked-baseline series is exactly what the per-read stripe
/// locks cost on the mix where reads dominate.
pub fn read_heavy_workload() -> MixedWorkload {
    MixedWorkload {
        accounts: 256,
        ops_per_txn: 4,
        hot_fraction: 0.05,
        txns_per_thread: 120,
        threads: 1,
        seed: 1995,
        ..MixedWorkload::read_heavy()
    }
}

/// The worker counts the scaling sweep visits.
pub const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

/// The isolation levels the scaling sweep visits (the ROADMAP's "scaling
/// sweep breadth": READ COMMITTED alone says nothing about how the
/// snapshot and two-phase-locking schedulers scale).
pub const SCALING_LEVELS: [IsolationLevel; 3] = [
    IsolationLevel::ReadCommitted,
    IsolationLevel::SnapshotIsolation,
    IsolationLevel::Serializable,
];

/// The range-scan mixes the point-vs-range comparison visits (`0.0` is
/// the point-only baseline).
pub const RANGE_FRACTIONS: [f64; 2] = [0.0, 0.5];

/// The workload behind the point-vs-range comparison
/// (`BENCH_scaling.json`'s `range_scan` record): the scaling mix without
/// think time, so the measured difference is the cost of routing reads
/// through the ordered index and interval predicate locks rather than
/// idle client gaps.
pub fn range_workload() -> MixedWorkload {
    MixedWorkload {
        accounts: 256,
        read_fraction: 0.7,
        ops_per_txn: 4,
        hot_fraction: 0.05,
        txns_per_thread: 120,
        threads: 4,
        seed: 1995,
        think_micros: 0,
        shards: critique_storage::DEFAULT_SHARDS,
        grant: GrantPolicy::DirectHandoff,
        backend: BackendKind::MvStore,
        upgrade: UpgradeStrategy::UpdateLock,
        range_fraction: 0.0,
        read_path: ReadPath::Epoch,
        durability: Durability::Ephemeral,
        group_commit: GroupCommit::Off,
        fairness: FairnessPolicy::Barging,
        watchers: 0,
    }
}

/// The workload behind the durable-logstore comparison
/// (`BENCH_scaling.json`'s `durable_logstore` record): the scaling mix on
/// the log-structured backend with no think time, run once per
/// [`Durability`] mode, so the measured difference between the series is
/// exactly the fsync tax at each commit boundary.  Kept shorter than the
/// main sweep because every committed transaction in the fsync series is
/// a real `fsync(2)`.
pub fn durable_workload() -> MixedWorkload {
    MixedWorkload {
        accounts: 256,
        read_fraction: 0.7,
        ops_per_txn: 4,
        hot_fraction: 0.05,
        txns_per_thread: 60,
        threads: 1,
        seed: 1995,
        think_micros: 0,
        shards: critique_storage::DEFAULT_SHARDS,
        grant: GrantPolicy::DirectHandoff,
        backend: BackendKind::LogStructured,
        upgrade: UpgradeStrategy::SharedThenUpgrade,
        range_fraction: 0.0,
        read_path: ReadPath::Epoch,
        durability: Durability::Ephemeral,
        group_commit: GroupCommit::Off,
        fairness: FairnessPolicy::Barging,
        watchers: 0,
    }
}

/// The group-commit window the batched bench series runs with.  Kept
/// short: committers that arrive while the leader is busy fsyncing batch
/// anyway, so the window only needs to catch the stragglers — a window
/// longer than the fsync itself would have the leader sleeping past the
/// very cost it amortises.
pub const GROUP_COMMIT_WINDOW_MICROS: u64 = 50;

/// The write-ahead-log shard count the partitioned-log bench series runs
/// with (the single-log legs use 1).
pub const GROUP_COMMIT_SHARDS: usize = 4;

/// The workload behind the group-commit comparison (`BENCH_scaling.json`'s
/// `group_commit` record): a write-heavy fsync'd log-structured mix with
/// no think time, run over the `{per-commit, batched} × {single log,
/// partitioned log}` grid.  Write-heavy because only writing commits pay
/// the fsync the batcher amortises, and multi-worker counts matter
/// because the batch forms from *concurrent* committers parking behind
/// one leader.
pub fn group_commit_workload() -> MixedWorkload {
    MixedWorkload {
        accounts: 256,
        read_fraction: 0.1,
        ops_per_txn: 4,
        hot_fraction: 0.05,
        txns_per_thread: 60,
        threads: 1,
        seed: 1995,
        think_micros: 0,
        shards: 1,
        grant: GrantPolicy::DirectHandoff,
        backend: BackendKind::LogStructured,
        upgrade: UpgradeStrategy::SharedThenUpgrade,
        range_fraction: 0.0,
        read_path: ReadPath::Epoch,
        durability: Durability::Fsync,
        group_commit: GroupCommit::Off,
        fairness: FairnessPolicy::Barging,
        watchers: 0,
    }
}

/// The workload behind the contended-handoff comparison: every worker
/// hammers one hot row with read-modify-write transactions under
/// SERIALIZABLE, so committed throughput is bounded by how fast a release
/// reaches the next waiter — exactly what [`GrantPolicy::DirectHandoff`]
/// vs [`GrantPolicy::WakeAll`] changes.
pub fn handoff_workload() -> MixedWorkload {
    MixedWorkload {
        accounts: 4,
        read_fraction: 0.0,
        ops_per_txn: 2,
        hot_fraction: 1.0,
        txns_per_thread: 150,
        threads: 8,
        seed: 1995,
        think_micros: 0,
        shards: critique_storage::DEFAULT_SHARDS,
        grant: GrantPolicy::DirectHandoff,
        backend: BackendKind::MvStore,
        upgrade: UpgradeStrategy::SharedThenUpgrade,
        range_fraction: 0.0,
        read_path: ReadPath::Epoch,
        durability: Durability::Ephemeral,
        group_commit: GroupCommit::Off,
        fairness: FairnessPolicy::Barging,
        watchers: 0,
    }
}

/// The watcher counts the fan-out comparison visits: one subscriber, a
/// dashboard's worth, and a fleet.
pub const WATCH_FANOUT_COUNTS: [usize; 3] = [1, 100, 10_000];

/// The workload behind the watcher fan-out comparison
/// (`BENCH_scaling.json`'s `watch_fanout` record): one write-only worker
/// committing against `WATCH_FANOUT_COUNTS` table watchers, so the
/// recorded throughput difference between the cells is exactly what the
/// commit path pays to fan one change event out to every subscriber.
pub fn watch_fanout_workload() -> MixedWorkload {
    MixedWorkload {
        accounts: 256,
        read_fraction: 0.0,
        ops_per_txn: 4,
        hot_fraction: 0.05,
        txns_per_thread: 200,
        threads: 1,
        seed: 1995,
        think_micros: 0,
        shards: critique_storage::DEFAULT_SHARDS,
        grant: GrantPolicy::DirectHandoff,
        backend: BackendKind::MvStore,
        upgrade: UpgradeStrategy::SharedThenUpgrade,
        range_fraction: 0.0,
        read_path: ReadPath::Epoch,
        durability: Durability::Ephemeral,
        group_commit: GroupCommit::Off,
        fairness: FairnessPolicy::Barging,
        watchers: 0,
    }
}
