//! Bench smoke gate: prove the scaling recorder works end-to-end and that
//! the committed `BENCH_scaling.json` is not a stale or truncated artefact.
//!
//! Two checks, both fatal on failure (CI runs this as a step):
//!
//! 1. **Recorder round-trip** — run a *reduced* scaling sweep (tiny
//!    workload, two worker counts, one run per point) plus the contended
//!    handoff grid, render the suite with the same hand-rolled
//!    `ScalingSuite::to_json` the real bench uses, and parse the result
//!    with the strict little JSON parser below.  A recorder that emits
//!    unparsable or structurally empty JSON fails here, before it can
//!    silently ship a broken `BENCH_scaling.json`.
//! 2. **Committed-file validation** — parse the `BENCH_scaling.json` at
//!    the workspace root and require every sweep to carry non-empty
//!    series, every series non-empty points, the `durable_logstore`
//!    record to carry both the ephemeral and the fsync series, the
//!    `group_commit` record to cover the full `{per-commit, batched} ×
//!    {single log, partitioned log}` grid, the contended-handoff
//!    record to cover the full `{policy} × {strategy} × {fairness}` grid,
//!    and the `watch_fanout` record to carry a strictly widening
//!    watcher-count ladder with non-zero notification counts.

use critique_core::IsolationLevel;
use critique_engine::{Durability, FairnessPolicy, GrantPolicy, GroupCommit, UpgradeStrategy};
use critique_workloads::{
    HandoffComparison, MixedWorkload, RangeComparison, ScalingReport, ScalingSuite,
    SubstrateConfig, WatchFanoutComparison,
};

/// Where the real bench records the suite (workspace root).
const RECORDED_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");

// ---------------------------------------------------------------------
// A strict, minimal JSON parser (the offline serde shim does not parse;
// the point of this gate is to prove the *hand-rolled* output is valid).
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing bytes at offset {}", parser.pos));
        }
        Ok(value)
    }

    fn skip_whitespace(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != byte {
            return Err(format!(
                "expected {:?} at offset {}, got {:?}",
                byte as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::String(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("invalid number {text:?} at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        // Accumulate raw bytes and decode once at the end, so multi-byte
        // UTF-8 sequences (the level names contain none today, but labels
        // are free text) survive instead of being mangled byte-by-byte.
        let mut out: Vec<u8> = Vec::new();
        loop {
            let byte = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string".to_string())?;
            self.pos += 1;
            match byte {
                b'"' => {
                    return String::from_utf8(out)
                        .map_err(|e| format!("invalid UTF-8 in string: {e}"))
                }
                b'\\' => {
                    let escape = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape".to_string())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    }
                }
                other => out.push(other),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => return Err(format!("expected ',' or ']', got {:?}", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                other => return Err(format!("expected ',' or '}}', got {:?}", other as char)),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Structural validation of a scaling-suite document.
// ---------------------------------------------------------------------

fn validate_suite(doc: &Json, context: &str) {
    assert_eq!(
        doc.get("bench").and_then(Json::as_str),
        Some("scaling_suite"),
        "{context}: missing or wrong \"bench\" tag"
    );
    let sweeps = doc
        .get("sweeps")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("{context}: no \"sweeps\" array"));
    assert!(!sweeps.is_empty(), "{context}: zero sweeps recorded");
    for sweep in sweeps {
        let level = sweep
            .get("level")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{context}: sweep without a level"));
        let series = sweep
            .get("series")
            .and_then(Json::as_array)
            .unwrap_or_else(|| panic!("{context}: sweep {level} has no series array"));
        assert!(!series.is_empty(), "{context}: sweep {level} has no series");
        for entry in series {
            let label = entry
                .get("label")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("{context}: {level} series without a label"));
            let points = entry
                .get("points")
                .and_then(Json::as_array)
                .unwrap_or_else(|| panic!("{context}: {level}/{label} has no points array"));
            assert!(
                !points.is_empty(),
                "{context}: {level}/{label} recorded zero points"
            );
            for point in points {
                for field in ["threads", "committed", "throughput_txn_per_s"] {
                    assert!(
                        point.get(field).and_then(Json::as_number).is_some(),
                        "{context}: {level}/{label} point lacks numeric {field:?}"
                    );
                }
            }
        }
    }
    // The read-heavy record: host metadata plus, per swept level, an
    // epoch series and a locked-baseline series over the 95/5 mix.
    let host_cpus = doc
        .get("host_cpus")
        .and_then(Json::as_number)
        .unwrap_or_else(|| panic!("{context}: no numeric host_cpus metadata"));
    assert!(host_cpus >= 1.0, "{context}: host_cpus < 1");
    let read_heavy = doc
        .get("read_heavy")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("{context}: no \"read_heavy\" array"));
    assert!(
        !read_heavy.is_empty(),
        "{context}: zero read_heavy sweeps recorded"
    );
    for sweep in read_heavy {
        let level = sweep
            .get("level")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{context}: read_heavy sweep without a level"));
        let read_fraction = sweep
            .get("workload")
            .and_then(|w| w.get("read_fraction"))
            .and_then(Json::as_number)
            .unwrap_or_else(|| panic!("{context}: read_heavy {level} lacks read_fraction"));
        assert!(
            (read_fraction - 0.95).abs() < 1e-9,
            "{context}: read_heavy {level} is not the 95/5 mix"
        );
        let series = sweep
            .get("series")
            .and_then(Json::as_array)
            .unwrap_or_else(|| panic!("{context}: read_heavy {level} has no series array"));
        for read_path in ["epoch", "locked"] {
            let entry = series
                .iter()
                .find(|s| s.get("read_path").and_then(Json::as_str) == Some(read_path))
                .unwrap_or_else(|| {
                    panic!("{context}: read_heavy {level} lacks the {read_path} series")
                });
            let points = entry
                .get("points")
                .and_then(Json::as_array)
                .unwrap_or_else(|| panic!("{context}: read_heavy {level}/{read_path} no points"));
            assert!(
                !points.is_empty(),
                "{context}: read_heavy {level}/{read_path} recorded zero points"
            );
            for point in points {
                for field in ["threads", "committed", "throughput_txn_per_s"] {
                    assert!(
                        point.get(field).and_then(Json::as_number).is_some(),
                        "{context}: read_heavy {level}/{read_path} point lacks {field:?}"
                    );
                }
            }
        }
    }
    // The durable-logstore record: per swept level, an ephemeral series
    // and an fsync series over the log-structured backend.
    let durable = doc
        .get("durable_logstore")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("{context}: no \"durable_logstore\" array"));
    assert!(
        !durable.is_empty(),
        "{context}: zero durable_logstore sweeps recorded"
    );
    for sweep in durable {
        let level = sweep
            .get("level")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{context}: durable_logstore sweep without a level"));
        let series = sweep
            .get("series")
            .and_then(Json::as_array)
            .unwrap_or_else(|| panic!("{context}: durable_logstore {level} has no series array"));
        for durability in ["ephemeral", "fsync"] {
            let entry = series
                .iter()
                .find(|s| s.get("durability").and_then(Json::as_str) == Some(durability))
                .unwrap_or_else(|| {
                    panic!("{context}: durable_logstore {level} lacks the {durability} series")
                });
            assert_eq!(
                entry.get("backend").and_then(Json::as_str),
                Some("logstore"),
                "{context}: durable_logstore {level}/{durability} is not on the logstore backend"
            );
            let points = entry
                .get("points")
                .and_then(Json::as_array)
                .unwrap_or_else(|| {
                    panic!("{context}: durable_logstore {level}/{durability} no points")
                });
            assert!(
                !points.is_empty(),
                "{context}: durable_logstore {level}/{durability} recorded zero points"
            );
            for point in points {
                for field in ["threads", "committed", "throughput_txn_per_s"] {
                    assert!(
                        point.get(field).and_then(Json::as_number).is_some(),
                        "{context}: durable_logstore {level}/{durability} point lacks {field:?}"
                    );
                }
            }
        }
    }
    // The group-commit record: per swept level, the full
    // {per-commit, batched} × {single log, partitioned log} grid over the
    // fsync'd log-structured backend.
    let group_commit = doc
        .get("group_commit")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("{context}: no \"group_commit\" array"));
    assert!(
        !group_commit.is_empty(),
        "{context}: zero group_commit sweeps recorded"
    );
    for sweep in group_commit {
        let level = sweep
            .get("level")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{context}: group_commit sweep without a level"));
        let series = sweep
            .get("series")
            .and_then(Json::as_array)
            .unwrap_or_else(|| panic!("{context}: group_commit {level} has no series array"));
        for mode in ["off", "on"] {
            for sharded in [false, true] {
                let cell = series.iter().find(|s| {
                    s.get("group_commit").and_then(Json::as_str) == Some(mode)
                        && s.get("shards")
                            .and_then(Json::as_number)
                            .is_some_and(|n| (n > 1.0) == sharded)
                });
                let cell = cell.unwrap_or_else(|| {
                    panic!(
                        "{context}: group_commit {level} lacks the \
                         {mode}/{} cell",
                        if sharded { "sharded" } else { "single-log" }
                    )
                });
                assert_eq!(
                    cell.get("backend").and_then(Json::as_str),
                    Some("logstore"),
                    "{context}: group_commit {level}/{mode} is not on the logstore backend"
                );
                assert_eq!(
                    cell.get("durability").and_then(Json::as_str),
                    Some("fsync"),
                    "{context}: group_commit {level}/{mode} is not fsync'd"
                );
                let points = cell
                    .get("points")
                    .and_then(Json::as_array)
                    .unwrap_or_else(|| panic!("{context}: group_commit {level}/{mode} no points"));
                assert!(
                    !points.is_empty(),
                    "{context}: group_commit {level}/{mode} recorded zero points"
                );
                for point in points {
                    for field in ["threads", "committed", "throughput_txn_per_s"] {
                        assert!(
                            point.get(field).and_then(Json::as_number).is_some(),
                            "{context}: group_commit {level}/{mode} point lacks {field:?}"
                        );
                    }
                }
            }
        }
    }
    let range = doc
        .get("range_scan")
        .unwrap_or_else(|| panic!("{context}: no range_scan record"));
    let range_points = range
        .get("points")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("{context}: range_scan has no points array"));
    // The full grid: both backends at the point-only baseline and the
    // range-heavy mix.
    for backend in ["mvstore", "logstore"] {
        for fraction in [0.0, 0.5] {
            let cell = range_points.iter().find(|p| {
                p.get("backend").and_then(Json::as_str) == Some(backend)
                    && p.get("range_fraction").and_then(Json::as_number) == Some(fraction)
            });
            let cell = cell.unwrap_or_else(|| {
                panic!("{context}: range_scan lacks the {backend}/{fraction} cell")
            });
            assert!(
                cell.get("throughput_txn_per_s")
                    .and_then(Json::as_number)
                    .is_some(),
                "{context}: range_scan {backend}/{fraction} lacks throughput"
            );
        }
    }
    // The watcher fan-out record: a strictly widening watcher-count
    // ladder starting at one subscriber, every point carrying the
    // committed-vs-notifications accounting (a watched write-only run
    // notifies once per committed transaction, so a zero-notification
    // point means the recorder lost the stream).
    let watch_fanout = doc
        .get("watch_fanout")
        .unwrap_or_else(|| panic!("{context}: no watch_fanout record"));
    let fanout_points = watch_fanout
        .get("points")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("{context}: watch_fanout has no points array"));
    assert!(
        fanout_points.len() >= 2,
        "{context}: watch_fanout needs at least two watcher counts"
    );
    let mut last_count = 0.0;
    for (i, point) in fanout_points.iter().enumerate() {
        let watchers = point
            .get("watchers")
            .and_then(Json::as_number)
            .unwrap_or_else(|| panic!("{context}: watch_fanout point lacks numeric watchers"));
        if i == 0 {
            assert_eq!(
                watchers, 1.0,
                "{context}: watch_fanout must start at one watcher"
            );
        }
        assert!(
            watchers > last_count,
            "{context}: watch_fanout watcher counts must strictly increase"
        );
        last_count = watchers;
        for field in ["committed", "notifications", "throughput_txn_per_s"] {
            assert!(
                point.get(field).and_then(Json::as_number).is_some(),
                "{context}: watch_fanout point lacks numeric {field:?}"
            );
        }
        let notifications = point
            .get("notifications")
            .and_then(Json::as_number)
            .unwrap();
        assert!(
            notifications > 0.0,
            "{context}: watch_fanout recorded zero notifications at {watchers} watchers"
        );
    }
    let handoff = doc
        .get("contended_handoff")
        .unwrap_or_else(|| panic!("{context}: no contended_handoff record"));
    let policies = handoff
        .get("policies")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("{context}: contended_handoff has no policies array"));
    // The full grid: both grant policies under both upgrade strategies
    // under both fast-path fairness modes.
    for policy in ["DirectHandoff", "WakeAll"] {
        for strategy in ["shared-then-upgrade", "update-lock"] {
            for fairness in ["Barging", "QueueFifo"] {
                let cell = policies.iter().find(|p| {
                    p.get("policy").and_then(Json::as_str) == Some(policy)
                        && p.get("strategy").and_then(Json::as_str) == Some(strategy)
                        && p.get("fairness").and_then(Json::as_str) == Some(fairness)
                });
                let cell = cell.unwrap_or_else(|| {
                    panic!(
                        "{context}: contended_handoff lacks the \
                         {policy}/{strategy}/{fairness} cell"
                    )
                });
                assert!(
                    cell.get("worst_deadlocks_across_runs")
                        .and_then(Json::as_number)
                        .is_some(),
                    "{context}: {policy}/{strategy}/{fairness} lacks worst_deadlocks_across_runs"
                );
            }
        }
    }
}

/// A few-second sweep: enough to drive every code path of the recorder
/// without turning CI into a benchmark run.
fn reduced_suite() -> ScalingSuite {
    let tiny = MixedWorkload {
        accounts: 16,
        read_fraction: 0.6,
        ops_per_txn: 2,
        hot_fraction: 0.1,
        txns_per_thread: 10,
        threads: 1,
        seed: 11,
        think_micros: 0,
        shards: 4,
        grant: GrantPolicy::DirectHandoff,
        backend: critique_engine::BackendKind::MvStore,
        upgrade: UpgradeStrategy::SharedThenUpgrade,
        range_fraction: 0.0,
        read_path: critique_engine::ReadPath::Epoch,
        durability: Durability::Ephemeral,
        group_commit: GroupCommit::Off,
        fairness: FairnessPolicy::Barging,
        watchers: 0,
    };
    let sweeps = vec![ScalingReport::run(
        tiny,
        IsolationLevel::ReadCommitted,
        &[1, 2],
        &[
            SubstrateConfig::mvstore(4, "sharded"),
            SubstrateConfig::logstore("logstore"),
        ],
        1,
    )];
    let mut read_heavy_spec = tiny;
    read_heavy_spec.read_fraction = 0.95;
    let read_heavy = vec![ScalingReport::run(
        read_heavy_spec,
        IsolationLevel::SnapshotIsolation,
        &[1, 2],
        &[
            SubstrateConfig::mvstore(4, "epoch"),
            SubstrateConfig::mvstore(4, "locked baseline")
                .with_read_path(critique_engine::ReadPath::Locked),
        ],
        1,
    )];
    let mut durable_spec = tiny;
    durable_spec.backend = critique_engine::BackendKind::LogStructured;
    let durable = vec![ScalingReport::run(
        durable_spec,
        IsolationLevel::Serializable,
        &[1, 2],
        &[
            SubstrateConfig::logstore("logstore ephemeral"),
            SubstrateConfig::logstore("logstore fsync").with_durability(Durability::Fsync),
        ],
        1,
    )];
    let mut group_commit_spec = tiny;
    group_commit_spec.backend = critique_engine::BackendKind::LogStructured;
    group_commit_spec.read_fraction = 0.1;
    let batched = GroupCommit::On { window_micros: 50 };
    let group_commit = vec![ScalingReport::run(
        group_commit_spec,
        IsolationLevel::Serializable,
        &[1, 2],
        &[
            SubstrateConfig::logstore("fsync per-commit")
                .with_durability(Durability::Fsync)
                .with_shards(1),
            SubstrateConfig::logstore("fsync per-commit sharded")
                .with_durability(Durability::Fsync)
                .with_shards(4),
            SubstrateConfig::logstore("fsync batched")
                .with_durability(Durability::Fsync)
                .with_group_commit(batched)
                .with_shards(1),
            SubstrateConfig::logstore("fsync batched sharded")
                .with_durability(Durability::Fsync)
                .with_group_commit(batched)
                .with_shards(4),
        ],
        1,
    )];
    let mut contended = tiny;
    contended.read_fraction = 0.0;
    contended.hot_fraction = 1.0;
    contended.threads = 3;
    let handoff = HandoffComparison::run(contended, IsolationLevel::Serializable, 1);
    let range = RangeComparison::run(tiny, IsolationLevel::Serializable, &[0.0, 0.5], 1);
    let mut fanout_spec = tiny;
    fanout_spec.read_fraction = 0.0;
    let watch_fanout =
        WatchFanoutComparison::run(fanout_spec, IsolationLevel::Serializable, &[1, 4], 1);
    ScalingSuite {
        sweeps,
        read_heavy,
        durable,
        group_commit,
        handoff: Some(handoff),
        range: Some(range),
        watch_fanout: Some(watch_fanout),
        host_cpus: ScalingSuite::detect_host_cpus(),
    }
}

fn main() {
    // 1. Recorder round-trip on a reduced sweep.
    let suite = reduced_suite();
    let rendered = suite.to_json();
    let parsed = Parser::parse(&rendered)
        .unwrap_or_else(|e| panic!("reduced sweep rendered invalid JSON: {e}\n{rendered}"));
    validate_suite(&parsed, "reduced sweep");
    println!("bench smoke: reduced sweep rendered and re-parsed OK");

    // 2. The committed BENCH_scaling.json must be equally well-formed.
    let recorded = std::fs::read_to_string(RECORDED_PATH)
        .unwrap_or_else(|e| panic!("cannot read {RECORDED_PATH}: {e}"));
    let doc = Parser::parse(&recorded)
        .unwrap_or_else(|e| panic!("{RECORDED_PATH} is not valid JSON: {e}"));
    validate_suite(&doc, "BENCH_scaling.json");
    println!("bench smoke: BENCH_scaling.json validated (every series non-empty)");
}
