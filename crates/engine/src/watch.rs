//! Commit-time change notification: watchers with paper-grade isolation
//! semantics.
//!
//! A watcher is a **read-only observer**, so the phenomenon taxonomy of
//! Berenson et al. applies to its notification stream exactly as it does
//! to a transaction's reads:
//!
//! * **No P1 (dirty reads) for observers.** An event carries only
//!   *committed* values — the before image is the row as committed before
//!   the notifying transaction, the after image the row as it committed.
//!   Aborted transactions produce nothing: the change-set is collected
//!   inside the commit sequence, which an aborting transaction never
//!   enters.
//! * **Notification order ≡ commit order.** Change-sets are staged under
//!   the commit-sequence lock (so the staging order *is* the
//!   commit-timestamp order) and delivered by draining the queue strictly
//!   from the front. Every subscriber observes commits in the same total
//!   order the recorded history commits them in — the conformance
//!   exerciser holds the two orders byte-identical.
//! * **No notification before durability.** A staged change-set is
//!   published only after [`StorageBackend::flush_commit`] returns for its
//!   transaction. Under group commit ([`critique_storage::GroupCommit`])
//!   that is after the batch leader's fsync — so a batch that vanishes
//!   wholesale in a crash was also never announced to any observer.
//!
//! Three subscription scopes share the interval machinery the lock
//! manager already uses: a **key** watcher fires for one row, a **table**
//! watcher for any row of a table, and a **predicate** watcher for rows
//! matching a [`Condition`] — pruned by the same
//! [`Condition`] → [`KeyInterval`] extraction
//! ([`RowPredicate::index_hint`]) that backs interval predicate locks,
//! with the exact condition test as the final word.
//!
//! Delivery is synchronous and unbounded: the committer pushes matching
//! events into each subscriber's queue and returns. Subscribers whose
//! scope matches the whole change-set share one allocation (the queues
//! hold `Arc`s), so fanning a commit out to ten thousand table watchers
//! costs ten thousand pointer pushes, not ten thousand deep copies — the
//! `watch_fanout` series in `BENCH_scaling.json` measures exactly this.
//! Backpressure and async delivery belong to the async-runtime roadmap
//! item.

use critique_storage::{
    Condition, KeyInterval, Row, RowId, RowPredicate, StorageBackend, Timestamp, TxnToken,
};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How a committed transaction changed one row, judged on the *net*
/// committed images (a row inserted and deleted inside one transaction
/// nets out to nothing and is not reported).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChangeKind {
    /// The row did not exist before this commit.
    Inserted,
    /// The row existed and its contents were replaced.
    Updated,
    /// The row existed and this commit removed it.
    Deleted,
}

impl std::fmt::Display for ChangeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ChangeKind::Inserted => "inserted",
            ChangeKind::Updated => "updated",
            ChangeKind::Deleted => "deleted",
        })
    }
}

/// One row's net committed change within one commit.
#[derive(Clone, Debug, PartialEq)]
pub struct RowChange {
    /// Table the row lives in.
    pub table: String,
    /// The row's identifier.
    pub row: RowId,
    /// Net effect of the commit on this row.
    pub kind: ChangeKind,
    /// The latest committed image *before* this commit (`None` for an
    /// insert). Never an uncommitted value.
    pub before: Option<Row>,
    /// The committed image *after* this commit (`None` for a delete).
    pub after: Option<Row>,
}

/// One notification: everything a single commit changed within one
/// subscription's scope. Each subscriber receives **at most one** event
/// per commit, in commit-timestamp order.
#[derive(Clone, Debug, PartialEq)]
pub struct ChangeEvent {
    /// The commit timestamp the changes became visible at.
    pub commit_ts: Timestamp,
    /// The committing transaction's token.
    pub txn: TxnToken,
    /// The in-scope row changes, in the transaction's first-write order.
    pub changes: Vec<RowChange>,
}

/// What a subscription observes.
#[derive(Clone, Debug)]
enum Scope {
    /// One row of one table.
    Key { table: String, row: RowId },
    /// Every row of one table.
    Table { table: String },
    /// Rows of one table matching a condition, pruned by the same
    /// interval extraction the predicate lock manager uses.
    Predicate {
        predicate: RowPredicate,
        hint: Option<(String, KeyInterval)>,
    },
}

impl Scope {
    fn matches(&self, change: &RowChange) -> bool {
        match self {
            Scope::Key { table, row } => change.table == *table && change.row == *row,
            Scope::Table { table } => change.table == *table,
            Scope::Predicate { predicate, hint } => {
                // Interval prune first: `index_hint` only names a column
                // whose interval excludes untyped rows, so an image whose
                // hinted value falls outside the interval cannot match
                // the condition — skip the exact test entirely when both
                // images are pruned. The exact test is the final word.
                if let Some((column, interval)) = hint {
                    let may = |img: &Option<Row>| {
                        img.as_ref()
                            .is_some_and(|r| interval.covers_value(r.get(column)))
                    };
                    if !may(&change.before) && !may(&change.after) {
                        return false;
                    }
                }
                let hit = |img: &Option<Row>| {
                    img.as_ref()
                        .is_some_and(|r| predicate.matches(&change.table, r))
                };
                hit(&change.before) || hit(&change.after)
            }
        }
    }

    fn describe(&self) -> String {
        match self {
            Scope::Key { table, row } => format!("{}.{}", table, row.0),
            Scope::Table { table } => format!("{table}.*"),
            Scope::Predicate { predicate, .. } => predicate.name(),
        }
    }
}

/// A subscriber's event queue: a plain FIFO with a condvar for blocking
/// receives. Events are reference-counted so a commit fanned out to many
/// whole-scope subscribers is allocated once and shared.
#[derive(Default)]
struct QueueState {
    events: VecDeque<Arc<ChangeEvent>>,
}

/// Take ownership of a queued event, cloning only when another queue
/// still shares it.
fn unshare(event: Arc<ChangeEvent>) -> ChangeEvent {
    Arc::try_unwrap(event).unwrap_or_else(|shared| (*shared).clone())
}

struct WatcherQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct Subscription {
    id: u64,
    scope: Scope,
    queue: Arc<WatcherQueue>,
}

/// A commit's change-set, staged under the commit-sequence lock and
/// published once the commit record is durable.
struct PendingCommit {
    txn: TxnToken,
    commit_ts: Timestamp,
    changes: Vec<RowChange>,
    /// Set once this commit's `flush_commit` has returned. The delivery
    /// drain only ever pops a *durable prefix*, so a commit whose fsync is
    /// still in flight blocks later (already durable) commits from being
    /// announced out of order.
    durable: AtomicBool,
}

struct HubCore {
    /// Mirrors [`crate::EngineConfig::watchers`]; when false, subscribing
    /// is inert and the commit path never stages anything.
    enabled: bool,
    /// Registered-subscription count, read with one atomic load on every
    /// commit so a database with no watchers pays nothing.
    subscribers: AtomicUsize,
    subs: Mutex<Vec<Subscription>>,
    /// Staged change-sets in commit-timestamp order (staging happens
    /// under the commit-sequence lock, so push order *is* ts order).
    pending: Mutex<VecDeque<PendingCommit>>,
    /// Serialises draining: events enter subscriber queues in exactly the
    /// pending-queue order even when many committers race to publish.
    delivery: Mutex<()>,
    next_id: AtomicU64,
}

/// The per-database watcher registry and staging queue.
pub(crate) struct WatchHub {
    core: Arc<HubCore>,
}

/// The first half of change collection: rows and before-images captured
/// under the commit-sequence lock, *before* the store clears the write
/// set. Completed by [`WatchHub::finish_collect`] after the store commit
/// stamps the new versions.
pub(crate) struct StagedChanges {
    /// `(table, row, before-image)` in first-write order, deduplicated.
    rows: Vec<(String, RowId, Option<Row>)>,
}

impl WatchHub {
    pub(crate) fn new(enabled: bool) -> Self {
        WatchHub {
            core: Arc::new(HubCore {
                enabled,
                subscribers: AtomicUsize::new(0),
                subs: Mutex::new(Vec::new()),
                pending: Mutex::new(VecDeque::new()),
                delivery: Mutex::new(()),
                next_id: AtomicU64::new(1),
            }),
        }
    }

    /// True when a commit should collect its change-set: watchers are
    /// enabled and at least one subscription exists. One relaxed atomic
    /// load — the no-watcher fast path costs nothing on the commit path.
    fn wants_changes(&self) -> bool {
        self.core.enabled && self.core.subscribers.load(Ordering::Acquire) > 0
    }

    fn subscribe(&self, scope: Scope) -> Watcher {
        let id = self.core.next_id.fetch_add(1, Ordering::Relaxed);
        let queue = Arc::new(WatcherQueue {
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
        });
        let description = scope.describe();
        if self.core.enabled {
            let mut subs = self.core.subs.lock();
            subs.push(Subscription {
                id,
                scope,
                queue: Arc::clone(&queue),
            });
            // Release pairs with the Acquire in `wants_changes`: a commit
            // sequence beginning after this store observes the
            // subscription.
            self.core.subscribers.fetch_add(1, Ordering::Release);
        }
        Watcher {
            core: Arc::clone(&self.core),
            id,
            queue,
            description,
        }
    }

    /// Capture the committing transaction's written rows with their
    /// before-images. Must run under the commit-sequence lock and before
    /// [`StorageBackend::commit`]: commit clears the write set, and the
    /// "latest committed" image only equals the true before-image while
    /// no later commit can interleave. Returns `None` (collecting
    /// nothing) when no subscription exists.
    pub(crate) fn begin_collect(
        &self,
        store: &dyn StorageBackend,
        writer: TxnToken,
    ) -> Option<StagedChanges> {
        if !self.wants_changes() {
            return None;
        }
        let mut rows: Vec<(String, RowId, Option<Row>)> = Vec::new();
        for (table, row, _) in store.writes_of(writer) {
            // The write set records every write op; the change-set is the
            // *net* per-row effect, so keep the first occurrence only.
            if rows.iter().any(|(t, r, _)| *t == table && *r == row) {
                continue;
            }
            let before = store.get_latest_committed(&table, row);
            rows.push((table, row, before));
        }
        Some(StagedChanges { rows })
    }

    /// Complete collection after [`StorageBackend::commit`] stamped the
    /// new versions (still under the commit-sequence lock): read the
    /// after-images, compute net change kinds, and stage the change-set
    /// for publication. Read-only commits and net no-ops stage nothing.
    pub(crate) fn finish_collect(
        &self,
        store: &dyn StorageBackend,
        staged: StagedChanges,
        txn: TxnToken,
        commit_ts: Timestamp,
    ) {
        let changes: Vec<RowChange> = staged
            .rows
            .into_iter()
            .filter_map(|(table, row, before)| {
                let after = store.get_latest_committed(&table, row);
                let kind = match (&before, &after) {
                    (None, Some(_)) => ChangeKind::Inserted,
                    (Some(_), Some(_)) => ChangeKind::Updated,
                    (Some(_), None) => ChangeKind::Deleted,
                    // Inserted and deleted inside one transaction: no net
                    // committed change, nothing to announce.
                    (None, None) => return None,
                };
                Some(RowChange {
                    table,
                    row,
                    kind,
                    before,
                    after,
                })
            })
            .collect();
        if changes.is_empty() {
            return;
        }
        self.core.pending.lock().push_back(PendingCommit {
            txn,
            commit_ts,
            changes,
            durable: AtomicBool::new(false),
        });
    }

    /// Mark `commit_ts` durable and deliver every durable-prefix commit
    /// to its matching subscribers. Called after
    /// [`StorageBackend::flush_commit`] returns — under group commit that
    /// is after the batch leader's fsync, so an unfsync'd batch that
    /// would vanish in a crash is never announced. Draining only the
    /// durable *prefix* keeps delivery in commit order even when
    /// committers reach this point out of timestamp order.
    pub(crate) fn publish(&self, commit_ts: Timestamp) {
        if !self.core.enabled {
            return;
        }
        {
            let pending = self.core.pending.lock();
            if pending.is_empty() {
                return;
            }
            if let Some(commit) = pending.iter().find(|p| p.commit_ts == commit_ts) {
                commit.durable.store(true, Ordering::Release);
            }
        }
        let _delivery = self.core.delivery.lock();
        loop {
            let next = {
                let mut pending = self.core.pending.lock();
                match pending.front() {
                    Some(front) if front.durable.load(Ordering::Acquire) => pending.pop_front(),
                    _ => None,
                }
            };
            let Some(commit) = next else { break };
            self.deliver(&commit);
        }
    }

    fn deliver(&self, commit: &PendingCommit) {
        let subs = self.core.subs.lock();
        // Subscribers that match the whole change-set (every table watcher
        // during fan-out) share one allocation; partial matches get their
        // own filtered event.
        let mut full_event: Option<Arc<ChangeEvent>> = None;
        for sub in subs.iter() {
            let matched = commit
                .changes
                .iter()
                .filter(|change| sub.scope.matches(change))
                .count();
            if matched == 0 {
                continue;
            }
            let event = if matched == commit.changes.len() {
                Arc::clone(full_event.get_or_insert_with(|| {
                    Arc::new(ChangeEvent {
                        commit_ts: commit.commit_ts,
                        txn: commit.txn,
                        changes: commit.changes.clone(),
                    })
                }))
            } else {
                Arc::new(ChangeEvent {
                    commit_ts: commit.commit_ts,
                    txn: commit.txn,
                    changes: commit
                        .changes
                        .iter()
                        .filter(|change| sub.scope.matches(change))
                        .cloned()
                        .collect(),
                })
            };
            sub.queue.state.lock().events.push_back(event);
            sub.queue.ready.notify_all();
        }
    }

    /// Register a watcher on one row.
    pub(crate) fn watch_key(&self, table: &str, row: RowId) -> Watcher {
        self.subscribe(Scope::Key {
            table: table.to_string(),
            row,
        })
    }

    /// Register a watcher on every row of a table.
    pub(crate) fn watch_table(&self, table: &str) -> Watcher {
        self.subscribe(Scope::Table {
            table: table.to_string(),
        })
    }

    /// Register a watcher on the rows of `table` matching `condition`.
    pub(crate) fn watch_predicate(&self, table: &str, condition: Condition) -> Watcher {
        let predicate = RowPredicate::new(table, condition);
        let hint = predicate.index_hint();
        self.subscribe(Scope::Predicate { predicate, hint })
    }
}

/// A live subscription handle returned by [`crate::Database::watch_key`],
/// [`watch_table`](crate::Database::watch_table), and
/// [`watch_predicate`](crate::Database::watch_predicate).
///
/// Events accumulate in an unbounded FIFO until received; dropping the
/// watcher unregisters the subscription. A watcher observes every commit
/// whose commit sequence begins after the registration — each matching
/// commit produces exactly one [`ChangeEvent`], in commit-timestamp
/// order.
pub struct Watcher {
    core: Arc<HubCore>,
    id: u64,
    queue: Arc<WatcherQueue>,
    description: String,
}

impl Watcher {
    /// Pop the next pending event without blocking.
    pub fn try_recv(&self) -> Option<ChangeEvent> {
        self.queue.state.lock().events.pop_front().map(unshare)
    }

    /// Block until an event arrives or `timeout` elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<ChangeEvent> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.queue.state.lock();
        loop {
            if let Some(event) = state.events.pop_front() {
                return Some(unshare(event));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            self.queue.ready.wait_for(&mut state, deadline - now);
        }
    }

    /// Pop every pending event at once.
    pub fn drain(&self) -> Vec<ChangeEvent> {
        self.queue
            .state
            .lock()
            .events
            .drain(..)
            .map(unshare)
            .collect()
    }

    /// Number of events waiting to be received.
    pub fn pending(&self) -> usize {
        self.queue.state.lock().events.len()
    }

    /// A human-readable description of the watched scope (`table.row`,
    /// `table.*`, or the predicate's display name).
    pub fn scope(&self) -> &str {
        &self.description
    }
}

impl Drop for Watcher {
    fn drop(&mut self) {
        let mut subs = self.core.subs.lock();
        if let Some(pos) = subs.iter().position(|sub| sub.id == self.id) {
            subs.swap_remove(pos);
            self.core.subscribers.fetch_sub(1, Ordering::Release);
        }
    }
}

impl std::fmt::Debug for Watcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watcher")
            .field("scope", &self.description)
            .field("pending", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn change(table: &str, row: u64, before: Option<Row>, after: Option<Row>) -> RowChange {
        let kind = match (&before, &after) {
            (None, Some(_)) => ChangeKind::Inserted,
            (Some(_), None) => ChangeKind::Deleted,
            _ => ChangeKind::Updated,
        };
        RowChange {
            table: table.to_string(),
            row: RowId(row),
            kind,
            before,
            after,
        }
    }

    #[test]
    fn key_scope_matches_exactly_one_row() {
        let scope = Scope::Key {
            table: "accounts".into(),
            row: RowId(3),
        };
        assert!(scope.matches(&change(
            "accounts",
            3,
            None,
            Some(Row::new().with("balance", 1))
        )));
        assert!(!scope.matches(&change(
            "accounts",
            4,
            None,
            Some(Row::new().with("balance", 1))
        )));
        assert!(!scope.matches(&change(
            "orders",
            3,
            None,
            Some(Row::new().with("balance", 1))
        )));
    }

    #[test]
    fn predicate_scope_fires_on_either_image() {
        let predicate = RowPredicate::new(
            "accounts",
            Condition::compare("balance", critique_storage::Comparison::Gt, 100),
        );
        let hint = predicate.index_hint();
        let scope = Scope::Predicate { predicate, hint };
        // Enters the predicate.
        assert!(scope.matches(&change(
            "accounts",
            1,
            Some(Row::new().with("balance", 50)),
            Some(Row::new().with("balance", 150)),
        )));
        // Leaves the predicate: the before image still matched.
        assert!(scope.matches(&change(
            "accounts",
            1,
            Some(Row::new().with("balance", 150)),
            Some(Row::new().with("balance", 50)),
        )));
        // Never inside the predicate.
        assert!(!scope.matches(&change(
            "accounts",
            1,
            Some(Row::new().with("balance", 10)),
            Some(Row::new().with("balance", 20)),
        )));
        // Wrong table.
        assert!(!scope.matches(&change(
            "orders",
            1,
            None,
            Some(Row::new().with("balance", 500)),
        )));
    }

    #[test]
    fn durable_prefix_blocks_out_of_order_publication() {
        let hub = WatchHub::new(true);
        let watcher = hub.watch_table("t");
        let ev = |ts: u64| {
            vec![change(
                "t",
                ts,
                None,
                Some(Row::new().with("value", ts as i64)),
            )]
        };
        hub.core.pending.lock().push_back(PendingCommit {
            txn: TxnToken(1),
            commit_ts: Timestamp(5),
            changes: ev(5),
            durable: AtomicBool::new(false),
        });
        hub.core.pending.lock().push_back(PendingCommit {
            txn: TxnToken(2),
            commit_ts: Timestamp(6),
            changes: ev(6),
            durable: AtomicBool::new(false),
        });
        // ts=6 becomes durable first: nothing may be delivered yet.
        hub.publish(Timestamp(6));
        assert_eq!(watcher.pending(), 0);
        // ts=5 becomes durable: both drain, in timestamp order.
        hub.publish(Timestamp(5));
        let events = watcher.drain();
        assert_eq!(
            events.iter().map(|e| e.commit_ts).collect::<Vec<_>>(),
            vec![Timestamp(5), Timestamp(6)]
        );
    }

    #[test]
    fn disabled_hub_registers_inert_watchers() {
        let hub = WatchHub::new(false);
        let watcher = hub.watch_table("t");
        assert!(!hub.wants_changes());
        hub.publish(Timestamp(1));
        assert_eq!(watcher.pending(), 0);
        assert_eq!(watcher.try_recv(), None);
    }

    #[test]
    fn dropping_a_watcher_unregisters_it() {
        let hub = WatchHub::new(true);
        let watcher = hub.watch_key("t", RowId(0));
        assert!(hub.wants_changes());
        drop(watcher);
        assert!(!hub.wants_changes());
    }
}
