//! The database facade: one storage engine + one concurrency control
//! discipline + one recorded history.
//!
//! The storage engine is chosen by [`EngineConfig::with_backend`] and held
//! as a [`StorageBackend`] trait object: every scheduler in
//! [`crate::txn`] is backend-agnostic, and the isolation guarantees it
//! enforces must not depend on how versions are represented.

use crate::config::EngineConfig;
use crate::recorder::HistoryRecorder;
use crate::txn::Transaction;
use crate::watch::{WatchHub, Watcher};
use critique_core::locking::LockProfile;
use critique_core::IsolationLevel;
use critique_history::History;
use critique_lock::LockManager;
use critique_storage::{
    Condition, MvReadStats, Row, RowId, RowPredicate, StorageBackend, TimestampOracle, TxnToken,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub(crate) struct DbInner {
    pub(crate) config: EngineConfig,
    pub(crate) profile: Option<LockProfile>,
    pub(crate) store: Box<dyn StorageBackend>,
    pub(crate) locks: LockManager,
    pub(crate) ts: TimestampOracle,
    pub(crate) recorder: HistoryRecorder,
    /// Serialises the commit sequence (validate → reserve timestamp →
    /// stamp chains → publish).  With the store sharded, stamping is no
    /// longer atomic on its own; holding this lock across reserve+stamp
    /// keeps commits atomically visible to snapshot readers (publication
    /// happens only after every chain is stamped, in timestamp order) and
    /// makes the Snapshot Isolation First-Committer-Wins check atomic with
    /// the commit it guards.  Reads, writes, and aborts never take it.
    pub(crate) commit_seq: Mutex<()>,
    /// The MvStore read-path counters, when the configured backend has
    /// them (`None` on the log-structured backend).  Handed out by the
    /// constructor side channel so the [`StorageBackend`] trait stays
    /// untouched.
    pub(crate) read_stats: Option<Arc<MvReadStats>>,
    /// Commit-time change notification: the subscription registry and the
    /// durable-prefix staging queue.  The commit path stages change-sets
    /// under [`DbInner::commit_seq`] (so staging order is commit-timestamp
    /// order) and publishes them only after
    /// [`StorageBackend::flush_commit`] returns.
    pub(crate) watch: WatchHub,
    next_txn: AtomicU64,
}

/// A database instance running every transaction at one isolation level.
///
/// `Database` is cheap to clone (it is an `Arc` underneath) and safe to
/// share across threads; the threaded benchmark drivers clone one instance
/// into each worker.
#[derive(Clone)]
pub struct Database {
    inner: Arc<DbInner>,
}

impl Database {
    /// Create a database running at `level` with the default configuration
    /// (non-blocking lock waits, history recording on).
    pub fn new(level: IsolationLevel) -> Self {
        Self::with_config(EngineConfig::new(level))
    }

    /// Create a database with an explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        // The only place a concrete backend is named is behind this
        // `BackendKind` constructor.
        let (store, read_stats) = config.backend.build_durable_with_stats(
            config.shards,
            config.read_path,
            config.durability,
            config.group_commit,
        );
        Self::assemble(config, store, read_stats)
    }

    /// Create a database over an existing storage backend — the recovery
    /// path: [`critique_storage::LogStore::recover`] rebuilds the store
    /// from its write-ahead directory, then a fresh database resumes on
    /// top of it.  `config.backend`/`config.durability` are kept for the
    /// record but do not re-build the store.  Callers resuming after a
    /// crash should follow up with [`Database::advance_clock_past`] so new
    /// commits outrank everything recovered.
    pub fn with_store(config: EngineConfig, store: Box<dyn StorageBackend>) -> Self {
        Self::assemble(config, store, None)
    }

    fn assemble(
        config: EngineConfig,
        store: Box<dyn StorageBackend>,
        read_stats: Option<Arc<MvReadStats>>,
    ) -> Self {
        Database {
            inner: Arc::new(DbInner {
                profile: LockProfile::for_level(config.level),
                store,
                read_stats,
                locks: LockManager::with_shards(config.shards)
                    .with_policy(config.grant)
                    .with_fairness(config.fairness),
                ts: TimestampOracle::new(),
                recorder: HistoryRecorder::with_shards(config.record_history, config.shards),
                watch: WatchHub::new(config.watchers),
                commit_seq: Mutex::new(()),
                next_txn: AtomicU64::new(1),
                config,
            }),
        }
    }

    /// Advance the timestamp oracle past `ts` (never backwards): recovery
    /// harnesses pass a recovered store's
    /// [`critique_storage::LogStore::last_commit_ts`] so the resumed clock
    /// outranks every recovered commit.
    pub fn advance_clock_past(&self, ts: critique_storage::Timestamp) {
        self.inner.ts.advance_past(ts);
    }

    /// The isolation level of this database.
    pub fn level(&self) -> IsolationLevel {
        self.inner.config.level
    }

    /// The configuration of this database.
    pub fn config(&self) -> EngineConfig {
        self.inner.config
    }

    /// Begin a new transaction.
    pub fn begin(&self) -> Transaction {
        // Relaxed: this counter is a pure id allocator.  `fetch_add` is
        // atomic at any ordering, so tokens are unique (and monotonic in
        // the counter's own modification order, which is all deadlock
        // victim selection needs); nothing synchronises *through* the
        // token, so no acquire/release edges are required.
        let token = TxnToken(self.inner.next_txn.fetch_add(1, Ordering::Relaxed));
        Transaction::new(Arc::clone(&self.inner), token)
    }

    /// The history of operations executed so far (across all transactions).
    pub fn recorded_history(&self) -> History {
        self.inner.recorder.history()
    }

    /// Forget the recorded history (useful between scenario phases; setup
    /// transactions would otherwise pollute phenomenon analysis).
    pub fn clear_history(&self) {
        self.inner.recorder.clear();
    }

    /// Read the latest committed version of a row, outside any transaction
    /// (used by workloads to check final state and constraints).
    pub fn read_committed(&self, table: &str, row: RowId) -> Option<Row> {
        self.inner.store.get_latest_committed(table, row)
    }

    /// Scan the latest committed rows matching a predicate, outside any
    /// transaction.
    pub fn scan_committed(&self, predicate: &RowPredicate) -> Vec<(RowId, Row)> {
        self.inner.store.scan_latest_committed(predicate)
    }

    /// Sum an integer column over the latest committed rows matching a
    /// predicate.
    pub fn sum_committed(&self, predicate: &RowPredicate, column: &str) -> i64 {
        self.scan_committed(predicate)
            .iter()
            .filter_map(|(_, row)| row.get_int(column))
            .sum()
    }

    /// Count the latest committed rows matching a predicate.
    pub fn count_committed(&self, predicate: &RowPredicate) -> usize {
        self.scan_committed(predicate).len()
    }

    /// Direct access to the underlying storage backend (read-only uses in
    /// tests and benches; transactions should go through
    /// [`Database::begin`]).
    pub fn store(&self) -> &dyn StorageBackend {
        &*self.inner.store
    }

    /// Number of locks currently held across all transactions.
    pub fn locks_held(&self) -> usize {
        self.inner.locks.total_held()
    }

    /// The MvStore read-path counters (stripe-lock acquisitions, epoch
    /// pins), if the configured backend exposes them.  The workload
    /// drivers assert through this that a read-only run under the epoch
    /// path acquires zero stripe locks.
    pub fn mv_read_stats(&self) -> Option<Arc<MvReadStats>> {
        self.inner.read_stats.clone()
    }

    // ------------------------------------------------------------------
    // Commit-time change notification.
    // ------------------------------------------------------------------

    /// Watch one row: the returned [`Watcher`] receives one
    /// [`crate::watch::ChangeEvent`] per commit that changes `row`, with
    /// the committed before/after images and the commit timestamp, in
    /// commit order.  Aborted transactions never notify (see
    /// [`crate::watch`] for the isolation semantics).
    pub fn watch_key(&self, table: &str, row: RowId) -> Watcher {
        self.inner.watch.watch_key(table, row)
    }

    /// Watch every row of a table.  Each commit touching the table
    /// produces exactly one event carrying all of its in-table changes.
    pub fn watch_table(&self, table: &str) -> Watcher {
        self.inner.watch.watch_table(table)
    }

    /// Watch the rows of `table` matching `condition`.  A commit notifies
    /// when a changed row matches in its before *or* after image (so
    /// rows entering and leaving the predicate both fire), using the same
    /// [`Condition`] → [`critique_storage::KeyInterval`] extraction the
    /// interval predicate locks use to prune non-candidates cheaply.
    pub fn watch_predicate(&self, table: &str, condition: Condition) -> Watcher {
        self.inner.watch.watch_predicate(table, condition)
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("level", &self.inner.config.level)
            .field("lock_wait", &self.inner.config.lock_wait)
            .field("backend", &self.inner.store.backend_name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_hands_out_distinct_tokens() {
        let db = Database::new(IsolationLevel::Serializable);
        let t1 = db.begin();
        let t2 = db.begin();
        assert_ne!(t1.token(), t2.token());
        assert_eq!(db.level(), IsolationLevel::Serializable);
    }

    #[test]
    fn committed_readers_see_committed_data_only() {
        let db = Database::new(IsolationLevel::ReadCommitted);
        let t1 = db.begin();
        let id = t1
            .insert("accounts", Row::new().with("balance", 10))
            .unwrap();
        assert!(db.read_committed("accounts", id).is_none());
        t1.commit().unwrap();
        assert_eq!(
            db.read_committed("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(10)
        );
        let all = RowPredicate::whole_table("accounts");
        assert_eq!(db.sum_committed(&all, "balance"), 10);
        assert_eq!(db.count_committed(&all), 1);
    }

    #[test]
    fn clear_history_resets_recording() {
        let db = Database::new(IsolationLevel::Serializable);
        let t = db.begin();
        t.insert("t", Row::new().with("value", 1)).unwrap();
        t.commit().unwrap();
        assert!(!db.recorded_history().is_empty());
        db.clear_history();
        assert!(db.recorded_history().is_empty());
    }

    #[test]
    fn every_backend_serves_the_same_facade() {
        use crate::config::BackendKind;
        for backend in BackendKind::ALL {
            let db = Database::with_config(
                EngineConfig::new(IsolationLevel::Serializable).with_backend(backend),
            );
            assert_eq!(db.store().backend_name(), backend.label());
            let t1 = db.begin();
            let id = t1
                .insert("accounts", Row::new().with("balance", 10))
                .unwrap();
            t1.commit().unwrap();
            let all = RowPredicate::whole_table("accounts");
            assert_eq!(db.sum_committed(&all, "balance"), 10, "{backend}");
            assert_eq!(
                db.read_committed("accounts", id)
                    .unwrap()
                    .get_int("balance"),
                Some(10),
                "{backend}"
            );
            assert!(format!("{db:?}").contains(backend.label()));
        }
    }

    #[test]
    fn cloned_handles_share_state() {
        let db = Database::new(IsolationLevel::SnapshotIsolation);
        let db2 = db.clone();
        let t = db.begin();
        let id = t.insert("t", Row::new().with("value", 7)).unwrap();
        t.commit().unwrap();
        assert_eq!(
            db2.read_committed("t", id).unwrap().get_int("value"),
            Some(7)
        );
        assert_eq!(db2.locks_held(), 0);
        assert!(format!("{db2:?}").contains("SnapshotIsolation"));
    }
}
