//! Transaction errors.

use critique_storage::{RowId, StorageError, TxnToken};
use std::fmt;

/// Errors returned by transaction operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TxnError {
    /// The operation needs a lock held by other transactions and the
    /// database runs with [`crate::LockWaitPolicy::Fail`].  The operation
    /// had no effect and may be retried once the blockers finish.
    WouldBlock {
        /// Transactions holding conflicting locks.
        blockers: Vec<TxnToken>,
    },
    /// The transaction was chosen as a deadlock victim and has been
    /// aborted.
    Deadlock,
    /// A blocking lock wait timed out; the transaction has been aborted.
    LockTimeout,
    /// Snapshot Isolation First-Committer-Wins: another transaction that
    /// committed during this transaction's execution interval also wrote
    /// this row, so this transaction has been aborted (Section 4.2).
    FirstCommitterConflict {
        /// Table of the conflicting row.
        table: String,
        /// The conflicting row.
        row: RowId,
    },
    /// The transaction already committed or aborted.
    AlreadyTerminated,
    /// The row under the cursor changed (and was committed) after the
    /// cursor captured it.  Returned by Oracle Read Consistency's
    /// first-writer-wins handling of `UPDATE … WHERE CURRENT OF`: the
    /// statement must be restarted against a fresh snapshot instead of
    /// blindly overwriting the newer value (this is what makes P4C "Not
    /// Possible" at Read Consistency, Section 4.3).
    StaleCursor {
        /// Table of the stale row.
        table: String,
        /// The stale row.
        row: RowId,
    },
    /// The referenced cursor does not exist or is closed.
    NoSuchCursor,
    /// The cursor is not positioned on a row (fetch before first / after
    /// last).
    CursorNotPositioned,
    /// An underlying storage error (missing table or row).
    Storage(StorageError),
}

impl TxnError {
    /// True for errors that terminated the transaction (the caller must
    /// start a new one).
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            TxnError::Deadlock
                | TxnError::LockTimeout
                | TxnError::FirstCommitterConflict { .. }
                | TxnError::AlreadyTerminated
        )
    }

    /// True if the operation may simply be retried later (lock conflict
    /// under the non-blocking policy).
    pub fn is_retryable(&self) -> bool {
        matches!(self, TxnError::WouldBlock { .. })
    }
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::WouldBlock { blockers } => {
                write!(
                    f,
                    "operation would block on {} transaction(s)",
                    blockers.len()
                )
            }
            TxnError::Deadlock => write!(f, "aborted as deadlock victim"),
            TxnError::LockTimeout => write!(f, "aborted after lock wait timeout"),
            TxnError::FirstCommitterConflict { table, row } => {
                write!(f, "first-committer-wins conflict on {table}{row}")
            }
            TxnError::AlreadyTerminated => write!(f, "transaction already committed or aborted"),
            TxnError::StaleCursor { table, row } => {
                write!(f, "row {table}{row} changed since the cursor captured it")
            }
            TxnError::NoSuchCursor => write!(f, "no such cursor"),
            TxnError::CursorNotPositioned => write!(f, "cursor is not positioned on a row"),
            TxnError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

impl From<StorageError> for TxnError {
    fn from(e: StorageError) -> Self {
        TxnError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(TxnError::Deadlock.is_fatal());
        assert!(TxnError::LockTimeout.is_fatal());
        assert!(TxnError::AlreadyTerminated.is_fatal());
        assert!(TxnError::FirstCommitterConflict {
            table: "t".into(),
            row: RowId(0)
        }
        .is_fatal());
        assert!(!TxnError::WouldBlock { blockers: vec![] }.is_fatal());
        assert!(TxnError::WouldBlock { blockers: vec![] }.is_retryable());
        assert!(!TxnError::Deadlock.is_retryable());
    }

    #[test]
    fn display_and_conversion() {
        let e: TxnError = StorageError::NoSuchTable("x".into()).into();
        assert!(e.to_string().contains("no such table"));
        assert!(TxnError::Deadlock.to_string().contains("deadlock"));
        assert!(TxnError::WouldBlock {
            blockers: vec![TxnToken(1)]
        }
        .to_string()
        .contains("1 transaction"));
    }
}
