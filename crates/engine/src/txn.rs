//! Transactions: the per-isolation-level access paths.

use crate::cursor::{CursorId, CursorState};
use crate::db::DbInner;
use crate::error::TxnError;
use crate::LockWaitPolicy;
use critique_core::locking::{LockDuration, LockRequirement};
use critique_core::IsolationLevel;
use critique_lock::{AcquireError, LockMode, LockOutcome, LockTarget, UpgradeStrategy};
use critique_storage::{
    Comparison, Condition, KeyInterval, Row, RowId, RowPredicate, ScanView, Timestamp, TxnToken,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// The lifecycle state of a transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TxnStatus {
    /// Still running.
    Active,
    /// Successfully committed.
    Committed,
    /// Rolled back (voluntarily, as a deadlock/timeout victim, or by
    /// First-Committer-Wins).
    Aborted,
}

struct TxnState {
    status: TxnStatus,
    cursors: BTreeMap<CursorId, CursorState>,
    next_cursor: u64,
}

/// A transaction handle.
///
/// All operations are non-panicking and return [`TxnError`] on conflict;
/// under the default [`LockWaitPolicy::Fail`] policy a lock conflict leaves
/// the transaction active so the caller (the deterministic interleaving
/// driver) can retry the operation after the blocker finishes.
pub struct Transaction {
    db: Arc<DbInner>,
    token: TxnToken,
    start_ts: Timestamp,
    state: Mutex<TxnState>,
}

impl Transaction {
    pub(crate) fn new(db: Arc<DbInner>, token: TxnToken) -> Self {
        let start_ts = db.ts.current();
        Transaction {
            db,
            token,
            start_ts,
            state: Mutex::new(TxnState {
                status: TxnStatus::Active,
                cursors: BTreeMap::new(),
                next_cursor: 0,
            }),
        }
    }

    /// The storage-level token identifying this transaction.
    pub fn token(&self) -> TxnToken {
        self.token
    }

    /// The start timestamp (the snapshot point under Snapshot Isolation).
    pub fn start_timestamp(&self) -> Timestamp {
        self.start_ts
    }

    /// The isolation level this transaction runs at.
    pub fn level(&self) -> IsolationLevel {
        self.db.config.level
    }

    /// Current lifecycle status.
    pub fn status(&self) -> TxnStatus {
        self.state.lock().status
    }

    /// True while the transaction may still issue operations.
    pub fn is_active(&self) -> bool {
        self.status() == TxnStatus::Active
    }

    fn ensure_active(&self) -> Result<(), TxnError> {
        if self.is_active() {
            Ok(())
        } else {
            Err(TxnError::AlreadyTerminated)
        }
    }

    // ------------------------------------------------------------------
    // Lock acquisition respecting the configured wait policy.
    // ------------------------------------------------------------------

    fn acquire(
        &self,
        target: LockTarget,
        mode: LockMode,
        images: &[Row],
        duration: LockDuration,
    ) -> Result<(), TxnError> {
        match self.db.config.lock_wait {
            LockWaitPolicy::Fail => {
                match self
                    .db
                    .locks
                    .try_acquire(self.token, target, mode, images, duration)
                {
                    LockOutcome::Granted => Ok(()),
                    LockOutcome::WouldBlock { holders } => {
                        Err(TxnError::WouldBlock { blockers: holders })
                    }
                }
            }
            LockWaitPolicy::Block { timeout_ms } => {
                match self.db.locks.acquire(
                    self.token,
                    target,
                    mode,
                    images,
                    duration,
                    Duration::from_millis(timeout_ms),
                ) {
                    Ok(()) => Ok(()),
                    Err(AcquireError::Deadlock { .. }) => {
                        self.rollback_internal();
                        Err(TxnError::Deadlock)
                    }
                    Err(AcquireError::Timeout) => {
                        self.rollback_internal();
                        Err(TxnError::LockTimeout)
                    }
                }
            }
        }
    }

    fn read_item_requirement(&self) -> LockRequirement {
        self.db
            .profile
            .map(|p| p.read_item)
            .unwrap_or(LockRequirement::NotRequired)
    }

    fn read_predicate_requirement(&self) -> LockRequirement {
        self.db
            .profile
            .map(|p| p.read_predicate)
            .unwrap_or(LockRequirement::NotRequired)
    }

    fn write_requirement(&self) -> LockRequirement {
        match self.db.config.level {
            // Oracle Read Consistency covers writes with long write locks
            // (first-writer-wins, Section 4.3).
            IsolationLevel::OracleReadConsistency => {
                LockRequirement::WellFormed(LockDuration::Long)
            }
            // Snapshot Isolation takes no locks; conflicts are resolved at
            // commit by First-Committer-Wins.
            IsolationLevel::SnapshotIsolation => LockRequirement::NotRequired,
            _ => self
                .db
                .profile
                .map(|p| p.write)
                .unwrap_or(LockRequirement::NotRequired),
        }
    }

    /// Acquire a read lock on an item if the level requires one.  `cursor`
    /// selects the cursor-duration variant used by FETCH.
    fn lock_for_read(
        &self,
        table: &str,
        row: RowId,
        cursor: bool,
    ) -> Result<LockDuration, TxnError> {
        match self.read_item_requirement() {
            LockRequirement::NotRequired => Ok(LockDuration::Short),
            LockRequirement::WellFormed(duration) => {
                let effective = match (duration, cursor) {
                    // Plain reads at Cursor Stability behave like READ
                    // COMMITTED (short locks); only FETCH holds the lock
                    // while the cursor is positioned on the row.
                    (LockDuration::Cursor, false) => LockDuration::Short,
                    (d, _) => d,
                };
                self.acquire(
                    LockTarget::item(table, row),
                    LockMode::Shared,
                    &[],
                    effective,
                )?;
                Ok(effective)
            }
        }
    }

    fn release_after_short_read(&self, duration: LockDuration) {
        if duration == LockDuration::Short && self.read_item_requirement().is_required() {
            self.db.locks.release_short(self.token);
        }
    }

    // ------------------------------------------------------------------
    // Reads.
    //
    // Routing: the multiversion levels (Snapshot Isolation, Oracle Read
    // Consistency) go straight to the storage backend's timestamped
    // visibility surface and take no item locks at all — on the default
    // MvStore backend that surface is the epoch-pinned lock-free read
    // path, so these reads touch neither the lock manager nor any store
    // stripe lock.  The locking levels acquire their Table 2 item locks
    // first and then read through the same storage surface.
    // ------------------------------------------------------------------

    /// Read a single row.  Returns `Ok(None)` if the row does not exist (or
    /// is deleted) in this transaction's view.
    pub fn read(&self, table: &str, row: RowId) -> Result<Option<Row>, TxnError> {
        self.ensure_active()?;
        let value = match self.db.config.level {
            IsolationLevel::SnapshotIsolation => {
                self.db
                    .store
                    .get_visible(table, row, self.token, self.start_ts)
            }
            IsolationLevel::OracleReadConsistency => {
                let stmt_ts = self.db.ts.current();
                self.db.store.get_visible(table, row, self.token, stmt_ts)
            }
            _ => {
                let duration = self.lock_for_read(table, row, false)?;
                let value = self.db.store.get_latest_any(table, row);
                self.db
                    .recorder
                    .read(self.token, table, row, value.as_ref());
                self.release_after_short_read(duration);
                return Ok(value);
            }
        };
        self.db
            .recorder
            .read(self.token, table, row, value.as_ref());
        Ok(value)
    }

    /// Read a single row with declared intent to write it (`SELECT … FOR
    /// UPDATE`).  The configured [`UpgradeStrategy`] decides how the
    /// read locks at the locking levels:
    ///
    /// * under [`UpgradeStrategy::SharedThenUpgrade`] this is exactly
    ///   [`Transaction::read`] — a Shared lock now, the Exclusive upgrade
    ///   at the write (the historical read-modify-write baseline);
    /// * under [`UpgradeStrategy::UpdateLock`] the read takes an
    ///   update-mode (U) lock held for the *write* duration, so at most
    ///   one would-be upgrader holds the item at a time and the later
    ///   U→X conversion waits only for plain Shared holders to drain —
    ///   the S→X upgrade-deadlock cascade cannot form.
    ///
    /// The multiversion levels (Snapshot Isolation, Oracle Read
    /// Consistency) take no read locks either way; their write conflicts
    /// are resolved by First-Committer-Wins / first-writer-wins as usual.
    pub fn read_for_update(&self, table: &str, row: RowId) -> Result<Option<Row>, TxnError> {
        self.ensure_active()?;
        let locking = !matches!(
            self.db.config.level,
            IsolationLevel::SnapshotIsolation | IsolationLevel::OracleReadConsistency
        );
        if !locking || self.db.config.upgrade == UpgradeStrategy::SharedThenUpgrade {
            return self.read(table, row);
        }
        // A declaration of write intent: the U lock lives as long as the
        // write lock it announces would (long at every level above
        // Degree 0), not as long as the level's plain read locks.
        let duration = match self.write_requirement() {
            LockRequirement::WellFormed(duration) => {
                self.acquire(
                    LockTarget::item(table, row),
                    LockMode::Update,
                    &[],
                    duration,
                )?;
                Some(duration)
            }
            LockRequirement::NotRequired => None,
        };
        let value = self.db.store.get_latest_any(table, row);
        self.db
            .recorder
            .read(self.token, table, row, value.as_ref());
        if duration == Some(LockDuration::Short) {
            self.db.locks.release_short(self.token);
        }
        Ok(value)
    }

    /// Read the set of rows satisfying a predicate (a `<search condition>`).
    pub fn read_where(&self, predicate: &RowPredicate) -> Result<Vec<(RowId, Row)>, TxnError> {
        self.ensure_active()?;
        let rows = match self.db.config.level {
            IsolationLevel::SnapshotIsolation => {
                self.db
                    .store
                    .scan_visible(predicate, self.token, self.start_ts)
            }
            IsolationLevel::OracleReadConsistency => {
                let stmt_ts = self.db.ts.current();
                self.db.store.scan_visible(predicate, self.token, stmt_ts)
            }
            _ => {
                let requirement = self.read_predicate_requirement();
                if let LockRequirement::WellFormed(duration) = requirement {
                    self.acquire(
                        LockTarget::predicate(predicate.clone()),
                        LockMode::Shared,
                        &[],
                        duration,
                    )?;
                }
                let rows = self.db.store.scan_latest_any(predicate);
                self.db.recorder.predicate_read(self.token, predicate);
                if requirement == LockRequirement::WellFormed(LockDuration::Short) {
                    self.db.locks.release_short(self.token);
                }
                return Ok(rows);
            }
        };
        self.db.recorder.predicate_read(self.token, predicate);
        Ok(rows)
    }

    /// The `<search condition>` equivalent of a key range: `lo <= column
    /// <= hi` with either bound optional.  This is what the range read
    /// paths lock and record, so the predicate domain sees a bounded
    /// interval it can index instead of a whole-table condition.
    fn range_condition(column: &str, range: &KeyInterval) -> Condition {
        match (range.lo(), range.hi()) {
            (None, None) => Condition::True,
            (Some(lo), None) => Condition::compare(column, Comparison::Ge, lo),
            (None, Some(hi)) => Condition::compare(column, Comparison::Le, hi),
            (Some(lo), Some(hi)) => Condition::compare(column, Comparison::Ge, lo)
                .and(Condition::compare(column, Comparison::Le, hi)),
        }
    }

    /// Read the rows whose `column` value lies in `range`, in (key, row id)
    /// order.  Semantically `read_where` with an interval condition, but
    /// the scan goes through [`StorageBackend::scan_range`] (the ordered
    /// index when one covers `column`) and the predicate lock taken at the
    /// locking levels carries the interval, so two transactions scanning
    /// disjoint ranges of the same table do not conflict.
    ///
    /// [`StorageBackend::scan_range`]: critique_storage::StorageBackend::scan_range
    pub fn read_range(
        &self,
        table: &str,
        column: &str,
        range: &KeyInterval,
    ) -> Result<Vec<(RowId, Row)>, TxnError> {
        self.ensure_active()?;
        let predicate = RowPredicate::new(table, Self::range_condition(column, range));
        let rows = match self.db.config.level {
            IsolationLevel::SnapshotIsolation => self.db.store.scan_range(
                table,
                column,
                range,
                ScanView::Visible {
                    reader: self.token,
                    start_ts: self.start_ts,
                },
            ),
            IsolationLevel::OracleReadConsistency => {
                let stmt_ts = self.db.ts.current();
                self.db.store.scan_range(
                    table,
                    column,
                    range,
                    ScanView::Visible {
                        reader: self.token,
                        start_ts: stmt_ts,
                    },
                )
            }
            _ => {
                let requirement = self.read_predicate_requirement();
                if let LockRequirement::WellFormed(duration) = requirement {
                    self.acquire(
                        LockTarget::predicate(predicate.clone()),
                        LockMode::Shared,
                        &[],
                        duration,
                    )?;
                }
                let rows = self
                    .db
                    .store
                    .scan_range(table, column, range, ScanView::LatestAny);
                self.db.recorder.predicate_read(self.token, &predicate);
                if requirement == LockRequirement::WellFormed(LockDuration::Short) {
                    self.db.locks.release_short(self.token);
                }
                return Ok(rows);
            }
        };
        self.db.recorder.predicate_read(self.token, &predicate);
        Ok(rows)
    }

    /// [`Transaction::read_range`] with declared intent to write the rows
    /// in the range (`SELECT … FOR UPDATE` over a key interval).  Mirrors
    /// [`Transaction::read_for_update`]: under
    /// [`UpgradeStrategy::SharedThenUpgrade`] this is exactly `read_range`,
    /// and under [`UpgradeStrategy::UpdateLock`] the interval predicate is
    /// locked in Update mode for the write duration — so two writers over
    /// provably disjoint ranges of one table proceed concurrently while
    /// overlapping ranges still serialize.
    pub fn read_range_for_update(
        &self,
        table: &str,
        column: &str,
        range: &KeyInterval,
    ) -> Result<Vec<(RowId, Row)>, TxnError> {
        self.ensure_active()?;
        let locking = !matches!(
            self.db.config.level,
            IsolationLevel::SnapshotIsolation | IsolationLevel::OracleReadConsistency
        );
        if !locking || self.db.config.upgrade == UpgradeStrategy::SharedThenUpgrade {
            return self.read_range(table, column, range);
        }
        let predicate = RowPredicate::new(table, Self::range_condition(column, range));
        let duration = match self.write_requirement() {
            LockRequirement::WellFormed(duration) => {
                self.acquire(
                    LockTarget::predicate(predicate.clone()),
                    LockMode::Update,
                    &[],
                    duration,
                )?;
                Some(duration)
            }
            LockRequirement::NotRequired => None,
        };
        let rows = self
            .db
            .store
            .scan_range(table, column, range, ScanView::LatestAny);
        self.db.recorder.predicate_read(self.token, &predicate);
        if duration == Some(LockDuration::Short) {
            self.db.locks.release_short(self.token);
        }
        Ok(rows)
    }

    /// Sum an integer column over the rows this transaction sees as
    /// satisfying the predicate.
    pub fn sum_where(&self, predicate: &RowPredicate, column: &str) -> Result<i64, TxnError> {
        Ok(self
            .read_where(predicate)?
            .iter()
            .filter_map(|(_, row)| row.get_int(column))
            .sum())
    }

    // ------------------------------------------------------------------
    // Writes.
    // ------------------------------------------------------------------

    fn visible_before_image(&self, table: &str, row: RowId) -> Option<Row> {
        match self.db.config.level {
            IsolationLevel::SnapshotIsolation => {
                self.db
                    .store
                    .get_visible(table, row, self.token, self.start_ts)
            }
            IsolationLevel::OracleReadConsistency => {
                let stmt_ts = self.db.ts.current();
                self.db.store.get_visible(table, row, self.token, stmt_ts)
            }
            _ => self.db.store.get_latest_any(table, row),
        }
    }

    /// Insert a new row, returning its id.
    pub fn insert(&self, table: &str, row: Row) -> Result<RowId, TxnError> {
        self.ensure_active()?;
        let write_req = self.write_requirement();
        if let LockRequirement::WellFormed(duration) = write_req {
            // Guard lock on a per-transaction phantom item: it only
            // conflicts with predicate locks whose condition the new row
            // satisfies, which is exactly the phantom-prevention test.
            let guard = LockTarget::item(table, RowId(u64::MAX - self.token.0));
            self.acquire(
                guard.clone(),
                LockMode::Exclusive,
                std::slice::from_ref(&row),
                duration,
            )?;
            let id = self.db.store.insert(table, self.token, row.clone());
            self.acquire(
                LockTarget::item(table, id),
                LockMode::Exclusive,
                std::slice::from_ref(&row),
                duration,
            )?;
            self.db.locks.release_target(self.token, &guard);
            self.db
                .recorder
                .write(self.token, table, id, None, Some(&row), false);
            if duration == LockDuration::Short {
                self.db.locks.release_short(self.token);
            }
            Ok(id)
        } else {
            let id = self.db.store.insert(table, self.token, row.clone());
            self.db
                .recorder
                .write(self.token, table, id, None, Some(&row), false);
            Ok(id)
        }
    }

    /// Update a row: the given columns are merged over the row as this
    /// transaction sees it (UPDATE … SET semantics).
    pub fn update(&self, table: &str, row: RowId, changes: Row) -> Result<(), TxnError> {
        self.write_row(table, row, changes, false)
    }

    fn write_row(
        &self,
        table: &str,
        row: RowId,
        changes: Row,
        through_cursor: bool,
    ) -> Result<(), TxnError> {
        self.ensure_active()?;
        let before = self.visible_before_image(table, row);
        let new_row = match &before {
            Some(b) => b.updated_with(&changes),
            None => changes,
        };
        if let LockRequirement::WellFormed(duration) = self.write_requirement() {
            let mut images = vec![new_row.clone()];
            if let Some(b) = &before {
                images.push(b.clone());
            }
            self.acquire(
                LockTarget::item(table, row),
                LockMode::Exclusive,
                &images,
                duration,
            )?;
            self.db
                .store
                .update(table, self.token, row, new_row.clone())?;
            self.db.recorder.write(
                self.token,
                table,
                row,
                before.as_ref(),
                Some(&new_row),
                through_cursor,
            );
            if duration == LockDuration::Short {
                self.db.locks.release_short(self.token);
            }
        } else {
            self.db
                .store
                .update(table, self.token, row, new_row.clone())?;
            self.db.recorder.write(
                self.token,
                table,
                row,
                before.as_ref(),
                Some(&new_row),
                through_cursor,
            );
        }
        Ok(())
    }

    /// Delete a row.
    pub fn delete(&self, table: &str, row: RowId) -> Result<(), TxnError> {
        self.ensure_active()?;
        let before = self.visible_before_image(table, row);
        if let LockRequirement::WellFormed(duration) = self.write_requirement() {
            let images: Vec<Row> = before.clone().into_iter().collect();
            self.acquire(
                LockTarget::item(table, row),
                LockMode::Exclusive,
                &images,
                duration,
            )?;
            self.db.store.delete(table, self.token, row)?;
            self.db
                .recorder
                .write(self.token, table, row, before.as_ref(), None, false);
            if duration == LockDuration::Short {
                self.db.locks.release_short(self.token);
            }
        } else {
            self.db.store.delete(table, self.token, row)?;
            self.db
                .recorder
                .write(self.token, table, row, before.as_ref(), None, false);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Cursors (Section 4.1).
    // ------------------------------------------------------------------

    /// Open a cursor over the rows satisfying `predicate`.
    pub fn open_cursor(&self, predicate: &RowPredicate) -> Result<CursorId, TxnError> {
        let rows = self.read_where(predicate)?;
        let mut state = self.state.lock();
        let id = CursorId(state.next_cursor);
        state.next_cursor += 1;
        state
            .cursors
            .insert(id, CursorState::new(predicate.table.clone(), rows));
        Ok(id)
    }

    /// FETCH the next row from a cursor.  Returns `Ok(None)` when the
    /// cursor is exhausted.
    pub fn fetch(&self, cursor: CursorId) -> Result<Option<(RowId, Row)>, TxnError> {
        self.ensure_active()?;
        let (table, next, captured, previous) = {
            let mut state = self.state.lock();
            let cur = state
                .cursors
                .get_mut(&cursor)
                .ok_or(TxnError::NoSuchCursor)?;
            if !cur.open {
                return Err(TxnError::NoSuchCursor);
            }
            let previous = cur
                .position
                .and_then(|p| cur.rows.get(p))
                .map(|(id, _)| *id);
            let next = cur.advance();
            let captured = cur
                .position
                .and_then(|p| cur.rows.get(p))
                .map(|(_, row)| row.clone());
            let table = cur.table.clone();
            let previous = previous.filter(|prev| {
                Some(*prev) != next && !Self::other_cursor_holds(&state, cursor, &table, *prev)
            });
            (table, next, captured, previous)
        };
        let Some(row_id) = next else {
            // Past the end: the cursor no longer holds its position lock.
            if let Some(prev) = previous {
                self.db
                    .locks
                    .release_cursor_target(self.token, &LockTarget::item(&table, prev));
            }
            return Ok(None);
        };
        let value = match self.db.config.level {
            // Snapshot Isolation keeps reading from the transaction's
            // snapshot; Read Consistency serves the value as of the Open
            // Cursor (Section 4.3).
            IsolationLevel::SnapshotIsolation => {
                self.db
                    .store
                    .get_visible(&table, row_id, self.token, self.start_ts)
            }
            IsolationLevel::OracleReadConsistency => captured,
            _ => {
                let duration = self.lock_for_read(&table, row_id, true)?;
                if duration == LockDuration::Cursor {
                    // The lock travels with the cursor: drop the previous
                    // row's cursor lock, keep the current one.
                    if let Some(prev) = previous {
                        self.db
                            .locks
                            .release_cursor_target(self.token, &LockTarget::item(&table, prev));
                    }
                }
                let value = self.db.store.get_latest_any(&table, row_id);
                self.db
                    .recorder
                    .cursor_read(self.token, &table, row_id, value.as_ref());
                self.release_after_short_read(duration);
                return Ok(value.map(|row| (row_id, row)));
            }
        };
        self.db
            .recorder
            .cursor_read(self.token, &table, row_id, value.as_ref());
        Ok(value.map(|row| (row_id, row)))
    }

    /// Update the row the cursor is currently positioned on (UPDATE …
    /// WHERE CURRENT OF).
    pub fn update_current(&self, cursor: CursorId, changes: Row) -> Result<(), TxnError> {
        self.ensure_active()?;
        let (table, row_id, captured) = {
            let state = self.state.lock();
            let cur = state.cursors.get(&cursor).ok_or(TxnError::NoSuchCursor)?;
            if !cur.open {
                return Err(TxnError::NoSuchCursor);
            }
            match cur.position.and_then(|p| cur.rows.get(p)) {
                Some((id, row)) => (cur.table.clone(), *id, row.clone()),
                None => return Err(TxnError::CursorNotPositioned),
            }
        };
        if self.db.config.level == IsolationLevel::OracleReadConsistency {
            // First-writer-wins at statement level: if another transaction
            // committed a newer version of the row after the cursor
            // captured it, the positioned update must restart instead of
            // overwriting the newer value.
            let current = self.db.store.get_latest_committed(&table, row_id);
            if current.as_ref() != Some(&captured) {
                return Err(TxnError::StaleCursor { table, row: row_id });
            }
        }
        self.write_row(&table, row_id, changes, true)
    }

    /// Close a cursor, releasing its position lock.
    pub fn close_cursor(&self, cursor: CursorId) -> Result<(), TxnError> {
        let mut state = self.state.lock();
        let cur = state
            .cursors
            .get_mut(&cursor)
            .ok_or(TxnError::NoSuchCursor)?;
        cur.open = false;
        let table = cur.table.clone();
        let position = cur
            .position
            .and_then(|p| cur.rows.get(p))
            .map(|(id, _)| *id);
        let release = position.filter(|id| !Self::other_cursor_holds(&state, cursor, &table, *id));
        drop(state);
        if let Some(id) = release {
            self.db
                .locks
                .release_cursor_target(self.token, &LockTarget::item(&table, id));
        }
        Ok(())
    }

    /// True when another open cursor of this transaction is currently
    /// positioned on the given row (its cursor lock must then be kept).
    fn other_cursor_holds(state: &TxnState, cursor: CursorId, table: &str, row: RowId) -> bool {
        state.cursors.iter().any(|(id, cur)| {
            *id != cursor
                && cur.open
                && cur.table == table
                && cur
                    .position
                    .and_then(|p| cur.rows.get(p))
                    .map(|(r, _)| *r == row)
                    .unwrap_or(false)
        })
    }

    // ------------------------------------------------------------------
    // Termination.
    // ------------------------------------------------------------------

    /// Commit.  Under Snapshot Isolation this runs the First-Committer-Wins
    /// check and aborts the transaction (returning
    /// [`TxnError::FirstCommitterConflict`]) if another transaction that
    /// committed during this one's execution interval wrote the same data.
    pub fn commit(&self) -> Result<(), TxnError> {
        self.ensure_active()?;
        let commit_ts;
        {
            // The commit sequence: validate, reserve a timestamp, stamp
            // every written chain, publish.  One committer at a time —
            // publication in timestamp order is what keeps a multi-row
            // commit atomically visible to snapshot readers even though
            // the chains live in different store shards; and running the
            // First-Committer-Wins check inside the same sequence means
            // two racing SI writers can never both pass it.
            let commit_guard = self.db.commit_seq.lock();
            if self.db.config.level == IsolationLevel::SnapshotIsolation {
                if let Some((table, row)) = self
                    .db
                    .store
                    .first_committer_conflict(self.token, self.start_ts)
                {
                    drop(commit_guard);
                    self.rollback_internal();
                    return Err(TxnError::FirstCommitterConflict { table, row });
                }
            }
            // Watcher change-set, first half: written rows and their
            // before-images, captured while the pre-commit state is still
            // the latest committed state (and before `store.commit`
            // clears the write set).  Collection under the commit
            // sequence is what makes staging order ≡ timestamp order, so
            // subscribers observe commits in exactly the history's commit
            // order.  An aborting transaction never reaches this point —
            // watchers are structurally free of P1.
            let staged = self.db.watch.begin_collect(&*self.db.store, self.token);
            commit_ts = self.db.ts.reserve();
            self.db.store.commit(self.token, commit_ts);
            if let Some(staged) = staged {
                self.db
                    .watch
                    .finish_collect(&*self.db.store, staged, self.token, commit_ts);
            }
            self.db.ts.publish(commit_ts);
        }
        // Outside the commit sequence: under group commit the store only
        // *enqueued* its commit record above, and this call parks until a
        // batch leader has fsynced it.  Parking outside the mutex is what
        // lets concurrent committers pile into one batch — the whole
        // point; the enqueue order under the mutex is what keeps the
        // durable commit-record order identical to the timestamp order.
        self.db.store.flush_commit(self.token);
        // Only now — with the commit record durable — may subscribers
        // hear about it: a group-commit batch that vanishes in a crash
        // was never announced.
        self.db.watch.publish(commit_ts);
        self.db.locks.release_all(self.token);
        self.db.recorder.commit(self.token);
        self.state.lock().status = TxnStatus::Committed;
        Ok(())
    }

    /// Roll back, restoring before images and releasing all locks.
    pub fn abort(&self) -> Result<(), TxnError> {
        self.ensure_active()?;
        self.rollback_internal();
        Ok(())
    }

    fn rollback_internal(&self) {
        let mut state = self.state.lock();
        if state.status != TxnStatus::Active {
            return;
        }
        state.status = TxnStatus::Aborted;
        drop(state);
        self.db.store.abort(self.token);
        self.db.locks.release_all(self.token);
        self.db.recorder.abort(self.token);
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if self.is_active() {
            self.rollback_internal();
        }
    }
}

impl std::fmt::Debug for Transaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("token", &self.token)
            .field("level", &self.db.config.level)
            .field("start_ts", &self.start_ts)
            .field("status", &self.status())
            .finish()
    }
}
