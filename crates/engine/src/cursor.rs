//! SQL cursors (Section 4.1).
//!
//! A cursor materialises the rows matching a `<search condition>` at open
//! time and is then advanced with FETCH.  Under Cursor Stability the engine
//! keeps a read lock on the row the cursor is currently positioned on; the
//! lock moves with the cursor and is upgraded to a long write lock if the
//! row is updated through the cursor.

use critique_storage::{Row, RowId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an open cursor within a transaction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct CursorId(pub u64);

impl fmt::Display for CursorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cursor{}", self.0)
    }
}

/// Internal cursor state.
#[derive(Clone, Debug)]
pub(crate) struct CursorState {
    /// Table the cursor ranges over.
    pub(crate) table: String,
    /// Row ids and their values as of the open (the "members of a cursor
    /// set are as of the time of the Open Cursor").
    pub(crate) rows: Vec<(RowId, Row)>,
    /// Index of the current row; `None` before the first FETCH.
    pub(crate) position: Option<usize>,
    /// False once the cursor has been closed.
    pub(crate) open: bool,
}

impl CursorState {
    pub(crate) fn new(table: String, rows: Vec<(RowId, Row)>) -> Self {
        CursorState {
            table,
            rows,
            position: None,
            open: true,
        }
    }

    /// Advance to the next row, returning its id if any.
    pub(crate) fn advance(&mut self) -> Option<RowId> {
        let next = match self.position {
            None => 0,
            Some(p) => p + 1,
        };
        if next < self.rows.len() {
            self.position = Some(next);
            Some(self.rows[next].0)
        } else {
            self.position = Some(self.rows.len());
            None
        }
    }

    /// The row id the cursor is currently positioned on.
    #[allow(dead_code)] // exercised by unit tests; production code reads `position` directly
    pub(crate) fn current(&self) -> Option<RowId> {
        self.position
            .and_then(|p| self.rows.get(p))
            .map(|(id, _)| *id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> CursorState {
        CursorState::new(
            "t".to_string(),
            vec![
                (RowId(1), Row::new().with("value", 1)),
                (RowId(2), Row::new().with("value", 2)),
            ],
        )
    }

    #[test]
    fn advances_through_rows_and_past_the_end() {
        let mut c = state();
        assert_eq!(c.current(), None);
        assert_eq!(c.advance(), Some(RowId(1)));
        assert_eq!(c.current(), Some(RowId(1)));
        assert_eq!(c.advance(), Some(RowId(2)));
        assert_eq!(c.advance(), None);
        assert_eq!(c.current(), None);
        // Stays exhausted.
        assert_eq!(c.advance(), None);
    }

    #[test]
    fn empty_cursor_is_immediately_exhausted() {
        let mut c = CursorState::new("t".to_string(), vec![]);
        assert_eq!(c.advance(), None);
        assert_eq!(c.current(), None);
        assert!(c.open);
    }

    #[test]
    fn display() {
        assert_eq!(CursorId(3).to_string(), "cursor3");
    }
}
