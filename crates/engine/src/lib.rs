//! # critique-engine
//!
//! A transaction engine whose concurrency control is selected per database
//! instance, implementing every isolation type the paper characterises:
//!
//! * the **locking levels** of Table 2 — Degree 0, READ UNCOMMITTED,
//!   READ COMMITTED, Cursor Stability, REPEATABLE READ, SERIALIZABLE —
//!   executed directly from their [`critique_core::locking::LockProfile`]s
//!   against the [`critique_lock::LockManager`];
//! * **Snapshot Isolation** (Section 4.2): start-timestamp snapshot reads,
//!   reads never block, and First-Committer-Wins enforcement at commit;
//! * **Oracle Read Consistency** (Section 4.3): statement-level snapshots
//!   with long write locks (first-writer-wins).
//!
//! Every executed operation is recorded in a [`critique_history::History`],
//! so the phenomenon detectors in `critique-core` can be applied to what the
//! engine *actually did* — this is how the harness regenerates Tables 1, 3,
//! and 4 from observed behaviour instead of quoting the paper.
//!
//! ```
//! use critique_engine::prelude::*;
//! use critique_core::IsolationLevel;
//! use critique_storage::Row;
//!
//! let db = Database::new(IsolationLevel::SnapshotIsolation);
//! let admin = db.begin();
//! let acct = admin.insert("accounts", Row::new().with("balance", 100)).unwrap();
//! admin.commit().unwrap();
//!
//! let t1 = db.begin();
//! let balance = t1.read("accounts", acct).unwrap().unwrap().get_int("balance").unwrap();
//! t1.update("accounts", acct, Row::new().with("balance", balance - 40)).unwrap();
//! t1.commit().unwrap();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod config;
pub mod cursor;
pub mod db;
pub mod error;
pub mod recorder;
pub mod txn;
pub mod watch;

pub use crate::config::{
    BackendKind, Durability, EngineConfig, FairnessPolicy, GrantPolicy, GroupCommit,
    LockWaitPolicy, ReadPath, UpgradeStrategy,
};
pub use crate::cursor::CursorId;
pub use crate::db::Database;
pub use crate::error::TxnError;
pub use crate::txn::{Transaction, TxnStatus};
pub use crate::watch::{ChangeEvent, ChangeKind, RowChange, Watcher};

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::config::{
        BackendKind, Durability, EngineConfig, FairnessPolicy, GrantPolicy, GroupCommit,
        LockWaitPolicy, ReadPath, UpgradeStrategy,
    };
    pub use crate::cursor::CursorId;
    pub use crate::db::Database;
    pub use crate::error::TxnError;
    pub use crate::txn::{Transaction, TxnStatus};
    pub use crate::watch::{ChangeEvent, ChangeKind, RowChange, Watcher};
}
