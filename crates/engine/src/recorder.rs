//! Recording executed operations as a [`critique_history::History`].
//!
//! The recorder is what turns engine executions into material the
//! `critique-core` detectors can analyse.  Item operations are recorded
//! with names of the form `table.rowid`; predicate reads are recorded under
//! the predicate's display name; writes are annotated with the predicates
//! they affect by testing the before/after row images against every
//! predicate that has been read on this database so far (this reproduces
//! the paper's `w2[y in P]` / `w2[insert y to P]` annotations from observed
//! behaviour).

use critique_history::op::Op;
use critique_history::{History, TxnId};
use critique_storage::{Row, RowId, RowPredicate, TxnToken};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

fn item_name(table: &str, row: RowId) -> String {
    format!("{}.{}", table, row.0)
}

/// Annotates and accumulates operations executed by the engine.
///
/// Operations are collected into per-shard buffers selected by the
/// recording transaction's token — so concurrent transactions don't
/// serialise on one mutex — and each op is stamped with a ticket from a
/// global sequence counter.  [`HistoryRecorder::history`] merges the
/// buffers by ticket, reconstructing the real-time total order (for a
/// single-threaded scenario run this is exactly the program order the old
/// single-buffer recorder produced).
pub struct HistoryRecorder {
    enabled: bool,
    /// The merge key: a logical timestamp drawn per recorded op.
    next_ticket: AtomicU64,
    /// Every predicate that has been read, keyed by display name — shared
    /// by all shards because write annotation must see every predicate
    /// regardless of which transaction read it.
    predicates: RwLock<BTreeMap<String, RowPredicate>>,
    shards: Box<[OpBuffer]>,
}

/// One shard's buffer of `(sequence ticket, op)` pairs.
type OpBuffer = Mutex<Vec<(u64, Op)>>;

impl Default for HistoryRecorder {
    fn default() -> Self {
        Self::new(false)
    }
}

impl HistoryRecorder {
    /// A recorder with the default shard count; `enabled` mirrors
    /// [`crate::EngineConfig::record_history`].
    pub fn new(enabled: bool) -> Self {
        Self::with_shards(enabled, critique_storage::DEFAULT_SHARDS)
    }

    /// A recorder with an explicit shard count (clamped to at least 1).
    pub fn with_shards(enabled: bool, shards: usize) -> Self {
        HistoryRecorder {
            enabled,
            next_ticket: AtomicU64::new(0),
            predicates: RwLock::new(BTreeMap::new()),
            shards: (0..shards.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    fn shard_for(&self, txn: TxnToken) -> &OpBuffer {
        &self.shards[(txn.0 % self.shards.len() as u64) as usize]
    }

    fn record(&self, txn: TxnToken, op: Op) {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        self.shard_for(txn).lock().push((ticket, op));
    }

    fn txn_id(token: TxnToken) -> u32 {
        u32::try_from(token.0).unwrap_or(u32::MAX)
    }

    /// Record an item read.
    pub fn read(&self, txn: TxnToken, table: &str, row: RowId, value: Option<&Row>) {
        if !self.enabled {
            return;
        }
        self.record(
            txn,
            Self::annotate_value(Op::read(Self::txn_id(txn), item_name(table, row)), value),
        );
    }

    /// Record a cursor read (FETCH).
    pub fn cursor_read(&self, txn: TxnToken, table: &str, row: RowId, value: Option<&Row>) {
        if !self.enabled {
            return;
        }
        self.record(
            txn,
            Self::annotate_value(
                Op::cursor_read(Self::txn_id(txn), item_name(table, row)),
                value,
            ),
        );
    }

    /// Record a predicate read, registering the predicate for later write
    /// annotation.
    pub fn predicate_read(&self, txn: TxnToken, predicate: &RowPredicate) {
        self.predicates
            .write()
            .entry(predicate.name())
            .or_insert_with(|| predicate.clone());
        if self.enabled {
            self.record(txn, Op::predicate_read(Self::txn_id(txn), predicate.name()));
        }
    }

    /// Record a write (insert, update, or delete), annotating predicate
    /// membership from the before/after images.
    pub fn write(
        &self,
        txn: TxnToken,
        table: &str,
        row: RowId,
        before: Option<&Row>,
        after: Option<&Row>,
        through_cursor: bool,
    ) {
        if !self.enabled {
            return;
        }
        let id = Self::txn_id(txn);
        let mut op = if through_cursor {
            Op::cursor_write(id, item_name(table, row))
        } else {
            Op::write(id, item_name(table, row))
        };
        op = Self::annotate_value(op, after);
        let is_insert = before.is_none();
        {
            let predicates = self.predicates.read();
            for predicate in predicates.values() {
                let after_matches = after.is_some_and(|r| predicate.matches(table, r));
                let before_matches = before.is_some_and(|r| predicate.matches(table, r));
                if is_insert && after_matches {
                    op = op.inserting_into(predicate.name());
                } else if before_matches || after_matches {
                    op = op.mutating_in(predicate.name());
                }
            }
        }
        self.record(txn, op);
    }

    /// Record a commit.
    pub fn commit(&self, txn: TxnToken) {
        if self.enabled {
            self.record(txn, Op::commit(Self::txn_id(txn)));
        }
    }

    /// Record an abort.
    pub fn abort(&self, txn: TxnToken) {
        if self.enabled {
            self.record(txn, Op::abort(Self::txn_id(txn)));
        }
    }

    fn annotate_value(op: Op, row: Option<&Row>) -> Op {
        match row.and_then(|r| r.get_int("value").or_else(|| r.get_int("balance"))) {
            Some(v) => op.with_value(v),
            None => op,
        }
    }

    /// The history recorded so far: the per-shard buffers merged by their
    /// global sequence tickets.
    pub fn history(&self) -> History {
        let mut stamped: Vec<(u64, Op)> = self
            .shards
            .iter()
            .flat_map(|shard| shard.lock().clone())
            .collect();
        stamped.sort_unstable_by_key(|(ticket, _)| *ticket);
        History::from_ops_unchecked(stamped.into_iter().map(|(_, op)| op).collect())
    }

    /// Discard everything recorded so far (predicate registrations are
    /// kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().clear();
        }
    }

    /// Transactions that appear in the recorded history.
    pub fn transactions(&self) -> Vec<TxnId> {
        self.history().transactions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critique_core::{detect, Phenomenon};
    use critique_storage::Condition;

    #[test]
    fn records_reads_writes_and_terminators() {
        let rec = HistoryRecorder::new(true);
        let row = Row::new().with("balance", 50);
        rec.read(TxnToken(1), "accounts", RowId(0), Some(&row));
        rec.write(
            TxnToken(1),
            "accounts",
            RowId(0),
            Some(&row),
            Some(&Row::new().with("balance", 10)),
            false,
        );
        rec.commit(TxnToken(1));
        let h = rec.history();
        assert_eq!(h.len(), 3);
        assert_eq!(h.to_notation(), "r1[accounts.0=50] w1[accounts.0=10] c1");
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = HistoryRecorder::new(false);
        rec.read(TxnToken(1), "t", RowId(0), None);
        rec.commit(TxnToken(1));
        assert!(rec.history().is_empty());
    }

    #[test]
    fn writes_are_annotated_against_previously_read_predicates() {
        let rec = HistoryRecorder::new(true);
        let active = RowPredicate::new("employees", Condition::eq("active", true));
        rec.predicate_read(TxnToken(1), &active);
        // T2 inserts a new active employee: recorded as an insert into P.
        let new_row = Row::new().with("active", true);
        rec.write(
            TxnToken(2),
            "employees",
            RowId(7),
            None,
            Some(&new_row),
            false,
        );
        rec.commit(TxnToken(2));
        rec.commit(TxnToken(1));
        let h = rec.history();
        // The recorded history exhibits the broad phantom P3.
        assert!(detect::exhibits(&h, Phenomenon::P3));
        assert!(!detect::exhibits(&h, Phenomenon::A3));
    }

    #[test]
    fn updates_moving_rows_out_of_a_predicate_still_count_as_mutations() {
        let rec = HistoryRecorder::new(true);
        let active = RowPredicate::new("employees", Condition::eq("active", true));
        rec.predicate_read(TxnToken(1), &active);
        let before = Row::new().with("active", true);
        let after = Row::new().with("active", false);
        rec.write(
            TxnToken(2),
            "employees",
            RowId(3),
            Some(&before),
            Some(&after),
            false,
        );
        rec.commit(TxnToken(2));
        rec.commit(TxnToken(1));
        assert!(detect::exhibits(&rec.history(), Phenomenon::P3));
    }

    #[test]
    fn unrelated_writes_are_not_annotated() {
        let rec = HistoryRecorder::new(true);
        let active = RowPredicate::new("employees", Condition::eq("active", true));
        rec.predicate_read(TxnToken(1), &active);
        let row = Row::new().with("balance", 10);
        rec.write(TxnToken(2), "accounts", RowId(1), None, Some(&row), false);
        rec.commit(TxnToken(2));
        rec.commit(TxnToken(1));
        assert!(!detect::exhibits(&rec.history(), Phenomenon::P3));
    }

    #[test]
    fn cursor_ops_and_values_round_trip() {
        let rec = HistoryRecorder::new(true);
        let row = Row::new().with("value", 100);
        rec.cursor_read(TxnToken(1), "t", RowId(0), Some(&row));
        rec.write(
            TxnToken(1),
            "t",
            RowId(0),
            Some(&row),
            Some(&Row::new().with("value", 130)),
            true,
        );
        rec.commit(TxnToken(1));
        assert_eq!(rec.history().to_notation(), "rc1[t.0=100] wc1[t.0=130] c1");
    }

    #[test]
    fn clear_resets_operations() {
        let rec = HistoryRecorder::new(true);
        rec.read(TxnToken(1), "t", RowId(0), None);
        rec.clear();
        assert!(rec.history().is_empty());
        assert!(rec.transactions().is_empty());
    }
}
