//! Engine configuration.

use critique_core::IsolationLevel;
pub use critique_lock::{FairnessPolicy, GrantPolicy, UpgradeStrategy};
pub use critique_storage::{BackendKind, Durability, GroupCommit, ReadPath};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// What to do when a lock request conflicts with locks held by other
/// transactions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum LockWaitPolicy {
    /// Return [`crate::TxnError::WouldBlock`] immediately.  This is what the
    /// deterministic interleaving driver uses: the harness decides whether
    /// to retry the operation after the blocker finishes.
    #[default]
    Fail,
    /// Block until the lock is granted, a deadlock makes this transaction
    /// the victim, or the timeout expires.  Used by the threaded
    /// throughput benchmarks.
    Block {
        /// Maximum time to wait for a single lock.
        timeout_ms: u64,
    },
}

impl LockWaitPolicy {
    /// The blocking timeout as a [`Duration`], if blocking.
    pub fn timeout(&self) -> Option<Duration> {
        match self {
            LockWaitPolicy::Fail => None,
            LockWaitPolicy::Block { timeout_ms } => Some(Duration::from_millis(*timeout_ms)),
        }
    }
}

/// Configuration of a [`crate::Database`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct EngineConfig {
    /// The isolation level every transaction of this database runs at.
    pub level: IsolationLevel,
    /// Lock wait behaviour (ignored by Snapshot Isolation reads, which
    /// never block).
    pub lock_wait: LockWaitPolicy,
    /// Record executed operations into a history (on by default; the
    /// throughput benchmarks switch it off to measure the schedulers
    /// themselves).
    pub record_history: bool,
    /// Number of shards the substrate is partitioned into: the store's
    /// version-chain shards, the lock manager's item-lock shards, and the
    /// history recorder's buffers.  `1` degenerates to the old
    /// global-lock layout (useful as a contention baseline); clamped to at
    /// least 1.
    pub shards: usize,
    /// How released locks are handed to blocked waiters (only observable
    /// under [`LockWaitPolicy::Block`]): FIFO direct handoff by default,
    /// or the wake-all thundering-herd baseline the contended-handoff
    /// benchmark compares against.
    pub grant: GrantPolicy,
    /// Which storage engine the database runs on.  Every isolation
    /// scheduler talks to storage through the
    /// [`critique_storage::StorageBackend`] trait, so the choice changes
    /// the representation of versions — never the Table 3/4 verdicts (the
    /// conformance exerciser proves this per backend).
    pub backend: BackendKind,
    /// How [`crate::Transaction::read_for_update`] locks the read half of
    /// a read-modify-write at the locking levels: Shared now and an
    /// Exclusive upgrade at the write (the historical baseline), or an
    /// update-mode (U) lock taken at the read, which serialises would-be
    /// upgraders and removes the S→X upgrade-deadlock cascade.  Plain
    /// reads and the multiversion levels are unaffected.
    pub upgrade: UpgradeStrategy,
    /// Which read discipline the default ([`BackendKind::MvStore`])
    /// backend uses: the epoch-pinned lock-free path (default) or the
    /// stripe-read-lock baseline the read-heavy bench series measures
    /// against.  The log-structured backend ignores the knob.
    pub read_path: ReadPath,
    /// Whether the storage backend persists to disk.  Ephemeral (default)
    /// keeps everything in memory; [`Durability::Fsync`] gives the
    /// log-structured backend a write-ahead directory with fsync on every
    /// commit boundary.  [`BackendKind::MvStore`] ignores the knob.
    pub durability: Durability,
    /// How a durable log-structured backend schedules its commit fsyncs:
    /// one per writing commit ([`GroupCommit::Off`], the default), or
    /// batched behind a group-commit leader that holds a window open and
    /// issues a single fsync for every committer that enqueued meanwhile.
    /// Ignored unless `durability` is [`Durability::Fsync`] and the
    /// backend is [`BackendKind::LogStructured`].
    pub group_commit: GroupCommit,
    /// Whether an uncontended lock acquisition may overtake conflicting
    /// parked waiters (only observable under [`LockWaitPolicy::Block`]):
    /// barging by default, or the strict-FIFO fast path whose throughput
    /// cost the contended-handoff benchmark grid records.
    pub fairness: FairnessPolicy,
    /// Whether commit-time change notification is available (on by
    /// default).  With watchers enabled, a database with zero
    /// subscriptions pays one atomic load per commit; with the knob off,
    /// [`crate::Database::watch_key`] and friends hand out inert watchers
    /// that never receive events — the benchmark baseline for measuring
    /// the fan-out cost itself.
    pub watchers: bool,
}

impl EngineConfig {
    /// Default configuration for a given isolation level: non-blocking lock
    /// waits, history recording enabled, default shard count.
    pub fn new(level: IsolationLevel) -> Self {
        EngineConfig {
            level,
            lock_wait: LockWaitPolicy::Fail,
            record_history: true,
            shards: critique_storage::DEFAULT_SHARDS,
            grant: GrantPolicy::default(),
            backend: BackendKind::default(),
            upgrade: UpgradeStrategy::default(),
            read_path: ReadPath::default(),
            durability: Durability::default(),
            group_commit: GroupCommit::default(),
            fairness: FairnessPolicy::default(),
            watchers: true,
        }
    }

    /// Switch to blocking lock waits with the given timeout.
    pub fn blocking(mut self, timeout_ms: u64) -> Self {
        self.lock_wait = LockWaitPolicy::Block { timeout_ms };
        self
    }

    /// Override the contended-grant policy.
    pub fn with_grant_policy(mut self, grant: GrantPolicy) -> Self {
        self.grant = grant;
        self
    }

    /// Disable history recording.
    pub fn without_history(mut self) -> Self {
        self.record_history = false;
        self
    }

    /// Override the substrate shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Select the storage backend the database runs on.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Override the read-modify-write locking strategy.
    pub fn with_upgrade_strategy(mut self, upgrade: UpgradeStrategy) -> Self {
        self.upgrade = upgrade;
        self
    }

    /// Override the storage read discipline (MvStore only).
    pub fn with_read_path(mut self, read_path: ReadPath) -> Self {
        self.read_path = read_path;
        self
    }

    /// Override the storage durability mode (log-structured backend only).
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Override the commit fsync scheduling (durable log-structured
    /// backend only).
    pub fn with_group_commit(mut self, group_commit: GroupCommit) -> Self {
        self.group_commit = group_commit;
        self
    }

    /// Override the lock fast-path fairness policy.
    pub fn with_fairness(mut self, fairness: FairnessPolicy) -> Self {
        self.fairness = fairness;
        self
    }

    /// Disable commit-time change notification (subscriptions become
    /// inert; the commit path skips the watcher fast-path check).
    pub fn without_watchers(mut self) -> Self {
        self.watchers = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let cfg = EngineConfig::new(IsolationLevel::ReadCommitted);
        assert_eq!(cfg.level, IsolationLevel::ReadCommitted);
        assert_eq!(cfg.lock_wait, LockWaitPolicy::Fail);
        assert!(cfg.record_history);
        assert_eq!(cfg.shards, critique_storage::DEFAULT_SHARDS);
        assert_eq!(cfg.grant, GrantPolicy::DirectHandoff);
        assert_eq!(cfg.backend, BackendKind::MvStore);
        assert_eq!(cfg.upgrade, UpgradeStrategy::SharedThenUpgrade);
        assert_eq!(cfg.read_path, ReadPath::Epoch);
        assert_eq!(cfg.durability, Durability::Ephemeral);
        assert_eq!(cfg.group_commit, GroupCommit::Off);
        assert_eq!(cfg.fairness, FairnessPolicy::Barging);
        assert!(cfg.watchers);
        assert_eq!(LockWaitPolicy::default(), LockWaitPolicy::Fail);
    }

    #[test]
    fn watchers_override() {
        let cfg = EngineConfig::new(IsolationLevel::Serializable).without_watchers();
        assert!(!cfg.watchers);
    }

    #[test]
    fn read_path_override() {
        let cfg =
            EngineConfig::new(IsolationLevel::SnapshotIsolation).with_read_path(ReadPath::Locked);
        assert_eq!(cfg.read_path, ReadPath::Locked);
    }

    #[test]
    fn upgrade_strategy_override() {
        let cfg = EngineConfig::new(IsolationLevel::Serializable)
            .with_upgrade_strategy(UpgradeStrategy::UpdateLock);
        assert_eq!(cfg.upgrade, UpgradeStrategy::UpdateLock);
    }

    #[test]
    fn backend_override() {
        let cfg = EngineConfig::new(IsolationLevel::Serializable)
            .with_backend(BackendKind::LogStructured);
        assert_eq!(cfg.backend, BackendKind::LogStructured);
    }

    #[test]
    fn grant_policy_override() {
        let cfg =
            EngineConfig::new(IsolationLevel::Serializable).with_grant_policy(GrantPolicy::WakeAll);
        assert_eq!(cfg.grant, GrantPolicy::WakeAll);
    }

    #[test]
    fn shard_override_is_clamped() {
        let cfg = EngineConfig::new(IsolationLevel::ReadCommitted).with_shards(0);
        assert_eq!(cfg.shards, 1);
        let cfg = EngineConfig::new(IsolationLevel::ReadCommitted).with_shards(4);
        assert_eq!(cfg.shards, 4);
    }

    #[test]
    fn durability_override() {
        let cfg = EngineConfig::new(IsolationLevel::Serializable)
            .with_backend(BackendKind::LogStructured)
            .with_durability(Durability::Fsync);
        assert_eq!(cfg.durability, Durability::Fsync);
    }

    #[test]
    fn group_commit_override() {
        let cfg = EngineConfig::new(IsolationLevel::Serializable)
            .with_backend(BackendKind::LogStructured)
            .with_durability(Durability::Fsync)
            .with_group_commit(GroupCommit::On { window_micros: 150 });
        assert_eq!(cfg.group_commit, GroupCommit::On { window_micros: 150 });
    }

    #[test]
    fn fairness_override() {
        let cfg = EngineConfig::new(IsolationLevel::Serializable)
            .with_fairness(FairnessPolicy::QueueFifo);
        assert_eq!(cfg.fairness, FairnessPolicy::QueueFifo);
    }

    #[test]
    fn builders() {
        let cfg = EngineConfig::new(IsolationLevel::Serializable)
            .blocking(250)
            .without_history();
        assert_eq!(cfg.lock_wait, LockWaitPolicy::Block { timeout_ms: 250 });
        assert_eq!(cfg.lock_wait.timeout(), Some(Duration::from_millis(250)));
        assert!(!cfg.record_history);
        assert_eq!(LockWaitPolicy::Fail.timeout(), None);
    }
}
