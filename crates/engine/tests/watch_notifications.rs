//! End-to-end semantics of commit-time change notification.
//!
//! The invariants under test are the ones `crates/engine/src/watch.rs`
//! promises (and the conformance exerciser holds at scale):
//!
//! * events carry committed values only — aborted transactions notify
//!   nothing (P1-freedom for observers);
//! * exactly one event per matching commit, in commit-timestamp order,
//!   on both storage backends;
//! * predicate watchers fire on either image (rows entering *and*
//!   leaving the predicate);
//! * delivery composes with group commit (no event before the batch
//!   leader's fsync returns);
//! * a database with watchers disabled hands out inert subscriptions.

use critique_core::IsolationLevel;
use critique_engine::prelude::*;
use critique_storage::{Comparison, Condition, Row, RowId};

fn db_on(backend: BackendKind) -> Database {
    Database::with_config(EngineConfig::new(IsolationLevel::Serializable).with_backend(backend))
}

#[test]
fn committed_writes_notify_with_before_and_after_images() {
    for backend in BackendKind::ALL {
        let db = db_on(backend);
        let setup = db.begin();
        let id = setup
            .insert("accounts", Row::new().with("balance", 100))
            .unwrap();
        setup.commit().unwrap();

        let watcher = db.watch_key("accounts", id);
        let t = db.begin();
        t.update("accounts", id, Row::new().with("balance", 60))
            .unwrap();
        t.commit().unwrap();

        let event = watcher
            .try_recv()
            .unwrap_or_else(|| panic!("{backend}: committed update produced no notification"));
        assert_eq!(event.changes.len(), 1, "{backend}");
        let change = &event.changes[0];
        assert_eq!(change.kind, ChangeKind::Updated, "{backend}");
        assert_eq!(
            change.before.as_ref().and_then(|r| r.get_int("balance")),
            Some(100),
            "{backend}: before image must be the pre-commit committed value"
        );
        assert_eq!(
            change.after.as_ref().and_then(|r| r.get_int("balance")),
            Some(60),
            "{backend}"
        );
        assert!(watcher.try_recv().is_none(), "{backend}: exactly one event");
    }
}

#[test]
fn aborted_transactions_notify_nothing() {
    for backend in BackendKind::ALL {
        let db = db_on(backend);
        let setup = db.begin();
        let id = setup
            .insert("accounts", Row::new().with("balance", 100))
            .unwrap();
        setup.commit().unwrap();

        let key = db.watch_key("accounts", id);
        let table = db.watch_table("accounts");
        let predicate = db.watch_predicate("accounts", Condition::True);

        let t = db.begin();
        t.update("accounts", id, Row::new().with("balance", -1))
            .unwrap();
        t.abort().unwrap();

        // A dropped-while-active transaction rolls back too.
        let t = db.begin();
        t.update("accounts", id, Row::new().with("balance", -2))
            .unwrap();
        drop(t);

        for (name, w) in [("key", &key), ("table", &table), ("predicate", &predicate)] {
            assert_eq!(
                w.pending(),
                0,
                "{backend}: {name} watcher saw an aborted write"
            );
        }

        // The rolled-back value never leaks into a later event's images.
        let t = db.begin();
        t.update("accounts", id, Row::new().with("balance", 70))
            .unwrap();
        t.commit().unwrap();
        let event = key.try_recv().unwrap();
        assert_eq!(
            event.changes[0]
                .before
                .as_ref()
                .and_then(|r| r.get_int("balance")),
            Some(100),
            "{backend}: before image must skip aborted versions"
        );
    }
}

#[test]
fn insert_update_delete_report_net_kinds() {
    for backend in BackendKind::ALL {
        let db = db_on(backend);
        let watcher = db.watch_table("t");

        let t = db.begin();
        let id = t.insert("t", Row::new().with("value", 1)).unwrap();
        t.commit().unwrap();
        assert_eq!(
            watcher.try_recv().unwrap().changes[0].kind,
            ChangeKind::Inserted,
            "{backend}"
        );

        let t = db.begin();
        t.update("t", id, Row::new().with("value", 2)).unwrap();
        t.commit().unwrap();
        assert_eq!(
            watcher.try_recv().unwrap().changes[0].kind,
            ChangeKind::Updated,
            "{backend}"
        );

        let t = db.begin();
        t.delete("t", id).unwrap();
        t.commit().unwrap();
        let event = watcher.try_recv().unwrap();
        assert_eq!(event.changes[0].kind, ChangeKind::Deleted, "{backend}");
        assert_eq!(event.changes[0].after, None, "{backend}");

        // Insert + delete inside one transaction nets out to nothing.
        let t = db.begin();
        let ghost = t.insert("t", Row::new().with("value", 9)).unwrap();
        t.delete("t", ghost).unwrap();
        t.commit().unwrap();
        assert_eq!(
            watcher.pending(),
            0,
            "{backend}: net no-op commit must not notify"
        );
    }
}

#[test]
fn one_event_per_commit_in_commit_order() {
    for backend in BackendKind::ALL {
        let db = db_on(backend);
        let watcher = db.watch_table("accounts");
        let mut ids: Vec<RowId> = Vec::new();
        for i in 0..5 {
            let t = db.begin();
            ids.push(t.insert("accounts", Row::new().with("balance", i)).unwrap());
            // A multi-row commit still produces one event.
            if i == 3 {
                t.insert("accounts", Row::new().with("balance", 100 + i))
                    .unwrap();
            }
            t.commit().unwrap();
        }
        let events = watcher.drain();
        assert_eq!(events.len(), 5, "{backend}: one event per commit");
        let mut last = None;
        for event in &events {
            assert!(
                last.is_none_or(|prev| prev < event.commit_ts),
                "{backend}: commit timestamps must be strictly increasing"
            );
            last = Some(event.commit_ts);
        }
        assert_eq!(events[3].changes.len(), 2, "{backend}");
    }
}

#[test]
fn predicate_watchers_fire_on_rows_entering_and_leaving() {
    for backend in BackendKind::ALL {
        let db = db_on(backend);
        let setup = db.begin();
        let low = setup
            .insert("accounts", Row::new().with("balance", 10))
            .unwrap();
        let high = setup
            .insert("accounts", Row::new().with("balance", 500))
            .unwrap();
        setup.commit().unwrap();

        let rich = db.watch_predicate(
            "accounts",
            Condition::compare("balance", Comparison::Gt, 100),
        );

        // Stays below the threshold: no event.
        let t = db.begin();
        t.update("accounts", low, Row::new().with("balance", 20))
            .unwrap();
        t.commit().unwrap();
        assert_eq!(rich.pending(), 0, "{backend}");

        // Enters the predicate.
        let t = db.begin();
        t.update("accounts", low, Row::new().with("balance", 300))
            .unwrap();
        t.commit().unwrap();
        assert_eq!(rich.pending(), 1, "{backend}");
        assert_eq!(rich.try_recv().unwrap().changes[0].row, low);

        // Leaves the predicate: the before image matched, so it fires.
        let t = db.begin();
        t.update("accounts", high, Row::new().with("balance", 5))
            .unwrap();
        t.commit().unwrap();
        assert_eq!(rich.try_recv().unwrap().changes[0].row, high);

        // Other tables never leak in.
        let t = db.begin();
        t.insert("orders", Row::new().with("balance", 9999))
            .unwrap();
        t.commit().unwrap();
        assert_eq!(rich.pending(), 0, "{backend}");
    }
}

#[test]
fn group_commit_batches_notify_after_the_fsync() {
    // A durable log-structured database under group commit: the event
    // arrives only once `flush_commit` (the batch leader's fsync) has
    // returned — which `Transaction::commit` awaits, so observing the
    // event after `commit()` returns proves publication sits behind the
    // durability barrier rather than the in-memory stamp.
    let db = Database::with_config(
        EngineConfig::new(IsolationLevel::SnapshotIsolation)
            .with_backend(BackendKind::LogStructured)
            .with_durability(Durability::Fsync)
            .with_group_commit(GroupCommit::On { window_micros: 100 }),
    );
    let watcher = db.watch_table("t");
    let t = db.begin();
    t.insert("t", Row::new().with("value", 1)).unwrap();
    t.commit().unwrap();
    let event = watcher
        .recv_timeout(std::time::Duration::from_secs(5))
        .expect("durable group-commit batch must notify after its fsync");
    assert_eq!(event.changes.len(), 1);
}

#[test]
fn disabled_watchers_are_inert_and_commits_still_work() {
    let db =
        Database::with_config(EngineConfig::new(IsolationLevel::Serializable).without_watchers());
    let watcher = db.watch_table("t");
    let t = db.begin();
    let id = t.insert("t", Row::new().with("value", 1)).unwrap();
    t.commit().unwrap();
    assert_eq!(watcher.pending(), 0);
    assert_eq!(
        db.read_committed("t", id).unwrap().get_int("value"),
        Some(1)
    );
}

#[test]
fn dropped_watchers_stop_receiving() {
    let db = db_on(BackendKind::MvStore);
    let keep = db.watch_table("t");
    let dropped = db.watch_table("t");
    drop(dropped);
    let t = db.begin();
    t.insert("t", Row::new().with("value", 1)).unwrap();
    t.commit().unwrap();
    assert_eq!(keep.pending(), 1);
}

#[test]
fn concurrent_committers_deliver_in_timestamp_order() {
    // Racing writers on both backends: every subscriber's stream must be
    // strictly increasing in commit timestamp with no gaps or duplicates
    // per commit, regardless of wake order after the commit lock.
    for backend in BackendKind::ALL {
        let db = Database::with_config(
            EngineConfig::new(IsolationLevel::SnapshotIsolation)
                .with_backend(backend)
                .blocking(2_000),
        );
        let watcher = db.watch_table("accounts");
        let threads = 4;
        let per_thread = 25;
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let db = db.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let t = db.begin();
                        t.insert(
                            "accounts",
                            Row::new().with("balance", (worker * per_thread + i) as i64),
                        )
                        .unwrap();
                        t.commit().unwrap();
                    }
                });
            }
        });
        let events = watcher.drain();
        assert_eq!(
            events.len(),
            threads * per_thread,
            "{backend}: one event per committed transaction"
        );
        for pair in events.windows(2) {
            assert!(
                pair[0].commit_ts < pair[1].commit_ts,
                "{backend}: delivery must follow commit-timestamp order"
            );
        }
    }
}
