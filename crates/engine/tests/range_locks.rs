//! Range-read locking behavior: interval predicate locks must let
//! transactions over provably disjoint key ranges of *one* table run
//! concurrently, while overlapping ranges still serialize.
//!
//! The first test is the deterministic regression for the table-granular
//! predicate domain this repo used to ship: `may_overlap` once answered
//! "same table?"; under that rule the second transaction below would
//! report `WouldBlock` even though the two `FOR UPDATE` ranges share no
//! key.  The stress test then shows the finer conflict test introduces no
//! new deadlocks on a hot table.

use critique_core::IsolationLevel;
use critique_engine::{Database, EngineConfig, TxnError, UpgradeStrategy};
use critique_storage::{KeyInterval, Row};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Seed `rows` tasks with `hours = i` and an ordered index on `hours`.
fn seed(db: &Database, rows: i64) {
    db.store().create_table("tasks");
    db.store().create_index("tasks", "hours");
    let setup = db.begin();
    for i in 0..rows {
        setup
            .insert("tasks", Row::new().with("hours", i).with("touched", 0))
            .unwrap();
    }
    setup.commit().unwrap();
}

#[test]
fn disjoint_range_for_update_reads_do_not_block() {
    // Fail-fast lock waits make the regression deterministic: any false
    // conflict surfaces as an immediate `WouldBlock`, not a stall.
    let config = EngineConfig::new(IsolationLevel::Serializable)
        .with_upgrade_strategy(UpgradeStrategy::UpdateLock);
    let db = Database::with_config(config);
    seed(&db, 40);

    let low_writer = db.begin();
    let high_writer = db.begin();

    let low = low_writer
        .read_range_for_update("tasks", "hours", &KeyInterval::range(Some(0), Some(9)))
        .expect("the low range is uncontended");
    assert_eq!(low.len(), 10);

    // The point of the interval domain: [30, 39] shares no key with
    // [0, 9], so this must grant even though both locks are U mode on the
    // same table.  (The old table-granular domain blocked here.)
    let high = high_writer
        .read_range_for_update("tasks", "hours", &KeyInterval::range(Some(30), Some(39)))
        .expect("a disjoint range on the same table must not conflict");
    assert_eq!(high.len(), 10);

    // Both writers proceed to write inside their ranges and commit.
    for (id, _) in &low {
        low_writer
            .update("tasks", *id, Row::new().with("touched", 1))
            .unwrap();
    }
    for (id, _) in &high {
        high_writer
            .update("tasks", *id, Row::new().with("touched", 1))
            .unwrap();
    }

    // Overlap still bites: a range straddling the low writer's interval
    // reports its holder as the blocker instead of being granted.
    let overlapping = db.begin();
    let blocked =
        overlapping.read_range_for_update("tasks", "hours", &KeyInterval::range(Some(5), Some(34)));
    match blocked {
        Err(TxnError::WouldBlock { blockers }) => {
            assert!(!blockers.is_empty(), "the overlap names its holders");
        }
        other => panic!("an overlapping range must conflict, got {other:?}"),
    }

    low_writer.commit().unwrap();
    high_writer.commit().unwrap();
    assert_eq!(db.locks_held(), 0);
}

#[test]
fn unbounded_range_still_conflicts_with_every_bounded_one() {
    // The conservatism contract: a range with no extractable bound falls
    // back to the whole-table interval and conflicts with any bounded
    // range on the table.
    let config = EngineConfig::new(IsolationLevel::Serializable)
        .with_upgrade_strategy(UpgradeStrategy::UpdateLock);
    let db = Database::with_config(config);
    seed(&db, 10);

    let bounded = db.begin();
    bounded
        .read_range_for_update("tasks", "hours", &KeyInterval::range(Some(0), Some(3)))
        .unwrap();

    let unbounded = db.begin();
    let outcome =
        unbounded.read_range_for_update("tasks", "hours", &KeyInterval::range(None, None));
    assert!(
        matches!(outcome, Err(TxnError::WouldBlock { .. })),
        "the whole-table fallback must conflict with a bounded holder"
    );
    drop(unbounded);
    bounded.commit().unwrap();
    assert_eq!(db.locks_held(), 0);
}

#[test]
fn hot_table_range_stress_no_new_deadlocks() {
    // Workers repeatedly lock and rewrite their own 10-key stripe of one
    // hot table.  Stripes are pairwise disjoint, so with interval locks
    // the workers never contend — no deadlock verdicts, no timeouts —
    // while the old table-granular domain would have serialized (and
    // upgrade-cycled) all of them.
    const WORKERS: i64 = 6;
    const ROUNDS: usize = 15;
    const STRIPE: i64 = 10;

    let config = EngineConfig::new(IsolationLevel::Serializable)
        .blocking(20_000)
        .without_history()
        .with_upgrade_strategy(UpgradeStrategy::UpdateLock);
    let db = Database::with_config(config);
    seed(&db, WORKERS * STRIPE);

    let deadlocks = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for worker in 0..WORKERS {
            let db = db.clone();
            let deadlocks = Arc::clone(&deadlocks);
            scope.spawn(move || {
                let lo = worker * STRIPE;
                let range = KeyInterval::range(Some(lo), Some(lo + STRIPE - 1));
                for round in 0..ROUNDS {
                    let mut attempts = 0;
                    loop {
                        attempts += 1;
                        assert!(attempts < 10_000, "stripe write livelocked");
                        let txn = db.begin();
                        let result = txn
                            .read_range_for_update("tasks", "hours", &range)
                            .and_then(|rows| {
                                assert_eq!(rows.len(), STRIPE as usize);
                                for (id, _) in rows {
                                    txn.update(
                                        "tasks",
                                        id,
                                        Row::new().with("touched", round as i64 + 1),
                                    )?;
                                }
                                Ok(())
                            })
                            .and_then(|()| txn.commit());
                        match result {
                            Ok(()) => break,
                            Err(TxnError::Deadlock) => {
                                deadlocks.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(std::time::Duration::from_micros(500));
                            }
                            Err(TxnError::LockTimeout) => {
                                panic!("a 20s deadline expired on a disjoint stripe")
                            }
                            Err(other) => panic!("unexpected error: {other:?}"),
                        }
                    }
                }
            });
        }
    });

    assert_eq!(
        deadlocks.load(Ordering::Relaxed),
        0,
        "disjoint stripes have nothing to deadlock on"
    );
    assert_eq!(db.locks_held(), 0);
}
