//! Behavioural tests: each scheduler permits / prevents exactly the
//! phenomena the paper's Table 4 says it should, on the paper's own
//! scenarios.

use critique_core::{detect, IsolationLevel, Phenomenon};
use critique_engine::prelude::*;
use critique_storage::{Condition, Row, RowId, RowPredicate};

/// Create a database with one `accounts` table holding two rows `x` and
/// `y`, both with balance 50 (the setup of H1/H5), and return their ids.
fn bank(level: IsolationLevel) -> (Database, RowId, RowId) {
    let db = Database::new(level);
    let setup = db.begin();
    let x = setup
        .insert("accounts", Row::new().with("balance", 50))
        .unwrap();
    let y = setup
        .insert("accounts", Row::new().with("balance", 50))
        .unwrap();
    setup.commit().unwrap();
    db.clear_history();
    (db, x, y)
}

fn balance(db: &Database, row: RowId) -> i64 {
    db.read_committed("accounts", row)
        .unwrap()
        .get_int("balance")
        .unwrap()
}

// ---------------------------------------------------------------------
// Dirty writes (P0) and dirty reads (P1).
// ---------------------------------------------------------------------

#[test]
fn degree0_allows_dirty_writes() {
    let (db, x, _) = bank(IsolationLevel::Degree0);
    let t1 = db.begin();
    let t2 = db.begin();
    t1.update("accounts", x, Row::new().with("balance", 1))
        .unwrap();
    // Degree 0 holds only short write locks, so T2 may overwrite T1's
    // uncommitted write.
    t2.update("accounts", x, Row::new().with("balance", 2))
        .unwrap();
    t2.commit().unwrap();
    t1.commit().unwrap();
    assert!(detect::exhibits(&db.recorded_history(), Phenomenon::P0));
}

#[test]
fn read_uncommitted_prevents_dirty_writes_but_allows_dirty_reads() {
    let (db, x, _) = bank(IsolationLevel::ReadUncommitted);
    let t1 = db.begin();
    let t2 = db.begin();
    t1.update("accounts", x, Row::new().with("balance", 10))
        .unwrap();
    // Long write locks: the second writer blocks.
    let blocked = t2.update("accounts", x, Row::new().with("balance", 20));
    assert!(matches!(blocked, Err(TxnError::WouldBlock { .. })));
    // But reads take no locks, so T2 sees the uncommitted 10.
    let dirty = t2.read("accounts", x).unwrap().unwrap();
    assert_eq!(dirty.get_int("balance"), Some(10));
    t1.abort().unwrap();
    t2.commit().unwrap();
    let h = db.recorded_history();
    assert!(!detect::exhibits(&h, Phenomenon::P0));
    assert!(detect::exhibits(&h, Phenomenon::P1));
    assert!(detect::exhibits(&h, Phenomenon::A1));
}

#[test]
fn read_committed_prevents_dirty_reads() {
    let (db, x, _) = bank(IsolationLevel::ReadCommitted);
    let t1 = db.begin();
    let t2 = db.begin();
    t1.update("accounts", x, Row::new().with("balance", 10))
        .unwrap();
    // The read lock request conflicts with T1's long write lock.
    assert!(matches!(
        t2.read("accounts", x),
        Err(TxnError::WouldBlock { .. })
    ));
    t1.commit().unwrap();
    // After T1 commits the read goes through and sees committed data.
    assert_eq!(
        t2.read("accounts", x).unwrap().unwrap().get_int("balance"),
        Some(10)
    );
    t2.commit().unwrap();
    assert!(!detect::exhibits(&db.recorded_history(), Phenomenon::P1));
}

#[test]
fn snapshot_isolation_reads_never_block_and_never_see_dirty_data() {
    let (db, x, _) = bank(IsolationLevel::SnapshotIsolation);
    let t1 = db.begin();
    let t2 = db.begin();
    t1.update("accounts", x, Row::new().with("balance", 10))
        .unwrap();
    // T2 is not blocked and sees the committed snapshot value.
    assert_eq!(
        t2.read("accounts", x).unwrap().unwrap().get_int("balance"),
        Some(50)
    );
    t1.commit().unwrap();
    // Still 50: updates committed after T2's start are invisible, so the
    // read is repeatable and never observes uncommitted data.  (The raw
    // recorded history is multi-version; the single-valued structural
    // detectors are not applied to it — the semantic outcome is what the
    // paper's Table 4 row asserts.)
    assert_eq!(
        t2.read("accounts", x).unwrap().unwrap().get_int("balance"),
        Some(50)
    );
    t2.commit().unwrap();
}

// ---------------------------------------------------------------------
// Fuzzy reads (P2 / A2) and read skew (A5A).
// ---------------------------------------------------------------------

#[test]
fn read_committed_allows_fuzzy_reads_and_read_skew() {
    let (db, x, y) = bank(IsolationLevel::ReadCommitted);
    let t1 = db.begin();
    let t2 = db.begin();
    // T1 reads x = 50 (short lock, released immediately).
    assert_eq!(
        t1.read("accounts", x).unwrap().unwrap().get_int("balance"),
        Some(50)
    );
    // T2 transfers 40 from x to y and commits.
    t2.update("accounts", x, Row::new().with("balance", 10))
        .unwrap();
    t2.update("accounts", y, Row::new().with("balance", 90))
        .unwrap();
    t2.commit().unwrap();
    // T1 now reads y = 90: inconsistent total of 140 (the paper's H2).
    assert_eq!(
        t1.read("accounts", y).unwrap().unwrap().get_int("balance"),
        Some(90)
    );
    t1.commit().unwrap();
    let h = db.recorded_history();
    assert!(detect::exhibits(&h, Phenomenon::P2));
    assert!(detect::exhibits(&h, Phenomenon::A5A));
}

#[test]
fn repeatable_read_prevents_fuzzy_reads() {
    let (db, x, _) = bank(IsolationLevel::RepeatableRead);
    let t1 = db.begin();
    let t2 = db.begin();
    assert_eq!(
        t1.read("accounts", x).unwrap().unwrap().get_int("balance"),
        Some(50)
    );
    // T1 holds a long read lock on x, so T2's update blocks.
    assert!(matches!(
        t2.update("accounts", x, Row::new().with("balance", 10)),
        Err(TxnError::WouldBlock { .. })
    ));
    t1.commit().unwrap();
    t2.update("accounts", x, Row::new().with("balance", 10))
        .unwrap();
    t2.commit().unwrap();
    let h = db.recorded_history();
    assert!(!detect::exhibits(&h, Phenomenon::P2));
}

#[test]
fn snapshot_isolation_prevents_read_skew() {
    let (db, x, y) = bank(IsolationLevel::SnapshotIsolation);
    let t1 = db.begin();
    let t2 = db.begin();
    let seen_x = t1
        .read("accounts", x)
        .unwrap()
        .unwrap()
        .get_int("balance")
        .unwrap();
    t2.update("accounts", x, Row::new().with("balance", 10))
        .unwrap();
    t2.update("accounts", y, Row::new().with("balance", 90))
        .unwrap();
    t2.commit().unwrap();
    // T1 still sees the old, consistent pair: the total it observes is the
    // invariant 100, not the skewed 140 of the READ COMMITTED run.
    let seen_y = t1
        .read("accounts", y)
        .unwrap()
        .unwrap()
        .get_int("balance")
        .unwrap();
    assert_eq!(seen_x + seen_y, 100);
    t1.commit().unwrap();
}

#[test]
fn oracle_read_consistency_allows_read_skew_across_statements() {
    let (db, x, y) = bank(IsolationLevel::OracleReadConsistency);
    let t1 = db.begin();
    let t2 = db.begin();
    assert_eq!(
        t1.read("accounts", x).unwrap().unwrap().get_int("balance"),
        Some(50)
    );
    t2.update("accounts", x, Row::new().with("balance", 10))
        .unwrap();
    t2.update("accounts", y, Row::new().with("balance", 90))
        .unwrap();
    t2.commit().unwrap();
    // Each statement gets a fresh snapshot, so the second read sees 90.
    assert_eq!(
        t1.read("accounts", y).unwrap().unwrap().get_int("balance"),
        Some(90)
    );
    t1.commit().unwrap();
    assert!(detect::exhibits(&db.recorded_history(), Phenomenon::A5A));
}

// ---------------------------------------------------------------------
// Lost updates (P4 / P4C).
// ---------------------------------------------------------------------

#[test]
fn read_committed_loses_updates_like_h4() {
    let (db, x, _) = bank(IsolationLevel::ReadCommitted);
    let t1 = db.begin();
    let t2 = db.begin();
    let v1 = t1
        .read("accounts", x)
        .unwrap()
        .unwrap()
        .get_int("balance")
        .unwrap();
    let v2 = t2
        .read("accounts", x)
        .unwrap()
        .unwrap()
        .get_int("balance")
        .unwrap();
    t2.update("accounts", x, Row::new().with("balance", v2 + 20))
        .unwrap();
    t2.commit().unwrap();
    t1.update("accounts", x, Row::new().with("balance", v1 + 30))
        .unwrap();
    t1.commit().unwrap();
    // T2's +20 is lost: the final balance reflects only T1's +30.
    assert_eq!(balance(&db, x), 80);
    assert!(detect::exhibits(&db.recorded_history(), Phenomenon::P4));
}

#[test]
fn snapshot_isolation_first_committer_wins_prevents_lost_updates() {
    let (db, x, _) = bank(IsolationLevel::SnapshotIsolation);
    let t1 = db.begin();
    let t2 = db.begin();
    let v1 = t1
        .read("accounts", x)
        .unwrap()
        .unwrap()
        .get_int("balance")
        .unwrap();
    let v2 = t2
        .read("accounts", x)
        .unwrap()
        .unwrap()
        .get_int("balance")
        .unwrap();
    t2.update("accounts", x, Row::new().with("balance", v2 + 20))
        .unwrap();
    t2.commit().unwrap();
    t1.update("accounts", x, Row::new().with("balance", v1 + 30))
        .unwrap();
    let err = t1.commit().unwrap_err();
    assert!(matches!(err, TxnError::FirstCommitterConflict { .. }));
    assert_eq!(t1.status(), TxnStatus::Aborted);
    // T2's update survives.
    assert_eq!(balance(&db, x), 70);
    assert!(!detect::exhibits(&db.recorded_history(), Phenomenon::P4));
}

#[test]
fn repeatable_read_blocks_the_competing_writer() {
    let (db, x, _) = bank(IsolationLevel::RepeatableRead);
    let t1 = db.begin();
    let t2 = db.begin();
    t1.read("accounts", x).unwrap();
    t2.read("accounts", x).unwrap();
    // Both hold long read locks; T2's upgrade to a write lock blocks on T1.
    assert!(matches!(
        t2.update("accounts", x, Row::new().with("balance", 70)),
        Err(TxnError::WouldBlock { .. })
    ));
}

#[test]
fn cursor_stability_prevents_cursor_lost_updates() {
    let (db, x, _) = bank(IsolationLevel::CursorStability);
    let all = RowPredicate::whole_table("accounts");
    let t1 = db.begin();
    let c = t1.open_cursor(&all).unwrap();
    let (first_id, first) = t1.fetch(c).unwrap().unwrap();
    assert_eq!(first_id, x);
    // While the cursor is positioned on x, another transaction's update of
    // x blocks (this is exactly what prevents P4C).
    let t2 = db.begin();
    assert!(matches!(
        t2.update("accounts", x, Row::new().with("balance", 120)),
        Err(TxnError::WouldBlock { .. })
    ));
    // T1 updates through the cursor and commits; no update is lost.
    t1.update_current(
        c,
        Row::new().with("balance", first.get_int("balance").unwrap() + 30),
    )
    .unwrap();
    t1.commit().unwrap();
    t2.update("accounts", x, Row::new().with("balance", 120))
        .unwrap();
    t2.commit().unwrap();
    let h = db.recorded_history();
    assert!(!detect::exhibits(&h, Phenomenon::P4C));
}

#[test]
fn cursor_stability_lock_moves_with_the_cursor() {
    let (db, x, y) = bank(IsolationLevel::CursorStability);
    let all = RowPredicate::whole_table("accounts");
    let t1 = db.begin();
    let c = t1.open_cursor(&all).unwrap();
    t1.fetch(c).unwrap().unwrap(); // positioned on x
    t1.fetch(c).unwrap().unwrap(); // moves to y, releasing the lock on x
    let t2 = db.begin();
    t2.update("accounts", x, Row::new().with("balance", 5))
        .unwrap();
    assert!(matches!(
        t2.update("accounts", y, Row::new().with("balance", 5)),
        Err(TxnError::WouldBlock { .. })
    ));
    t1.close_cursor(c).unwrap();
    t2.update("accounts", y, Row::new().with("balance", 5))
        .unwrap();
    t2.commit().unwrap();
    t1.commit().unwrap();
}

#[test]
fn read_committed_cursorless_engines_lose_cursor_updates() {
    // The same scenario at READ COMMITTED: the cursor read takes only a
    // short lock, so T2's update proceeds and its increment is lost.
    let (db, x, _) = bank(IsolationLevel::ReadCommitted);
    let all = RowPredicate::whole_table("accounts");
    let t1 = db.begin();
    let c = t1.open_cursor(&all).unwrap();
    let (_, first) = t1.fetch(c).unwrap().unwrap();
    let t2 = db.begin();
    t2.update("accounts", x, Row::new().with("balance", 120))
        .unwrap();
    t2.commit().unwrap();
    t1.update_current(
        c,
        Row::new().with("balance", first.get_int("balance").unwrap() + 30),
    )
    .unwrap();
    t1.commit().unwrap();
    assert_eq!(balance(&db, x), 80);
    assert!(detect::exhibits(&db.recorded_history(), Phenomenon::P4C));
}

#[test]
fn oracle_read_consistency_rejects_stale_positioned_updates() {
    let (db, x, _) = bank(IsolationLevel::OracleReadConsistency);
    let all = RowPredicate::whole_table("accounts");
    let t1 = db.begin();
    let c = t1.open_cursor(&all).unwrap();
    t1.fetch(c).unwrap().unwrap();
    let t2 = db.begin();
    t2.update("accounts", x, Row::new().with("balance", 120))
        .unwrap();
    t2.commit().unwrap();
    // The positioned update sees that the row moved on and restarts
    // instead of blindly overwriting (first-writer-wins).
    let err = t1
        .update_current(c, Row::new().with("balance", 130))
        .unwrap_err();
    assert!(matches!(err, TxnError::StaleCursor { .. }));
    t1.commit().unwrap();
    assert_eq!(balance(&db, x), 120);
    assert!(!detect::exhibits(&db.recorded_history(), Phenomenon::P4C));
}

// ---------------------------------------------------------------------
// Phantoms (P3 / A3).
// ---------------------------------------------------------------------

fn employee_db(level: IsolationLevel) -> Database {
    let db = Database::new(level);
    let setup = db.begin();
    setup
        .insert(
            "employees",
            Row::new().with("active", true).with("value", 1),
        )
        .unwrap();
    setup
        .insert(
            "employees",
            Row::new().with("active", false).with("value", 1),
        )
        .unwrap();
    setup.commit().unwrap();
    db.clear_history();
    db
}

fn active_employees() -> RowPredicate {
    RowPredicate::new("employees", Condition::eq("active", true))
}

#[test]
fn repeatable_read_allows_phantoms() {
    let db = employee_db(IsolationLevel::RepeatableRead);
    let t1 = db.begin();
    let first = t1.read_where(&active_employees()).unwrap();
    assert_eq!(first.len(), 1);
    // The predicate read lock is short at REPEATABLE READ, so a concurrent
    // insert of a matching row is allowed.
    let t2 = db.begin();
    t2.insert(
        "employees",
        Row::new().with("active", true).with("value", 1),
    )
    .unwrap();
    t2.commit().unwrap();
    let second = t1.read_where(&active_employees()).unwrap();
    assert_eq!(second.len(), 2, "the phantom appears on re-read");
    t1.commit().unwrap();
    let h = db.recorded_history();
    assert!(detect::exhibits(&h, Phenomenon::P3));
    assert!(detect::exhibits(&h, Phenomenon::A3));
}

#[test]
fn serializable_prevents_phantoms_with_long_predicate_locks() {
    let db = employee_db(IsolationLevel::Serializable);
    let t1 = db.begin();
    assert_eq!(t1.read_where(&active_employees()).unwrap().len(), 1);
    let t2 = db.begin();
    // Inserting an active employee conflicts with T1's predicate lock.
    let blocked = t2.insert(
        "employees",
        Row::new().with("active", true).with("value", 1),
    );
    assert!(matches!(blocked, Err(TxnError::WouldBlock { .. })));
    // Inserting a non-matching row is fine.
    t2.insert(
        "employees",
        Row::new().with("active", false).with("value", 1),
    )
    .unwrap();
    t2.commit().unwrap();
    assert_eq!(t1.read_where(&active_employees()).unwrap().len(), 1);
    t1.commit().unwrap();
    assert!(!detect::exhibits(&db.recorded_history(), Phenomenon::P3));
}

#[test]
fn snapshot_isolation_has_no_ansi_phantoms() {
    let db = employee_db(IsolationLevel::SnapshotIsolation);
    let t1 = db.begin();
    assert_eq!(t1.read_where(&active_employees()).unwrap().len(), 1);
    let t2 = db.begin();
    t2.insert(
        "employees",
        Row::new().with("active", true).with("value", 1),
    )
    .unwrap();
    t2.commit().unwrap();
    // T1 re-reads the predicate and still sees the old set: no ANSI-style
    // phantom (A3), the "most remarkable" property of Remark 10.
    assert_eq!(t1.read_where(&active_employees()).unwrap().len(), 1);
    t1.commit().unwrap();
    // The broad phenomenon P3 still occurred in the interleaving (the
    // matching write happened while the reader was active) — the paper's
    // "Sometimes Possible" cell for Snapshot Isolation.
    assert!(detect::exhibits(&db.recorded_history(), Phenomenon::P3));
}

// ---------------------------------------------------------------------
// Write skew (A5B) and the H5 constraint violation.
// ---------------------------------------------------------------------

#[test]
fn snapshot_isolation_allows_write_skew() {
    let (db, x, y) = bank(IsolationLevel::SnapshotIsolation);
    let t1 = db.begin();
    let t2 = db.begin();
    let sum1 = t1
        .read("accounts", x)
        .unwrap()
        .unwrap()
        .get_int("balance")
        .unwrap()
        + t1.read("accounts", y)
            .unwrap()
            .unwrap()
            .get_int("balance")
            .unwrap();
    let sum2 = t2
        .read("accounts", x)
        .unwrap()
        .unwrap()
        .get_int("balance")
        .unwrap()
        + t2.read("accounts", y)
            .unwrap()
            .unwrap()
            .get_int("balance")
            .unwrap();
    // Each transaction withdraws 90, believing the constraint x + y > 0
    // still holds afterwards.
    t1.update("accounts", y, Row::new().with("balance", sum1 / 2 - 90))
        .unwrap();
    t2.update("accounts", x, Row::new().with("balance", sum2 / 2 - 90))
        .unwrap();
    t1.commit().unwrap();
    // Disjoint write sets: first-committer-wins does not fire.
    t2.commit().unwrap();
    assert!(balance(&db, x) + balance(&db, y) < 0, "constraint violated");
    assert!(detect::exhibits(&db.recorded_history(), Phenomenon::A5B));
}

#[test]
fn serializable_prevents_write_skew() {
    let (db, x, y) = bank(IsolationLevel::Serializable);
    let t1 = db.begin();
    let t2 = db.begin();
    t1.read("accounts", x).unwrap();
    t1.read("accounts", y).unwrap();
    t2.read("accounts", x).unwrap();
    t2.read("accounts", y).unwrap();
    // Long read locks make the crossing writes block.
    assert!(matches!(
        t1.update("accounts", y, Row::new().with("balance", -40)),
        Err(TxnError::WouldBlock { .. })
    ));
    assert!(matches!(
        t2.update("accounts", x, Row::new().with("balance", -40)),
        Err(TxnError::WouldBlock { .. })
    ));
    // The harness resolves this by aborting one of them; here we abort T2.
    t2.abort().unwrap();
    t1.update("accounts", y, Row::new().with("balance", -40))
        .unwrap();
    t1.commit().unwrap();
    assert!(balance(&db, x) + balance(&db, y) > 0);
    assert!(!detect::exhibits(&db.recorded_history(), Phenomenon::A5B));
}

// ---------------------------------------------------------------------
// Recovery / rollback, time travel, and the inconsistent-analysis total.
// ---------------------------------------------------------------------

#[test]
fn rollback_restores_before_images() {
    let (db, x, _) = bank(IsolationLevel::Serializable);
    let t1 = db.begin();
    t1.update("accounts", x, Row::new().with("balance", 999))
        .unwrap();
    t1.abort().unwrap();
    assert_eq!(balance(&db, x), 50);
    // A dropped active transaction is rolled back automatically.
    {
        let t2 = db.begin();
        t2.update("accounts", x, Row::new().with("balance", 777))
            .unwrap();
    }
    assert_eq!(balance(&db, x), 50);
}

#[test]
fn serializable_preserves_the_transfer_invariant() {
    // The H1 scenario executed at SERIALIZABLE: the reader either sees the
    // state before or after the transfer, never a total of 60.
    let (db, x, y) = bank(IsolationLevel::Serializable);
    let t1 = db.begin();
    t1.update("accounts", x, Row::new().with("balance", 10))
        .unwrap();
    let t2 = db.begin();
    assert!(matches!(
        t2.read("accounts", x),
        Err(TxnError::WouldBlock { .. })
    ));
    t1.update("accounts", y, Row::new().with("balance", 90))
        .unwrap();
    t1.commit().unwrap();
    let total = t2
        .read("accounts", x)
        .unwrap()
        .unwrap()
        .get_int("balance")
        .unwrap()
        + t2.read("accounts", y)
            .unwrap()
            .unwrap()
            .get_int("balance")
            .unwrap();
    assert_eq!(total, 100);
    t2.commit().unwrap();
}

#[test]
fn snapshot_isolation_supports_time_travel_reads() {
    let (db, x, y) = bank(IsolationLevel::SnapshotIsolation);
    // An old reader started before a flurry of updates still sees the
    // original state and is never blocked.
    let old_reader = db.begin();
    for i in 0..5 {
        let w = db.begin();
        w.update("accounts", x, Row::new().with("balance", 100 + i))
            .unwrap();
        w.commit().unwrap();
    }
    assert_eq!(
        old_reader
            .read("accounts", x)
            .unwrap()
            .unwrap()
            .get_int("balance"),
        Some(50)
    );
    assert_eq!(
        old_reader
            .read("accounts", y)
            .unwrap()
            .unwrap()
            .get_int("balance"),
        Some(50)
    );
    old_reader.commit().unwrap();
    assert_eq!(balance(&db, x), 104);
}

#[test]
fn operations_after_termination_are_rejected() {
    let (db, x, _) = bank(IsolationLevel::ReadCommitted);
    let t = db.begin();
    t.commit().unwrap();
    assert!(matches!(
        t.read("accounts", x),
        Err(TxnError::AlreadyTerminated)
    ));
    assert!(matches!(t.commit(), Err(TxnError::AlreadyTerminated)));
    assert!(matches!(t.abort(), Err(TxnError::AlreadyTerminated)));
}

#[test]
fn locking_serializable_histories_are_conflict_serializable() {
    let (db, x, y) = bank(IsolationLevel::Serializable);
    // A little workload of sequential transfers.
    for i in 0..5 {
        let t = db.begin();
        let bx = t
            .read("accounts", x)
            .unwrap()
            .unwrap()
            .get_int("balance")
            .unwrap();
        let by = t
            .read("accounts", y)
            .unwrap()
            .unwrap()
            .get_int("balance")
            .unwrap();
        t.update("accounts", x, Row::new().with("balance", bx - i))
            .unwrap();
        t.update("accounts", y, Row::new().with("balance", by + i))
            .unwrap();
        t.commit().unwrap();
    }
    let report = critique_history::conflict_serializable(&db.recorded_history());
    assert!(report.is_serializable());
}

// ---------------------------------------------------------------------
// Update-mode (U) locks: SELECT … FOR UPDATE under UpgradeStrategy.
// ---------------------------------------------------------------------

fn bank_with_upgrade(level: IsolationLevel, upgrade: UpgradeStrategy) -> (Database, RowId) {
    let db = Database::with_config(EngineConfig::new(level).with_upgrade_strategy(upgrade));
    let setup = db.begin();
    let x = setup
        .insert("accounts", Row::new().with("balance", 50))
        .unwrap();
    setup.commit().unwrap();
    db.clear_history();
    (db, x)
}

#[test]
fn update_lock_serialises_would_be_upgraders_at_the_read() {
    let (db, x) = bank_with_upgrade(IsolationLevel::Serializable, UpgradeStrategy::UpdateLock);
    let t1 = db.begin();
    let t2 = db.begin();
    assert!(t1.read_for_update("accounts", x).unwrap().is_some());
    // A second read-for-update conflicts at the *read*: U vs U — the
    // collision that used to happen only later, as an upgrade deadlock.
    assert!(matches!(
        t2.read_for_update("accounts", x),
        Err(TxnError::WouldBlock { .. })
    ));
    // The asymmetric half: a held U admits no new Shared readers either,
    // so the pending upgrade cannot be starved by arriving readers.
    let t3 = db.begin();
    assert!(matches!(
        t3.read("accounts", x),
        Err(TxnError::WouldBlock { .. })
    ));
    // The U→X conversion itself has nothing to wait for.
    t1.update("accounts", x, Row::new().with("balance", 60))
        .unwrap();
    t1.commit().unwrap();
    assert!(t2.read_for_update("accounts", x).unwrap().is_some());
    assert_eq!(
        t2.read_for_update("accounts", x)
            .unwrap()
            .unwrap()
            .get_int("balance"),
        Some(60)
    );
}

#[test]
fn update_lock_is_granted_while_shared_readers_hold_the_item() {
    let (db, x) = bank_with_upgrade(IsolationLevel::Serializable, UpgradeStrategy::UpdateLock);
    let reader = db.begin();
    assert!(reader.read("accounts", x).unwrap().is_some());
    // U is compatible with held S: the updater announces itself while the
    // reader is still active…
    let updater = db.begin();
    assert!(updater.read_for_update("accounts", x).unwrap().is_some());
    // …but its X conversion waits for the reader to drain.
    assert!(matches!(
        updater.update("accounts", x, Row::new().with("balance", 70)),
        Err(TxnError::WouldBlock { .. })
    ));
    reader.commit().unwrap();
    updater
        .update("accounts", x, Row::new().with("balance", 70))
        .unwrap();
    updater.commit().unwrap();
    assert_eq!(balance(&db, x), 70);
}

#[test]
fn shared_then_upgrade_strategy_reads_for_update_like_plain_reads() {
    let (db, x) = bank_with_upgrade(
        IsolationLevel::Serializable,
        UpgradeStrategy::SharedThenUpgrade,
    );
    let t1 = db.begin();
    let t2 = db.begin();
    // The baseline strategy changes nothing: both RMW reads are granted
    // Shared, and the upgrade collision is still possible later.
    assert!(t1.read_for_update("accounts", x).unwrap().is_some());
    assert!(t2.read_for_update("accounts", x).unwrap().is_some());
    assert!(matches!(
        t1.update("accounts", x, Row::new().with("balance", 1)),
        Err(TxnError::WouldBlock { .. })
    ));
}

#[test]
fn multiversion_levels_ignore_the_update_lock_strategy() {
    for level in [
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::OracleReadConsistency,
    ] {
        let (db, x) = bank_with_upgrade(level, UpgradeStrategy::UpdateLock);
        let t1 = db.begin();
        let t2 = db.begin();
        // No read locks at the multiversion levels, FOR UPDATE or not.
        assert!(t1.read_for_update("accounts", x).unwrap().is_some());
        assert!(t2.read_for_update("accounts", x).unwrap().is_some());
        assert_eq!(db.locks_held(), 0, "{level}");
        let _ = t1.abort();
        let _ = t2.abort();
    }
}
