//! Threaded stress for the engine on the sharded substrate, plus
//! conformance checks that the shard count is invisible to semantics.

use critique_core::IsolationLevel;
use critique_engine::{Database, EngineConfig, TxnError};
use critique_storage::{Row, RowId, RowPredicate};

const WORKERS: usize = 8;

/// Disjoint-row increments at READ COMMITTED with blocking waits: every
/// committed update must survive — a write lost between the sharded store,
/// the sharded lock tables, and commit would leave a counter short.
#[test]
fn threaded_disjoint_writers_lose_nothing() {
    for shards in [1, 4, 16] {
        let config = EngineConfig::new(IsolationLevel::ReadCommitted)
            .blocking(2_000)
            .without_history()
            .with_shards(shards);
        let db = Database::with_config(config);
        let setup = db.begin();
        let ids: Vec<RowId> = (0..WORKERS)
            .map(|_| {
                setup
                    .insert("counters", Row::new().with("value", 0))
                    .unwrap()
            })
            .collect();
        setup.commit().unwrap();

        let rounds = 50i64;
        std::thread::scope(|scope| {
            for (worker, id) in ids.iter().enumerate() {
                let db = db.clone();
                let id = *id;
                scope.spawn(move || {
                    for _ in 0..rounds {
                        let txn = db.begin();
                        let value = txn
                            .read("counters", id)
                            .unwrap()
                            .and_then(|r| r.get_int("value"))
                            .unwrap();
                        txn.update("counters", id, Row::new().with("value", value + 1))
                            .unwrap();
                        txn.commit().unwrap();
                    }
                    let _ = worker;
                });
            }
        });

        for id in &ids {
            assert_eq!(
                db.read_committed("counters", *id).unwrap().get_int("value"),
                Some(rounds),
                "shards={shards}"
            );
        }
        assert_eq!(db.locks_held(), 0, "shards={shards}");
    }
}

/// Contended increments on one hot row at SERIALIZABLE: long read + write
/// locks make each read-modify-write atomic, so the final value must equal
/// the number of committed increments even though every transaction fights
/// over the same shard entry.
#[test]
fn threaded_hot_row_increments_are_exact_under_serializable() {
    let config = EngineConfig::new(IsolationLevel::Serializable)
        .blocking(5_000)
        .without_history()
        .with_shards(8);
    let db = Database::with_config(config);
    let setup = db.begin();
    let hot = setup
        .insert("counters", Row::new().with("value", 0))
        .unwrap();
    setup.commit().unwrap();

    let per_worker = 20i64;
    let committed: i64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                let db = db.clone();
                scope.spawn(move || {
                    let mut committed = 0i64;
                    let mut remaining = per_worker;
                    while remaining > 0 {
                        let txn = db.begin();
                        let outcome = txn
                            .read("counters", hot)
                            .and_then(|row| {
                                let value = row.and_then(|r| r.get_int("value")).unwrap();
                                txn.update("counters", hot, Row::new().with("value", value + 1))
                            })
                            .and_then(|()| txn.commit());
                        match outcome {
                            Ok(()) => {
                                committed += 1;
                                remaining -= 1;
                            }
                            // Deadlock/timeout victims retry; the increment
                            // did not commit, so nothing is lost.
                            Err(TxnError::Deadlock | TxnError::LockTimeout) => {}
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                    committed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    assert_eq!(committed, WORKERS as i64 * per_worker);
    assert_eq!(
        db.read_committed("counters", hot).unwrap().get_int("value"),
        Some(committed)
    );
}

/// The recorder's per-shard buffers merge back into the exact program
/// order for a deterministic run, whatever the shard count — the recorded
/// notation must be byte-identical across configurations.
#[test]
fn recorded_history_is_identical_at_every_shard_count() {
    let run = |shards: usize| -> String {
        let db = Database::with_config(
            EngineConfig::new(IsolationLevel::ReadCommitted).with_shards(shards),
        );
        let t1 = db.begin();
        let a = t1
            .insert("accounts", Row::new().with("balance", 50))
            .unwrap();
        let b = t1
            .insert("accounts", Row::new().with("balance", 70))
            .unwrap();
        t1.commit().unwrap();
        let t2 = db.begin();
        let t3 = db.begin();
        t2.read("accounts", a).unwrap();
        t3.read("accounts", b).unwrap();
        t2.update("accounts", a, Row::new().with("balance", 10))
            .unwrap();
        t3.update("accounts", b, Row::new().with("balance", 90))
            .unwrap();
        t3.commit().unwrap();
        t2.commit().unwrap();
        let all = RowPredicate::whole_table("accounts");
        let t4 = db.begin();
        t4.read_where(&all).unwrap();
        t4.commit().unwrap();
        db.recorded_history().to_notation()
    };
    let reference = run(1);
    assert!(!reference.is_empty());
    for shards in [2, 5, 16] {
        assert_eq!(run(shards), reference, "shards={shards}");
    }
}

/// Threaded recording: with history on, the merged history contains every
/// commit exactly once and one terminator per transaction.
#[test]
fn threaded_recording_drops_no_operations() {
    let config = EngineConfig::new(IsolationLevel::SnapshotIsolation)
        .blocking(1_000)
        .with_shards(8);
    let db = Database::with_config(config);
    let setup = db.begin();
    let ids: Vec<RowId> = (0..WORKERS)
        .map(|_| setup.insert("t", Row::new().with("value", 0)).unwrap())
        .collect();
    setup.commit().unwrap();
    db.clear_history();

    let per_worker = 25;
    std::thread::scope(|scope| {
        for (worker, id) in ids.iter().enumerate() {
            let db = db.clone();
            let id = *id;
            scope.spawn(move || {
                for round in 0..per_worker {
                    let txn = db.begin();
                    txn.read("t", id).unwrap();
                    txn.update("t", id, Row::new().with("value", round as i64))
                        .unwrap();
                    txn.commit().unwrap();
                }
                let _ = worker;
            });
        }
    });

    let history = db.recorded_history();
    let committed = history
        .ops()
        .iter()
        .filter(|op| matches!(op.kind, critique_history::op::OpKind::Commit))
        .count();
    assert_eq!(committed, WORKERS * per_worker);
    // read + write + commit per transaction, nothing dropped in the merge.
    assert_eq!(history.len(), 3 * WORKERS * per_worker);
}

/// Multi-row commits are atomically visible across shards: writers move
/// money between the two rows of their pair (sum constant per pair) while
/// Snapshot Isolation readers repeatedly sum the whole table.  A commit
/// published before all of its chains were stamped would let a reader see
/// a debit without its credit — the commit sequence (reserve → stamp →
/// publish) forbids that at any shard count.
#[test]
fn snapshot_readers_never_observe_torn_commits() {
    for shards in [2, 16] {
        let config = EngineConfig::new(IsolationLevel::SnapshotIsolation)
            .blocking(1_000)
            .without_history()
            .with_shards(shards);
        let db = Database::with_config(config);
        let pairs = 4usize;
        let per_row = 100i64;
        let setup = db.begin();
        let ids: Vec<RowId> = (0..2 * pairs)
            .map(|_| {
                setup
                    .insert("accounts", Row::new().with("balance", per_row))
                    .unwrap()
            })
            .collect();
        setup.commit().unwrap();
        let expected = per_row * 2 * pairs as i64;
        let all = RowPredicate::whole_table("accounts");

        std::thread::scope(|scope| {
            // One transfer thread per pair: disjoint write sets, so no
            // First-Committer-Wins aborts — every transfer commits.
            for pair in 0..pairs {
                let db = db.clone();
                let (a, b) = (ids[2 * pair], ids[2 * pair + 1]);
                scope.spawn(move || {
                    for i in 0..200i64 {
                        let txn = db.begin();
                        let read = |id| {
                            txn.read("accounts", id)
                                .unwrap()
                                .and_then(|r: Row| r.get_int("balance"))
                                .unwrap()
                        };
                        let (x, y) = (read(a), read(b));
                        let delta = 1 + (i % 7);
                        txn.update("accounts", a, Row::new().with("balance", x - delta))
                            .unwrap();
                        txn.update("accounts", b, Row::new().with("balance", y + delta))
                            .unwrap();
                        txn.commit().unwrap();
                    }
                });
            }
            // Reader threads: every snapshot sum must equal the invariant.
            for _ in 0..2 {
                let db = db.clone();
                let all = all.clone();
                scope.spawn(move || {
                    for _ in 0..400 {
                        let txn = db.begin();
                        let sum = txn.sum_where(&all, "balance").unwrap();
                        assert_eq!(sum, expected, "torn commit observed (shards={shards})");
                        txn.commit().unwrap();
                    }
                });
            }
        });

        let total: i64 = ids
            .iter()
            .map(|id| {
                db.read_committed("accounts", *id)
                    .unwrap()
                    .get_int("balance")
                    .unwrap()
            })
            .sum();
        assert_eq!(total, expected);
    }
}
