//! Engine-level hot-key stress: N workers hammer one row with
//! read-modify-write transactions under SERIALIZABLE and blocking waits,
//! across the `{grant policy} × {upgrade strategy}` matrix (CI runs each
//! cell as a name-filtered job: `hot_key_<policy>_<strategy>`).
//!
//! Every transaction reads the hot balance with declared write intent
//! (`read_for_update`) and then updates it.  Under
//! `UpgradeStrategy::SharedThenUpgrade` that is the canonical deadlock
//! mill (long Shared lock, then the Exclusive upgrade); under
//! `UpgradeStrategy::UpdateLock` the read takes a U lock and the mill
//! *cannot* turn — the update-lock legs assert **zero** deadlock victims.
//! Either way, with the event-driven wait-queues every wait must end in a
//! grant or a prompt verdict: at a sane deadline there must be zero
//! timeouts, deadlock victims retry, and the final balance must equal the
//! number of committed increments exactly.

use critique_core::IsolationLevel;
use critique_engine::{Database, EngineConfig, GrantPolicy, TxnError, UpgradeStrategy};
use critique_storage::Row;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn hammer(grant: GrantPolicy, upgrade: UpgradeStrategy) -> u64 {
    const WORKERS: u64 = 8;
    const INCREMENTS_PER_WORKER: u64 = 20;

    let config = EngineConfig::new(IsolationLevel::Serializable)
        .blocking(20_000)
        .without_history()
        .with_grant_policy(grant)
        .with_upgrade_strategy(upgrade);
    let db = Database::with_config(config);
    let setup = db.begin();
    let hot = setup
        .insert("accounts", Row::new().with("balance", 0))
        .unwrap();
    setup.commit().unwrap();

    let deadlocks = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for _ in 0..WORKERS {
            let db = db.clone();
            let deadlocks = Arc::clone(&deadlocks);
            scope.spawn(move || {
                for _ in 0..INCREMENTS_PER_WORKER {
                    // Retry the increment until it commits; only deadlock
                    // verdicts may send us around the loop again.  Victims
                    // back off briefly before retrying, as any real client
                    // would — under WakeAll the victim's own thread can
                    // otherwise re-grab its shared lock before the nudged
                    // waiter even wakes (the barging livelock DirectHandoff
                    // exists to prevent).
                    let mut attempts = 0;
                    loop {
                        attempts += 1;
                        assert!(attempts < 10_000, "increment livelocked");
                        let txn = db.begin();
                        let result = txn
                            .read_for_update("accounts", hot)
                            .and_then(|row| {
                                let balance = row.and_then(|r| r.get_int("balance")).unwrap_or(0);
                                txn.update("accounts", hot, Row::new().with("balance", balance + 1))
                            })
                            .and_then(|()| txn.commit());
                        match result {
                            Ok(()) => break,
                            Err(TxnError::Deadlock) => {
                                deadlocks.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(std::time::Duration::from_micros(500));
                            }
                            Err(TxnError::LockTimeout) => {
                                panic!("a 20s deadline expired on the hot key: lost handoff")
                            }
                            Err(other) => panic!("unexpected error: {other:?}"),
                        }
                    }
                }
            });
        }
    });

    let expected = (WORKERS * INCREMENTS_PER_WORKER) as i64;
    let balance = db
        .read_committed("accounts", hot)
        .and_then(|r| r.get_int("balance"))
        .unwrap_or(-1);
    let deadlocks = deadlocks.load(Ordering::Relaxed);
    assert_eq!(
        balance, expected,
        "every committed increment lands exactly once ({grant:?}/{upgrade:?}, \
         {deadlocks} deadlock retries)"
    );
    assert_eq!(db.locks_held(), 0, "no lock leaked ({grant:?}/{upgrade:?})");
    deadlocks
}

#[test]
fn hot_key_direct_handoff_shared_then_upgrade() {
    hammer(
        GrantPolicy::DirectHandoff,
        UpgradeStrategy::SharedThenUpgrade,
    );
}

#[test]
fn hot_key_wake_all_shared_then_upgrade() {
    hammer(GrantPolicy::WakeAll, UpgradeStrategy::SharedThenUpgrade);
}

#[test]
fn hot_key_direct_handoff_update_lock() {
    let deadlocks = hammer(GrantPolicy::DirectHandoff, UpgradeStrategy::UpdateLock);
    assert_eq!(
        deadlocks, 0,
        "U-lock reads leave nothing to deadlock on a single hot key: \
         the batch-grant cascade is gone"
    );
}

#[test]
fn hot_key_wake_all_update_lock() {
    let deadlocks = hammer(GrantPolicy::WakeAll, UpgradeStrategy::UpdateLock);
    assert_eq!(
        deadlocks, 0,
        "U-lock reads leave nothing to deadlock on a single hot key"
    );
}
