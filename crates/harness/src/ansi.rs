//! The Table 1 / Section 3 analysis: strict vs broad interpretations of the
//! ANSI phenomena, exercised on the paper's canonical histories.

use critique_core::level::AnsiLevel;
use critique_core::{detect, Interpretation, Phenomenon};
use critique_history::{canonical, conflict_serializable, History};
use serde::{Deserialize, Serialize};

/// The verdict for one canonical history against one ANSI level.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AnsiHistoryVerdict {
    /// The paper's name for the history (H1, H2, …).
    pub history: String,
    /// The shorthand notation.
    pub notation: String,
    /// True if the history is conflict-serializable.
    pub serializable: bool,
    /// The ANSI level under examination.
    pub level: String,
    /// Whether the level admits the history under the strict (A1-A3)
    /// interpretation.
    pub admitted_strict: bool,
    /// Whether the level admits the history under the broad (P1-P3)
    /// interpretation.
    pub admitted_broad: bool,
    /// Phenomena the history exhibits.
    pub exhibited: Vec<Phenomenon>,
}

impl AnsiHistoryVerdict {
    /// The paper's headline problem: a non-serializable history admitted by
    /// the level (under the strict reading this happens for H1/H2/H3 at
    /// ANOMALY SERIALIZABLE).
    pub fn is_counterexample(&self) -> bool {
        !self.serializable && self.admitted_strict
    }
}

fn verdict(name: &str, history: &History, level: AnsiLevel) -> AnsiHistoryVerdict {
    AnsiHistoryVerdict {
        history: name.to_string(),
        notation: history.to_notation(),
        serializable: conflict_serializable(history).is_serializable(),
        level: level.name().to_string(),
        admitted_strict: level.permits(history, Interpretation::Strict),
        admitted_broad: level.permits(history, Interpretation::Broad),
        exhibited: detect::exhibited_set(history),
    }
}

/// The Section 3 analysis: every canonical history against every ANSI
/// level, under both interpretations.
pub fn ansi_interpretation_report() -> Vec<AnsiHistoryVerdict> {
    let histories = [
        ("H1", canonical::h1()),
        ("H2", canonical::h2()),
        ("H3", canonical::h3()),
        ("H4", canonical::h4()),
        ("H5", canonical::h5()),
    ];
    let mut verdicts = Vec::new();
    for (name, history) in &histories {
        for level in AnsiLevel::ALL {
            verdicts.push(verdict(name, history, level));
        }
    }
    verdicts
}

/// Render the report as text, highlighting the paper's counterexamples.
pub fn ansi_report_text() -> String {
    let mut out =
        String::from("Section 3: strict (A1-A3) vs broad (P1-P3) readings of the ANSI phenomena\n");
    for v in ansi_interpretation_report() {
        out.push_str(&format!(
            "  {:3} at {:25}  serializable={:5}  admitted: strict={:5} broad={:5}{}\n",
            v.history,
            v.level,
            v.serializable,
            v.admitted_strict,
            v.admitted_broad,
            if v.is_counterexample() {
                "   <-- non-serializable yet admitted (needs broad reading)"
            } else {
                ""
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict_for(history: &str, level: &str) -> AnsiHistoryVerdict {
        ansi_interpretation_report()
            .into_iter()
            .find(|v| v.history == history && v.level == level)
            .expect("verdict present")
    }

    #[test]
    fn h1_is_the_papers_central_counterexample() {
        let v = verdict_for("H1", "ANOMALY SERIALIZABLE");
        assert!(!v.serializable);
        assert!(v.admitted_strict, "H1 violates no strict anomaly");
        assert!(!v.admitted_broad, "the broad reading correctly rejects H1");
        assert!(v.is_counterexample());
    }

    #[test]
    fn h2_discriminates_repeatable_read_interpretations() {
        let v = verdict_for("H2", "ANSI REPEATABLE READ");
        assert!(!v.serializable);
        assert!(v.admitted_strict);
        assert!(!v.admitted_broad);
    }

    #[test]
    fn h3_discriminates_phantom_interpretations() {
        let v = verdict_for("H3", "ANOMALY SERIALIZABLE");
        assert!(v.admitted_strict);
        assert!(!v.admitted_broad);
    }

    #[test]
    fn read_uncommitted_admits_everything() {
        for name in ["H1", "H2", "H3", "H4", "H5"] {
            let v = verdict_for(name, "ANSI READ UNCOMMITTED");
            assert!(v.admitted_strict && v.admitted_broad);
        }
    }

    #[test]
    fn h5_write_skew_slips_past_even_the_broad_ansi_reading() {
        // H5 exhibits no P0/P1 and no phantom; the broad ANSI phenomena do
        // not exclude it — the paper's motivation for A5B.
        let v = verdict_for("H5", "ANSI READ COMMITTED");
        assert!(!v.serializable);
        assert!(v.admitted_broad);
        assert!(v.exhibited.contains(&Phenomenon::A5B));
    }

    #[test]
    fn report_text_mentions_every_history_and_counterexamples() {
        let text = ansi_report_text();
        for name in ["H1", "H2", "H3", "H4", "H5"] {
            assert!(text.contains(name));
        }
        assert!(text.contains("non-serializable yet admitted"));
    }
}
