//! Rebuilding the possibility matrices (Tables 3 and 4) from executions.

use critique_core::tables::{self, CharacterizationTable};
use critique_core::{IsolationLevel, Phenomenon, Possibility};
use critique_workloads::{AnomalyScenario, ScenarioOutcome};
use serde::{Deserialize, Serialize};

/// The scenario variants whose outcomes decide the cell for a phenomenon.
/// When the variants disagree at a level, the cell is "Sometimes Possible"
/// (e.g. Cursor Stability prevents the cursor-protected variants only).
fn variants_for(phenomenon: Phenomenon) -> Vec<AnomalyScenario> {
    match phenomenon {
        Phenomenon::P0 => vec![AnomalyScenario::DirtyWrite],
        Phenomenon::P1 | Phenomenon::A1 => vec![AnomalyScenario::DirtyRead],
        Phenomenon::P4C => vec![AnomalyScenario::CursorLostUpdate],
        Phenomenon::P4 => vec![
            AnomalyScenario::LostUpdate,
            AnomalyScenario::CursorLostUpdate,
        ],
        Phenomenon::P2 | Phenomenon::A2 => vec![
            AnomalyScenario::FuzzyRead,
            AnomalyScenario::FuzzyReadCursorProtected,
        ],
        Phenomenon::P3 | Phenomenon::A3 => vec![
            AnomalyScenario::PhantomAnsi,
            AnomalyScenario::PhantomPredicateConstraint,
        ],
        Phenomenon::A5A => vec![AnomalyScenario::ReadSkew],
        Phenomenon::A5B => vec![
            AnomalyScenario::WriteSkew,
            AnomalyScenario::WriteSkewCursorProtected,
        ],
    }
}

/// Observe the possibility of one phenomenon at one level by executing its
/// scenario variants.
pub fn observe_cell(level: IsolationLevel, phenomenon: Phenomenon) -> Possibility {
    let outcomes: Vec<ScenarioOutcome> = variants_for(phenomenon)
        .into_iter()
        .map(|s| s.run(level).outcome)
        .collect();
    let anomalies = outcomes.iter().filter(|o| o.is_anomaly()).count();
    if anomalies == 0 {
        Possibility::NotPossible
    } else if anomalies == outcomes.len() {
        Possibility::Possible
    } else {
        Possibility::SometimesPossible
    }
}

fn observed_table(
    title: &str,
    rows: &[IsolationLevel],
    columns: &[Phenomenon],
) -> CharacterizationTable {
    CharacterizationTable {
        title: title.to_string(),
        columns: columns.to_vec(),
        rows: rows
            .iter()
            .map(|level| {
                (
                    level.name().to_string(),
                    columns.iter().map(|p| observe_cell(*level, *p)).collect(),
                )
            })
            .collect(),
    }
}

/// Table 3, regenerated from executions.
pub fn observed_table3() -> CharacterizationTable {
    observed_table(
        "Table 3 (observed): isolation levels vs P0-P3, from executed scenarios",
        &IsolationLevel::TABLE3_ROWS,
        &Phenomenon::TABLE3_COLUMNS,
    )
}

/// Table 4, regenerated from executions.
pub fn observed_table4() -> CharacterizationTable {
    observed_table(
        "Table 4 (observed): isolation types vs possible anomalies, from executed scenarios",
        &IsolationLevel::TABLE4_ROWS,
        &Phenomenon::TABLE4_COLUMNS,
    )
}

/// The extended matrix including Degree 0 and Oracle Read Consistency.
pub fn observed_extended() -> CharacterizationTable {
    observed_table(
        "Extended matrix (observed): all eight isolation types",
        &IsolationLevel::ALL,
        &Phenomenon::TABLE4_COLUMNS,
    )
}

/// One cell compared between the paper and the observed execution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellComparison {
    /// Row label (isolation level name).
    pub level: String,
    /// Column phenomenon.
    pub phenomenon: Phenomenon,
    /// The paper's cell.
    pub paper: Possibility,
    /// The observed cell.
    pub observed: Possibility,
}

impl CellComparison {
    /// True when observed behaviour matches the paper.
    pub fn matches(&self) -> bool {
        self.paper == self.observed
    }
}

/// Comparison of a full observed matrix against the paper's.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MatrixComparison {
    /// Table caption.
    pub title: String,
    /// Every cell, paper vs observed.
    pub cells: Vec<CellComparison>,
}

impl MatrixComparison {
    /// Compare an observed table against the paper's specification table
    /// (matching rows by label and columns by phenomenon).
    pub fn compare(paper: &CharacterizationTable, observed: &CharacterizationTable) -> Self {
        let mut cells = Vec::new();
        for (label, _) in &observed.rows {
            for column in &observed.columns {
                let (Some(o), Some(p)) =
                    (observed.cell(label, *column), paper.cell(label, *column))
                else {
                    continue;
                };
                cells.push(CellComparison {
                    level: label.clone(),
                    phenomenon: *column,
                    paper: p,
                    observed: o,
                });
            }
        }
        MatrixComparison {
            title: observed.title.clone(),
            cells,
        }
    }

    /// Number of cells that match the paper.
    pub fn matching(&self) -> usize {
        self.cells.iter().filter(|c| c.matches()).count()
    }

    /// Total number of compared cells.
    pub fn total(&self) -> usize {
        self.cells.len()
    }

    /// The cells that disagree with the paper.
    pub fn mismatches(&self) -> Vec<&CellComparison> {
        self.cells.iter().filter(|c| !c.matches()).collect()
    }

    /// Render a short textual summary.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "{}: {}/{} cells match the paper\n",
            self.title,
            self.matching(),
            self.total()
        );
        for cell in self.mismatches() {
            out.push_str(&format!(
                "  MISMATCH {} / {}: paper says {}, observed {}\n",
                cell.level,
                cell.phenomenon.code(),
                cell.paper,
                cell.observed
            ));
        }
        out
    }
}

/// Compare the observed Table 4 against the paper's Table 4.
pub fn compare_table4() -> MatrixComparison {
    MatrixComparison::compare(&tables::table4(), &observed_table4())
}

/// Compare the observed Table 3 against the paper's Table 3.
pub fn compare_table3() -> MatrixComparison {
    MatrixComparison::compare(&tables::table3(), &observed_table3())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_table4_matches_the_paper_exactly() {
        let cmp = compare_table4();
        assert_eq!(cmp.total(), 6 * 8);
        assert!(
            cmp.mismatches().is_empty(),
            "observed Table 4 deviates from the paper:\n{}",
            cmp.summary()
        );
    }

    #[test]
    fn observed_table3_matches_the_paper_exactly() {
        let cmp = compare_table3();
        assert_eq!(cmp.total(), 4 * 4);
        assert!(cmp.mismatches().is_empty(), "{}", cmp.summary());
    }

    #[test]
    fn extended_matrix_covers_all_levels() {
        let t = observed_extended();
        assert_eq!(t.rows.len(), 8);
        // Degree 0 admits dirty writes; SERIALIZABLE admits nothing.
        assert_eq!(
            t.cell("Degree 0", Phenomenon::P0),
            Some(Possibility::Possible)
        );
        for p in Phenomenon::TABLE4_COLUMNS {
            assert_eq!(t.cell("SERIALIZABLE", p), Some(Possibility::NotPossible));
        }
    }

    #[test]
    fn observe_cell_handles_sometimes_possible() {
        assert_eq!(
            observe_cell(IsolationLevel::CursorStability, Phenomenon::P4),
            Possibility::SometimesPossible
        );
        assert_eq!(
            observe_cell(IsolationLevel::SnapshotIsolation, Phenomenon::P3),
            Possibility::SometimesPossible
        );
        assert_eq!(
            observe_cell(IsolationLevel::ReadCommitted, Phenomenon::P4),
            Possibility::Possible
        );
    }
}
