//! The full reproduction report.

use crate::ansi::{ansi_interpretation_report, ansi_report_text, AnsiHistoryVerdict};
use crate::figure::figure2_text;
use crate::matrix::{compare_table3, compare_table4, MatrixComparison};
use critique_core::locking::LockProfile;
use critique_core::tables;
use serde::{Deserialize, Serialize};

/// Everything the harness reproduces, in one structure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReproductionReport {
    /// Section 3 / Table 1: strict vs broad interpretation verdicts.
    pub ansi_verdicts: Vec<AnsiHistoryVerdict>,
    /// Table 2: the lock profiles, rendered.
    pub table2: Vec<String>,
    /// Table 3 observed-vs-paper comparison.
    pub table3: MatrixComparison,
    /// Table 4 observed-vs-paper comparison.
    pub table4: MatrixComparison,
    /// Figure 2 rendering.
    pub figure2: String,
}

impl ReproductionReport {
    /// Run every reproduction and collect the results.
    pub fn generate() -> Self {
        ReproductionReport {
            ansi_verdicts: ansi_interpretation_report(),
            table2: LockProfile::table2()
                .into_iter()
                .map(|p| p.describe())
                .collect(),
            table3: compare_table3(),
            table4: compare_table4(),
            figure2: figure2_text(),
        }
    }

    /// True when every observed cell matches the paper.
    pub fn fully_matches_paper(&self) -> bool {
        self.table3.mismatches().is_empty() && self.table4.mismatches().is_empty()
    }

    /// Render the report as human-readable text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("=== A Critique of ANSI SQL Isolation Levels — reproduction report ===\n\n");
        out.push_str(&ansi_report_text());
        out.push('\n');
        out.push_str(&tables::table1().to_text());
        out.push('\n');
        out.push_str("Table 2. Locking isolation levels (lock scope / mode / duration)\n");
        for row in &self.table2 {
            out.push_str(&format!("  {row}\n"));
        }
        out.push('\n');
        out.push_str(&tables::table3().to_text());
        out.push('\n');
        out.push_str(&self.table3.summary());
        out.push('\n');
        out.push_str(&tables::table4().to_text());
        out.push('\n');
        out.push_str(&self.table4.summary());
        out.push('\n');
        out.push_str(&self.figure2);
        out.push_str(&format!(
            "\nOverall: observed behaviour {} the paper's characterisation.\n",
            if self.fully_matches_paper() {
                "matches"
            } else {
                "DEVIATES FROM"
            }
        ));
        out
    }

    /// Render as JSON (for EXPERIMENTS.md tooling).
    ///
    /// Hand-rolled: the offline build ships a no-op `serde` shim, so the
    /// report writes its own JSON instead of going through `serde_json`.
    pub fn to_json(&self) -> String {
        let verdicts = self
            .ansi_verdicts
            .iter()
            .map(|v| {
                let exhibited = v
                    .exhibited
                    .iter()
                    .map(|p| json_string(p.code()))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "    {{\"history\": {}, \"notation\": {}, \"serializable\": {}, \"level\": {}, \"admitted_strict\": {}, \"admitted_broad\": {}, \"exhibited\": [{}]}}",
                    json_string(&v.history),
                    json_string(&v.notation),
                    v.serializable,
                    json_string(&v.level),
                    v.admitted_strict,
                    v.admitted_broad,
                    exhibited,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let table2 = self
            .table2
            .iter()
            .map(|row| format!("    {}", json_string(row)))
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"ansi_verdicts\": [\n{verdicts}\n  ],\n  \"table2\": [\n{table2}\n  ],\n  \"table3\": {},\n  \"table4\": {},\n  \"figure2\": {}\n}}",
            matrix_json(&self.table3),
            matrix_json(&self.table4),
            json_string(&self.figure2),
        )
    }
}

fn matrix_json(matrix: &MatrixComparison) -> String {
    let cells = matrix
        .cells
        .iter()
        .map(|c| {
            format!(
                "      {{\"level\": {}, \"phenomenon\": {}, \"paper\": {}, \"observed\": {}, \"matches\": {}}}",
                json_string(&c.level),
                json_string(c.phenomenon.code()),
                json_string(&c.paper.to_string()),
                json_string(&c.observed.to_string()),
                c.matches(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n    \"title\": {},\n    \"matching\": {},\n    \"total\": {},\n    \"cells\": [\n{cells}\n    ]\n  }}",
        json_string(&matrix.title),
        matrix.matching(),
        matrix.total(),
    )
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal strict JSON validator: returns the rest after one value, or
    /// `Err` at the byte offset that is not valid JSON.  Guards the
    /// hand-rolled `to_json` against escaping/format regressions that a
    /// substring check would miss.
    fn json_value(s: &str) -> Result<&str, usize> {
        let t = s.trim_start();
        let err = |rest: &str| Err(s.len() - rest.len());
        match t.as_bytes().first() {
            Some(b'{') => json_seq(&t[1..], '}', |s| {
                let rest = json_value(s)?;
                let rest = rest.trim_start();
                match rest.strip_prefix(':') {
                    Some(rest) => json_value(rest),
                    None => Err(0),
                }
            }),
            Some(b'[') => json_seq(&t[1..], ']', json_value),
            Some(b'"') => {
                let mut chars = t[1..].char_indices();
                while let Some((i, c)) = chars.next() {
                    match c {
                        '"' => return Ok(&t[i + 2..]),
                        // The guard consumes the escaped character either
                        // way; only a trailing lone backslash is an error.
                        '\\' if chars.next().is_none() => return err(&t[i..]),
                        '\\' => {}
                        c if (c as u32) < 0x20 => return err(&t[i..]),
                        _ => {}
                    }
                }
                err("")
            }
            _ => {
                for literal in ["true", "false", "null"] {
                    if let Some(rest) = t.strip_prefix(literal) {
                        return Ok(rest);
                    }
                }
                let digits = t
                    .find(|c: char| !c.is_ascii_digit() && !"-+.eE".contains(c))
                    .unwrap_or(t.len());
                if digits == 0 {
                    err(t)
                } else {
                    Ok(&t[digits..])
                }
            }
        }
    }

    /// Comma-separated `item`s (each validating one element or key/value
    /// pair) up to the closing delimiter.
    fn json_seq(
        mut s: &str,
        close: char,
        item: impl Fn(&str) -> Result<&str, usize>,
    ) -> Result<&str, usize> {
        if let Some(rest) = s.trim_start().strip_prefix(close) {
            return Ok(rest);
        }
        loop {
            s = item(s)?.trim_start();
            if let Some(rest) = s.strip_prefix(',') {
                s = rest;
            } else if let Some(rest) = s.strip_prefix(close) {
                return Ok(rest);
            } else {
                return Err(0);
            }
        }
    }

    #[test]
    fn report_matches_the_paper_and_serialises() {
        let report = ReproductionReport::generate();
        assert!(report.fully_matches_paper(), "{}", report.to_text());
        assert_eq!(report.table2.len(), 6);
        assert!(!report.ansi_verdicts.is_empty());
        let text = report.to_text();
        assert!(text.contains("Table 4"));
        assert!(text.contains("Figure 2"));
        assert!(text.contains("matches"));
        let json = report.to_json();
        assert!(json.contains("\"table4\""));
        let _extended = crate::matrix::observed_extended();
    }

    #[test]
    fn to_json_emits_strictly_valid_json() {
        let json = ReproductionReport::generate().to_json();
        match json_value(&json) {
            Ok(rest) => assert!(rest.trim().is_empty(), "trailing garbage: {rest:.60}"),
            Err(_) => panic!("to_json produced invalid JSON:\n{json}"),
        }
    }

    #[test]
    fn json_validator_rejects_malformed_documents() {
        for bad in [
            "{\"a\": }",
            "[1, 2",
            "{\"a\" 1}",
            "\"unterminated",
            "{\"a\": 1,}",
            "nul",
        ] {
            let ok = matches!(json_value(bad), Ok(rest) if rest.trim().is_empty());
            assert!(!ok, "validator accepted malformed input: {bad}");
        }
        for good in ["{}", "[]", "{\"a\": [1, -2.5e3, \"x\\n\", true, null]}"] {
            assert!(
                matches!(json_value(good), Ok(rest) if rest.trim().is_empty()),
                "validator rejected valid input: {good}"
            );
        }
    }
}
