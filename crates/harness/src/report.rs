//! The full reproduction report.

use crate::ansi::{ansi_interpretation_report, ansi_report_text, AnsiHistoryVerdict};
use crate::figure::figure2_text;
use crate::matrix::{compare_table3, compare_table4, MatrixComparison};
use critique_core::locking::LockProfile;
use critique_core::tables;
use serde::{Deserialize, Serialize};

/// Everything the harness reproduces, in one structure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReproductionReport {
    /// Section 3 / Table 1: strict vs broad interpretation verdicts.
    pub ansi_verdicts: Vec<AnsiHistoryVerdict>,
    /// Table 2: the lock profiles, rendered.
    pub table2: Vec<String>,
    /// Table 3 observed-vs-paper comparison.
    pub table3: MatrixComparison,
    /// Table 4 observed-vs-paper comparison.
    pub table4: MatrixComparison,
    /// Figure 2 rendering.
    pub figure2: String,
}

impl ReproductionReport {
    /// Run every reproduction and collect the results.
    pub fn generate() -> Self {
        ReproductionReport {
            ansi_verdicts: ansi_interpretation_report(),
            table2: LockProfile::table2()
                .into_iter()
                .map(|p| p.describe())
                .collect(),
            table3: compare_table3(),
            table4: compare_table4(),
            figure2: figure2_text(),
        }
    }

    /// True when every observed cell matches the paper.
    pub fn fully_matches_paper(&self) -> bool {
        self.table3.mismatches().is_empty() && self.table4.mismatches().is_empty()
    }

    /// Render the report as human-readable text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("=== A Critique of ANSI SQL Isolation Levels — reproduction report ===\n\n");
        out.push_str(&ansi_report_text());
        out.push('\n');
        out.push_str(&tables::table1().to_text());
        out.push('\n');
        out.push_str("Table 2. Locking isolation levels (lock scope / mode / duration)\n");
        for row in &self.table2 {
            out.push_str(&format!("  {row}\n"));
        }
        out.push('\n');
        out.push_str(&tables::table3().to_text());
        out.push('\n');
        out.push_str(&self.table3.summary());
        out.push('\n');
        out.push_str(&tables::table4().to_text());
        out.push('\n');
        out.push_str(&self.table4.summary());
        out.push('\n');
        out.push_str(&self.figure2);
        out.push_str(&format!(
            "\nOverall: observed behaviour {} the paper's characterisation.\n",
            if self.fully_matches_paper() {
                "matches"
            } else {
                "DEVIATES FROM"
            }
        ));
        out
    }

    /// Render as JSON (for EXPERIMENTS.md tooling).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_matches_the_paper_and_serialises() {
        let report = ReproductionReport::generate();
        assert!(report.fully_matches_paper(), "{}", report.to_text());
        assert_eq!(report.table2.len(), 6);
        assert!(!report.ansi_verdicts.is_empty());
        let text = report.to_text();
        assert!(text.contains("Table 4"));
        assert!(text.contains("Figure 2"));
        assert!(text.contains("matches"));
        let json = report.to_json();
        assert!(json.contains("\"table4\""));
        let _extended = crate::matrix::observed_extended();
    }
}
