//! # critique-harness
//!
//! Regenerates every table and figure in the paper's presentation from
//! *executed* behaviour:
//!
//! * [`matrix`] — runs the anomaly scenarios of `critique-workloads`
//!   against every scheduler and rebuilds the possibility matrices of
//!   Tables 3 and 4 (and the extended matrix including Degree 0 and Oracle
//!   Read Consistency), comparing each observed cell with the paper's.
//! * [`ansi`] — the Table 1 analysis: which canonical histories each ANSI
//!   level admits under the strict (A1-A3) vs broad (P1-P3)
//!   interpretations — the paper's Section 3 argument in executable form.
//! * [`figure`] — renders Figure 2 (the isolation hierarchy) as text and
//!   Graphviz DOT, from both the paper's drawing and the computed Hasse
//!   diagram.
//! * [`report`] — bundles everything into a single
//!   [`report::ReproductionReport`] with text and JSON output; the
//!   `repro-tables` and `repro-figure2` binaries print it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod ansi;
pub mod figure;
pub mod matrix;
pub mod report;

pub use crate::ansi::{ansi_interpretation_report, AnsiHistoryVerdict};
pub use crate::figure::figure2_text;
pub use crate::matrix::{observed_table3, observed_table4, CellComparison, MatrixComparison};
pub use crate::report::ReproductionReport;
