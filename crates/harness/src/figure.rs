//! Figure 2: the isolation hierarchy.

use critique_core::lattice::Hierarchy;

/// Figure 2 rendered as text: the paper's drawing (edges annotated with the
/// differentiating phenomena) followed by the Hasse diagram computed from
/// the characterisation matrix, plus the incomparable pairs.
pub fn figure2_text() -> String {
    let paper = Hierarchy::paper_figure2();
    let computed = Hierarchy::compute();
    let mut out = String::from("Figure 2: isolation hierarchy (paper drawing)\n");
    for edge in paper.edges() {
        let labels = edge
            .differentiating
            .iter()
            .map(|p| p.code())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "  {}  «  {}   [{}]\n",
            edge.lower, edge.upper, labels
        ));
    }
    out.push_str("\nComputed Hasse diagram of the characterisation matrix\n");
    out.push_str(&computed.to_text());
    out
}

/// Figure 2 as Graphviz DOT (the paper's drawing).
pub fn figure2_dot() -> String {
    Hierarchy::paper_figure2().to_dot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_contains_the_key_relations() {
        let text = figure2_text();
        assert!(
            text.contains("READ COMMITTED  «  Snapshot Isolation")
                || text.contains("READ COMMITTED  «  Cursor Stability")
        );
        assert!(text.contains("»«"), "incomparable pairs listed");
        assert!(text.contains("Snapshot Isolation  «  SERIALIZABLE"));
    }

    #[test]
    fn dot_is_well_formed() {
        let dot = figure2_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("Snapshot Isolation"));
        assert!(dot.ends_with("}\n"));
    }
}
