//! Regenerate Tables 1-4 from executed scenarios and compare each cell
//! with the paper.  Pass `--json` for machine-readable output.

use critique_harness::ReproductionReport;

fn main() {
    let report = ReproductionReport::generate();
    if std::env::args().any(|a| a == "--json") {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.to_text());
    }
    if !report.fully_matches_paper() {
        std::process::exit(1);
    }
}
