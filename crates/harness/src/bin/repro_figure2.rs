//! Print Figure 2 (the isolation hierarchy) as text, or as Graphviz DOT
//! with `--dot`.

use critique_harness::figure::{figure2_dot, figure2_text};

fn main() {
    if std::env::args().any(|a| a == "--dot") {
        println!("{}", figure2_dot());
    } else {
        println!("{}", figure2_text());
    }
}
