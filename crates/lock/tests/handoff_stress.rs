//! Threaded stress over the event-driven wait-queues: many workers hammer
//! one hot key with the read-modify-write pattern that manufactures
//! upgrade deadlocks, across the `{grant policy} × {upgrade strategy}`
//! matrix (CI runs each cell as a name-filtered job:
//! `storm_<policy>_<strategy>` / `cascade_<policy>_<strategy>…`).
//!
//! The Shared-then-upgrade legs assert the three properties the scheduler
//! owes even while deadlocks are possible:
//!
//! * **no timeouts at sane deadlines** — every wait ends in a grant or a
//!   deadlock verdict long before the generous deadline, because handoff
//!   is event-driven and deadlock detection runs at edge insertion;
//! * **victims are exactly the cycle-closing requests** — every reported
//!   cycle starts and ends with the victim's own transaction;
//! * **progress** — every transaction ends in a grant or a legitimate
//!   deadlock abort, never a stall.
//!
//! The update-lock legs assert the stronger property the U mode buys:
//! **zero deadlocks**, under either grant policy — would-be upgraders
//! serialise at the U acquisition, and the U→X conversion has only plain
//! Shared holders to outwait (none in this workload), so no cycle can
//! ever form on the hot key.

use critique_lock::prelude::*;
use critique_storage::{RowId, TxnToken};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

struct StormOutcome {
    grants: u64,
    deadlocks: u64,
    timeouts: u64,
}

/// The hot-key read-modify-write storm: every transaction takes a read
/// lock of `read_mode` on one hot key, then upgrades it to Exclusive.
fn storm(policy: GrantPolicy, read_mode: LockMode) -> StormOutcome {
    const WORKERS: u64 = 6;
    const TXNS_PER_WORKER: u64 = 25;
    const DEADLINE: Duration = Duration::from_secs(20);

    let lm = Arc::new(LockManager::new().with_policy(policy));
    let hot = || LockTarget::item("accounts", RowId(0));
    let timeouts = Arc::new(AtomicU64::new(0));
    let deadlocks = Arc::new(AtomicU64::new(0));
    let grants = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for worker in 0..WORKERS {
            let lm = Arc::clone(&lm);
            let timeouts = Arc::clone(&timeouts);
            let deadlocks = Arc::clone(&deadlocks);
            let grants = Arc::clone(&grants);
            scope.spawn(move || {
                for i in 0..TXNS_PER_WORKER {
                    let txn = TxnToken(1 + worker * TXNS_PER_WORKER + i);
                    let read = lm.acquire(txn, hot(), read_mode, &[], LockDuration::Long, DEADLINE);
                    match read {
                        Ok(()) => {}
                        Err(AcquireError::Deadlock { cycle }) => {
                            assert_eq!(cycle.first(), Some(&txn), "victim must close the cycle");
                            assert_eq!(cycle.last(), Some(&txn), "cycle must return to the victim");
                            deadlocks.fetch_add(1, Ordering::Relaxed);
                            lm.release_all(txn);
                            continue;
                        }
                        Err(AcquireError::Timeout) => {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                            lm.release_all(txn);
                            continue;
                        }
                    }
                    // Give another worker time to grab its own read lock
                    // so the upgrades actually collide (they can only
                    // under Shared; an Update holder admits no second
                    // would-be upgrader in the first place).
                    std::thread::sleep(Duration::from_micros(300));
                    let upgrade = lm.acquire(
                        txn,
                        hot(),
                        LockMode::Exclusive,
                        &[],
                        LockDuration::Long,
                        DEADLINE,
                    );
                    match upgrade {
                        Ok(()) => {
                            grants.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(AcquireError::Deadlock { cycle }) => {
                            assert_eq!(cycle.first(), Some(&txn), "victim must close the cycle");
                            assert_eq!(cycle.last(), Some(&txn), "cycle must return to the victim");
                            assert!(
                                cycle.len() >= 3,
                                "a reported cycle names at least one other transaction: {cycle:?}"
                            );
                            deadlocks.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(AcquireError::Timeout) => {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    lm.release_all(txn);
                }
            });
        }
    });

    let outcome = StormOutcome {
        grants: grants.load(Ordering::Relaxed),
        deadlocks: deadlocks.load(Ordering::Relaxed),
        timeouts: timeouts.load(Ordering::Relaxed),
    };
    assert_eq!(
        outcome.timeouts, 0,
        "no wait may hit a 20s deadline on a hot key"
    );
    assert_eq!(
        outcome.grants + outcome.deadlocks,
        WORKERS * TXNS_PER_WORKER,
        "every transaction ends in a grant or a deadlock verdict"
    );
    assert!(
        outcome.grants > 0,
        "the hot key made progress through the storm"
    );
    // Everything was released: the manager is empty and no waiter leaked.
    assert_eq!(lm.total_held(), 0);
    assert_eq!(lm.queued_waiters(), 0);
    outcome
}

#[test]
fn storm_direct_handoff_shared_then_upgrade() {
    storm(GrantPolicy::DirectHandoff, LockMode::Shared);
}

#[test]
fn storm_direct_handoff_update_lock() {
    let outcome = storm(GrantPolicy::DirectHandoff, LockMode::Update);
    assert_eq!(
        outcome.deadlocks, 0,
        "U-mode reads cannot upgrade-deadlock on a single hot key"
    );
}

#[test]
fn storm_wake_all_shared_then_upgrade() {
    storm(GrantPolicy::WakeAll, LockMode::Shared);
}

#[test]
fn storm_wake_all_update_lock() {
    let outcome = storm(GrantPolicy::WakeAll, LockMode::Update);
    assert_eq!(
        outcome.deadlocks, 0,
        "U-mode reads cannot upgrade-deadlock on a single hot key"
    );
}

/// The PR 4 batch-grant cascade, reproduced deterministically: a holder
/// keeps X on the hot key while several read-modify-write transactions
/// park their **Shared** requests; the release then batch-grants every
/// compatible Shared in one sweep, and the readers' subsequent Exclusive
/// upgrades deadlock each other — at least one is victimised, every
/// victim is a genuine cycle-closer, and exactly one survivor upgrades.
#[test]
fn cascade_direct_handoff_shared_then_upgrade_victimises_batch_granted_readers() {
    const READERS: u64 = 3;
    let lm = Arc::new(LockManager::new());
    let hot = || LockTarget::item("accounts", RowId(0));
    assert!(lm
        .try_acquire(
            TxnToken(100),
            hot(),
            LockMode::Exclusive,
            &[],
            LockDuration::Long
        )
        .is_granted());

    let all_granted = Arc::new(Barrier::new(READERS as usize));
    let deadlocks = Arc::new(AtomicU64::new(0));
    let upgrades = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 1..=READERS {
            let lm = Arc::clone(&lm);
            let all_granted = Arc::clone(&all_granted);
            let deadlocks = Arc::clone(&deadlocks);
            let upgrades = Arc::clone(&upgrades);
            scope.spawn(move || {
                let txn = TxnToken(t);
                lm.acquire(
                    txn,
                    hot(),
                    LockMode::Shared,
                    &[],
                    LockDuration::Long,
                    Duration::from_secs(20),
                )
                .expect("the release batch-grants every parked Shared");
                // Hold until *every* reader owns its Shared lock: the
                // upgrades are now guaranteed to collide.
                all_granted.wait();
                match lm.acquire(
                    txn,
                    hot(),
                    LockMode::Exclusive,
                    &[],
                    LockDuration::Long,
                    Duration::from_secs(20),
                ) {
                    Ok(()) => {
                        upgrades.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(AcquireError::Deadlock { cycle }) => {
                        assert_eq!(cycle.first(), Some(&txn));
                        assert_eq!(cycle.last(), Some(&txn));
                        deadlocks.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(AcquireError::Timeout) => panic!("cascade wait hit its deadline"),
                }
                lm.release_all(txn);
            });
        }
        // Wait until every reader is parked, then release: one sweep
        // batch-grants all the compatible Shared requests at once.
        while lm.queued_waiters() < READERS as usize {
            std::thread::sleep(Duration::from_millis(1));
        }
        lm.release_all(TxnToken(100));
    });

    assert!(
        deadlocks.load(Ordering::Relaxed) >= 1,
        "three colliding upgrades must victimise at least one reader"
    );
    assert!(
        upgrades.load(Ordering::Relaxed) >= 1,
        "at least one reader survives the cascade and upgrades"
    );
    assert_eq!(
        deadlocks.load(Ordering::Relaxed) + upgrades.load(Ordering::Relaxed),
        READERS
    );
    assert_eq!(lm.total_held(), 0);
    assert_eq!(lm.queued_waiters(), 0);
}

/// The same staged scenario under `UpgradeStrategy::UpdateLock`'s lock
/// shape — the parked read-modify-write requests are **Update** mode —
/// must produce zero victims: the release sweep grants exactly one U (U
/// conflicts with U), that holder upgrades against an empty field,
/// releases, and the queue drains strictly one upgrader at a time.
#[test]
fn cascade_direct_handoff_update_lock_has_zero_victims() {
    const READERS: u64 = 3;
    let lm = Arc::new(LockManager::new());
    let hot = || LockTarget::item("accounts", RowId(0));
    assert!(lm
        .try_acquire(
            TxnToken(100),
            hot(),
            LockMode::Exclusive,
            &[],
            LockDuration::Long
        )
        .is_granted());

    let upgrades = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 1..=READERS {
            let lm = Arc::clone(&lm);
            let upgrades = Arc::clone(&upgrades);
            scope.spawn(move || {
                let txn = TxnToken(t);
                lm.acquire(
                    txn,
                    hot(),
                    LockMode::Update,
                    &[],
                    LockDuration::Long,
                    Duration::from_secs(20),
                )
                .expect("every U request is eventually granted, one at a time");
                lm.acquire(
                    txn,
                    hot(),
                    LockMode::Exclusive,
                    &[],
                    LockDuration::Long,
                    Duration::from_secs(20),
                )
                .expect("a U→X conversion with no Shared holders waits for nothing");
                upgrades.fetch_add(1, Ordering::Relaxed);
                lm.release_all(txn);
            });
        }
        while lm.queued_waiters() < READERS as usize {
            std::thread::sleep(Duration::from_millis(1));
        }
        lm.release_all(TxnToken(100));
    });

    assert_eq!(
        upgrades.load(Ordering::Relaxed),
        READERS,
        "every U-mode reader upgrades; none is victimised"
    );
    assert_eq!(lm.total_held(), 0);
    assert_eq!(lm.queued_waiters(), 0);
}

#[test]
fn disjoint_keys_never_interfere_under_load() {
    const WORKERS: u64 = 4;
    const TXNS_PER_WORKER: u64 = 200;

    let lm = Arc::new(LockManager::new());
    std::thread::scope(|scope| {
        for worker in 0..WORKERS {
            let lm = Arc::clone(&lm);
            scope.spawn(move || {
                for i in 0..TXNS_PER_WORKER {
                    let txn = TxnToken(1 + worker * TXNS_PER_WORKER + i);
                    // Each worker owns its row: acquires must never block,
                    // so even a tiny deadline cannot expire.
                    lm.acquire(
                        txn,
                        LockTarget::item("accounts", RowId(worker)),
                        LockMode::Exclusive,
                        &[],
                        LockDuration::Long,
                        Duration::from_millis(50),
                    )
                    .expect("disjoint keys cannot conflict");
                    lm.release_all(txn);
                }
            });
        }
    });
    assert_eq!(lm.total_held(), 0);
    assert_eq!(lm.queued_waiters(), 0);
}
