//! Threaded stress over the event-driven wait-queues: many workers hammer
//! one hot key with the upgrade pattern (S then X) that manufactures
//! deadlocks, asserting the three properties the scheduler owes:
//!
//! * **no timeouts at sane deadlines** — every wait ends in a grant or a
//!   deadlock verdict long before the generous deadline, because handoff
//!   is event-driven and deadlock detection runs at edge insertion;
//! * **victims are exactly the cycle-closing requests** — every reported
//!   cycle starts and ends with the victim's own transaction, i.e. the
//!   request whose waits-for edges closed the cycle;
//! * **progress** — the hot key keeps moving: every transaction ends in a
//!   grant or a legitimate deadlock abort, never a stall.

use critique_lock::prelude::*;
use critique_storage::{RowId, TxnToken};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn hot_key_upgrade_storm_times_nothing_out_and_victimises_only_cycle_closers() {
    const WORKERS: u64 = 6;
    const TXNS_PER_WORKER: u64 = 25;
    const DEADLINE: Duration = Duration::from_secs(20);

    let lm = Arc::new(LockManager::new());
    let hot = || LockTarget::item("accounts", RowId(0));
    let timeouts = Arc::new(AtomicU64::new(0));
    let deadlocks = Arc::new(AtomicU64::new(0));
    let grants = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for worker in 0..WORKERS {
            let lm = Arc::clone(&lm);
            let timeouts = Arc::clone(&timeouts);
            let deadlocks = Arc::clone(&deadlocks);
            let grants = Arc::clone(&grants);
            scope.spawn(move || {
                for i in 0..TXNS_PER_WORKER {
                    let txn = TxnToken(1 + worker * TXNS_PER_WORKER + i);
                    let read = lm.acquire(
                        txn,
                        hot(),
                        LockMode::Shared,
                        &[],
                        LockDuration::Long,
                        DEADLINE,
                    );
                    match read {
                        Ok(()) => {}
                        Err(AcquireError::Deadlock { cycle }) => {
                            assert_eq!(cycle.first(), Some(&txn), "victim must close the cycle");
                            assert_eq!(cycle.last(), Some(&txn), "cycle must return to the victim");
                            deadlocks.fetch_add(1, Ordering::Relaxed);
                            lm.release_all(txn);
                            continue;
                        }
                        Err(AcquireError::Timeout) => {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                            lm.release_all(txn);
                            continue;
                        }
                    }
                    // Give another worker time to grab its own shared lock
                    // so the upgrades actually collide.
                    std::thread::sleep(Duration::from_micros(300));
                    let upgrade = lm.acquire(
                        txn,
                        hot(),
                        LockMode::Exclusive,
                        &[],
                        LockDuration::Long,
                        DEADLINE,
                    );
                    match upgrade {
                        Ok(()) => {
                            grants.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(AcquireError::Deadlock { cycle }) => {
                            assert_eq!(cycle.first(), Some(&txn), "victim must close the cycle");
                            assert_eq!(cycle.last(), Some(&txn), "cycle must return to the victim");
                            assert!(
                                cycle.len() >= 3,
                                "a reported cycle names at least one other transaction: {cycle:?}"
                            );
                            deadlocks.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(AcquireError::Timeout) => {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    lm.release_all(txn);
                }
            });
        }
    });

    let timeouts = timeouts.load(Ordering::Relaxed);
    let deadlocks = deadlocks.load(Ordering::Relaxed);
    let grants = grants.load(Ordering::Relaxed);
    assert_eq!(timeouts, 0, "no wait may hit a 20s deadline on a hot key");
    assert_eq!(
        grants + deadlocks,
        WORKERS * TXNS_PER_WORKER,
        "every transaction ends in a grant or a deadlock verdict"
    );
    assert!(
        grants > 0,
        "the hot key made progress through the upgrade storm"
    );
    // Everything was released: the manager is empty and no waiter leaked.
    assert_eq!(lm.total_held(), 0);
    assert_eq!(lm.queued_waiters(), 0);
}

#[test]
fn disjoint_keys_never_interfere_under_load() {
    const WORKERS: u64 = 4;
    const TXNS_PER_WORKER: u64 = 200;

    let lm = Arc::new(LockManager::new());
    std::thread::scope(|scope| {
        for worker in 0..WORKERS {
            let lm = Arc::clone(&lm);
            scope.spawn(move || {
                for i in 0..TXNS_PER_WORKER {
                    let txn = TxnToken(1 + worker * TXNS_PER_WORKER + i);
                    // Each worker owns its row: acquires must never block,
                    // so even a tiny deadline cannot expire.
                    lm.acquire(
                        txn,
                        LockTarget::item("accounts", RowId(worker)),
                        LockMode::Exclusive,
                        &[],
                        LockDuration::Long,
                        Duration::from_millis(50),
                    )
                    .expect("disjoint keys cannot conflict");
                    lm.release_all(txn);
                }
            });
        }
    });
    assert_eq!(lm.total_held(), 0);
    assert_eq!(lm.queued_waiters(), 0);
}
