//! Property tests modelling the upgrade-aware FIFO wait-queue against a
//! single-threaded reference scheduler, over the full three-mode
//! (S / U / X) matrix.
//!
//! The model replays random acquire/release/retire sequences through two
//! schedulers and demands they agree after every event:
//!
//! * the **queue model** runs the shipped discipline: barge-free
//!   enqueueing behind conflicts, conversion requests (a transaction
//!   strengthening a lock it already holds on the same target) ordered
//!   ahead of fresh requests, and [`upgrade_aware_plan`] — the pure
//!   specification the lock manager's release sweep instantiates — to
//!   decide which waiters each release grants;
//! * the **reference scheduler** knows nothing about sweeps: after every
//!   release it just rescans its wait list in the same effective order
//!   (conversions first, then arrival order), one request at a time,
//!   granting the first request that conflicts with neither a held lock
//!   nor an earlier still-waiting request, until a full pass grants
//!   nothing.
//!
//! On top of the equivalence, the properties pin the guarantees the
//! event-driven scheduler owes its callers: **no wakeup is lost** (after
//! a release *or a retired waiter* — a timed-out or victimised request
//! vanishing from the queue — nothing grantable in the effective order is
//! left waiting, because a parked waiter with no conflict left would
//! sleep forever now that there is no poll), **starvation-freedom**
//! (releasing all held locks always grants at least the head of every
//! non-empty queue, so draining terminates), and **upgrade priority** (a
//! fresh Shared request is never granted while a conflicting conversion
//! on the same target is still waiting — the rule that kills the
//! batch-grant upgrade-deadlock cascade).

use critique_lock::{
    conversion_first, is_conversion, requests_conflict, upgrade_aware_plan, LockMode, LockTarget,
    QueuedRequest,
};
use critique_storage::{RowId, TxnToken};
use proptest::prelude::*;

/// One scripted event: a transaction acquires an item lock, releases
/// everything it holds, or retires its queued request without releasing
/// (the shape of a timeout / deadlock victim between its verdict and its
/// rollback).
#[derive(Clone, Debug)]
enum Event {
    Acquire { txn: u64, row: u64, mode: LockMode },
    Release { txn: u64 },
    Retire { txn: u64 },
}

fn request(txn: u64, row: u64, mode: LockMode) -> QueuedRequest {
    QueuedRequest {
        txn: TxnToken(txn),
        target: LockTarget::item("t", RowId(row)),
        mode,
        images: Vec::new(),
    }
}

/// Strategy: a short script of acquires, releases, and retires over a
/// handful of transactions, rows, and all three lock modes.
fn arbitrary_events() -> impl Strategy<Value = Vec<Event>> {
    let event = (
        1u64..=5,
        0u64..3,
        prop::sample::select(vec![
            LockMode::Shared,
            LockMode::Update,
            LockMode::Exclusive,
        ]),
        1u64..=10,
    )
        .prop_map(|(txn, row, mode, kind)| {
            if kind <= 7 {
                Event::Acquire { txn, row, mode }
            } else if kind <= 9 {
                Event::Release { txn }
            } else {
                Event::Retire { txn }
            }
        });
    proptest::collection::vec(event, 1..40)
}

/// Shared scheduler state: granted requests plus an arrival-ordered wait
/// list.  Both schedulers use this shape; they differ only in how a
/// release picks the grants.
#[derive(Clone, Default)]
struct Scheduler {
    held: Vec<QueuedRequest>,
    queue: Vec<QueuedRequest>,
    grant_log: Vec<(u64, u64, LockMode)>,
}

impl Scheduler {
    /// A request is admitted immediately only if it conflicts with nothing
    /// granted and nothing waiting *ahead of it in the effective order*
    /// (no barging past the queue — this is the discipline a blocking
    /// `acquire` follows once it enqueues; the model scripts every request
    /// through it so grant order is fully deterministic).  A conversion
    /// request is ordered ahead of every fresh request, so only held
    /// locks and earlier-queued conversions can block it.
    fn acquire(&mut self, req: QueuedRequest) {
        // A transaction re-requesting a target it already covers, or one
        // it already has a request queued on, merges in the real manager;
        // keep the model simple by ignoring such re-requests.
        if self
            .held
            .iter()
            .any(|r| r.txn == req.txn && r.target == req.target && r.mode.covers(req.mode))
        {
            return;
        }
        if self
            .queue
            .iter()
            .any(|r| r.txn == req.txn && r.target == req.target)
        {
            return;
        }
        let conversion = is_conversion(&self.held, &req);
        let blocked = self.held.iter().any(|h| requests_conflict(h, &req))
            || self.queue.iter().any(|q| {
                let q_precedes = is_conversion(&self.held, q) || !conversion;
                q_precedes && requests_conflict(q, &req)
            });
        if blocked {
            self.queue.push(req);
        } else {
            self.install(req);
        }
    }

    /// Install a grant: a conversion strengthens the existing held entry
    /// in place, a fresh request appends a new holder.
    fn install(&mut self, req: QueuedRequest) {
        self.grant_log.push((req.txn.0, row_of(&req), req.mode));
        if let Some(held) = self
            .held
            .iter_mut()
            .find(|h| h.txn == req.txn && h.target == req.target)
        {
            held.mode = held.mode.max(req.mode);
        } else {
            self.held.push(req);
        }
    }

    fn release(
        &mut self,
        txn: u64,
        sweep: impl Fn(&[QueuedRequest], &[QueuedRequest]) -> Vec<usize>,
    ) {
        let before = self.held.len();
        self.held.retain(|h| h.txn.0 != txn);
        if self.held.len() == before && !self.queue.iter().any(|q| q.txn.0 == txn) {
            return;
        }
        // A queued request of the releasing transaction retires too (the
        // real waiter would observe its own abort and stop waiting).
        self.queue.retain(|q| q.txn.0 != txn);
        self.drain(sweep);
    }

    /// A queued request of `txn` vanishes without any lock being released
    /// (timeout / victim verdict); the real manager re-sweeps the queue so
    /// followers held back only by the dead request are not stranded.
    fn retire(
        &mut self,
        txn: u64,
        sweep: impl Fn(&[QueuedRequest], &[QueuedRequest]) -> Vec<usize>,
    ) {
        let before = self.queue.len();
        self.queue.retain(|q| q.txn.0 != txn);
        if self.queue.len() < before {
            self.drain(sweep);
        }
    }

    fn drain(&mut self, sweep: impl Fn(&[QueuedRequest], &[QueuedRequest]) -> Vec<usize>) {
        loop {
            let granted = sweep(&self.held, &self.queue);
            if granted.is_empty() {
                return;
            }
            // Move granted requests, in grant order, from queue to held.
            for &i in &granted {
                self.install(self.queue[i].clone());
            }
            let mut idx = 0usize;
            self.queue.retain(|_| {
                let keep = !granted.contains(&idx);
                idx += 1;
                keep
            });
            // One sweep reaches a fixpoint for the model (nothing new was
            // released), but loop for reference schedulers that grant one
            // request per pass.
        }
    }

    /// True when some waiting request conflicts with nothing held and no
    /// request ahead of it in the effective order — i.e. a wakeup has
    /// been lost.
    fn has_lost_wakeup(&self) -> bool {
        let order = conversion_first(&self.held, &self.queue);
        order.iter().enumerate().any(|(pos, &idx)| {
            let req = &self.queue[idx];
            !self.held.iter().any(|h| requests_conflict(h, req))
                && !order[..pos]
                    .iter()
                    .any(|&j| requests_conflict(&self.queue[j], req))
        })
    }
}

fn row_of(req: &QueuedRequest) -> u64 {
    match &req.target {
        LockTarget::Item { row, .. } => row.0,
        LockTarget::Predicate(_) => u64::MAX,
    }
}

/// The reference sweep: one grant per pass, first eligible request in the
/// effective (conversions-first) order.  Deliberately dumber than
/// [`upgrade_aware_plan`].
fn reference_sweep(held: &[QueuedRequest], queue: &[QueuedRequest]) -> Vec<usize> {
    let order = conversion_first(held, queue);
    for (pos, &idx) in order.iter().enumerate() {
        let req = &queue[idx];
        let eligible = !held.iter().any(|h| requests_conflict(h, req))
            && !order[..pos]
                .iter()
                .any(|&j| requests_conflict(&queue[j], req));
        if eligible {
            return vec![idx];
        }
    }
    Vec::new()
}

fn replay(events: &[Event]) -> (Scheduler, Scheduler) {
    let mut model = Scheduler::default();
    let mut reference = Scheduler::default();
    for event in events {
        match event {
            Event::Acquire { txn, row, mode } => {
                model.acquire(request(*txn, *row, *mode));
                reference.acquire(request(*txn, *row, *mode));
            }
            Event::Release { txn } => {
                model.release(*txn, upgrade_aware_plan);
                reference.release(*txn, reference_sweep);
            }
            Event::Retire { txn } => {
                model.retire(*txn, upgrade_aware_plan);
                reference.retire(*txn, reference_sweep);
            }
        }
    }
    (model, reference)
}

fn keyset(requests: &[QueuedRequest]) -> Vec<(u64, u64, LockMode)> {
    let mut keys: Vec<_> = requests
        .iter()
        .map(|r| (r.txn.0, row_of(r), r.mode))
        .collect();
    keys.sort();
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn queue_model_matches_the_reference_scheduler(events in arbitrary_events()) {
        let (model, reference) = replay(&events);
        // Same grants, same order: the batched upgrade-aware sweep is
        // equivalent to granting one eligible request at a time in the
        // conversions-first effective order.
        prop_assert_eq!(&model.grant_log, &reference.grant_log);
        prop_assert_eq!(keyset(&model.held), keyset(&reference.held));
        prop_assert_eq!(keyset(&model.queue), keyset(&reference.queue));
    }

    #[test]
    fn no_wakeup_is_ever_lost(events in arbitrary_events()) {
        let mut model = Scheduler::default();
        for event in &events {
            match event {
                Event::Acquire { txn, row, mode } => {
                    model.acquire(request(*txn, *row, *mode));
                }
                Event::Release { txn } => model.release(*txn, upgrade_aware_plan),
                // The retired-waiter half of the invariant: a queued
                // request vanishing (timeout / victim) must re-sweep with
                // the same upgrade-aware discipline, or a follower that
                // was held back only by the dead request sleeps to its
                // own deadline.
                Event::Retire { txn } => model.retire(*txn, upgrade_aware_plan),
            }
            // Invariant after every event: nothing grantable is parked.
            prop_assert!(!model.has_lost_wakeup());
        }
    }

    #[test]
    fn sweeps_never_grant_past_a_waiting_conversion(events in arbitrary_events()) {
        // Replay, and at every state check the planned grants directly:
        // the plan never grants a fresh request that conflicts with a
        // conversion it leaves waiting — in particular, no fresh Shared
        // lands on a target with a blocked upgrade (the cascade shape).
        let mut model = Scheduler::default();
        for event in &events {
            match event {
                Event::Acquire { txn, row, mode } => {
                    model.acquire(request(*txn, *row, *mode));
                }
                Event::Release { txn } => model.release(*txn, upgrade_aware_plan),
                Event::Retire { txn } => model.retire(*txn, upgrade_aware_plan),
            }
            let plan = upgrade_aware_plan(&model.held, &model.queue);
            for (idx, req) in model.queue.iter().enumerate() {
                if plan.contains(&idx) || !is_conversion(&model.held, req) {
                    continue;
                }
                // `req` is a conversion the plan leaves waiting: nothing
                // the plan grants may conflict with it.
                for &g in &plan {
                    prop_assert!(
                        !requests_conflict(req, &model.queue[g]),
                        "sweep granted {:?} past the waiting conversion {:?}",
                        model.queue[g], req
                    );
                }
            }
        }
    }

    #[test]
    fn draining_all_holders_starves_no_waiter(events in arbitrary_events()) {
        let (mut model, _) = replay(&events);
        // Keep releasing every holder; the discipline must grant at least
        // the head of each queue per round, so the queue drains in
        // bounded rounds.
        let mut rounds = 0usize;
        while !model.queue.is_empty() {
            let waiting_before = model.queue.len();
            let holders: Vec<u64> = model.held.iter().map(|h| h.txn.0).collect();
            if holders.is_empty() {
                // Every waiter conflicts only with other waiters: the
                // sweep of an empty release set must still admit the
                // head (no lost wakeup), which `release` of an absent txn
                // skips — drive it via a no-op holder release.
                model.release(u64::MAX, upgrade_aware_plan);
                prop_assert!(model.queue.len() < waiting_before || model.queue.is_empty(),
                    "head of queue starved with no holders");
                break;
            }
            for txn in holders {
                model.release(txn, upgrade_aware_plan);
            }
            prop_assert!(model.queue.len() < waiting_before,
                "a full release round granted nothing: starvation");
            rounds += 1;
            prop_assert!(rounds <= events.len() + 1, "drain did not terminate");
        }
        prop_assert!(!model.has_lost_wakeup());
    }

    #[test]
    fn fifo_order_is_strict_for_exclusive_same_row_requests(txns in proptest::collection::vec(1u64..=6, 2..6)) {
        // All-exclusive requests on one row: grants must come out in
        // exactly arrival order when the holders release one by one (no
        // conversions in play, so the effective order is plain FIFO).
        let mut model = Scheduler::default();
        let mut distinct: Vec<u64> = Vec::new();
        for t in txns {
            if !distinct.contains(&t) {
                distinct.push(t);
            }
        }
        for &t in &distinct {
            model.acquire(request(t, 0, LockMode::Exclusive));
        }
        let mut order: Vec<u64> = Vec::new();
        for _ in 0..distinct.len() {
            let holder = model.held.first().expect("one exclusive holder").txn.0;
            order.push(holder);
            model.release(holder, upgrade_aware_plan);
        }
        prop_assert_eq!(order, distinct);
    }

    #[test]
    fn a_retired_upgrade_unblocks_its_fifo_followers(readers in 2u64..=4) {
        // Holder 1 keeps S(x).  Txn 2 acquires S(x) then queues its X
        // upgrade (blocked by holder 1); fresh Shared requests queue
        // behind the upgrade and are held back by it.  When the upgrade
        // retires (its transaction was victimised elsewhere), the
        // followers must be granted by the retire's re-sweep — with no
        // poll, nothing else would ever wake them.
        let mut model = Scheduler::default();
        model.acquire(request(1, 0, LockMode::Shared));
        model.acquire(request(2, 0, LockMode::Shared));
        model.acquire(request(2, 0, LockMode::Exclusive)); // conversion, blocked by 1
        prop_assert_eq!(model.queue.len(), 1);
        for t in 0..readers {
            model.acquire(request(10 + t, 0, LockMode::Shared));
        }
        // All fresh readers held back behind the waiting upgrade.
        prop_assert_eq!(model.queue.len(), 1 + readers as usize);
        model.retire(2, upgrade_aware_plan);
        // The upgrade is gone; every reader is granted by the re-sweep.
        prop_assert_eq!(model.queue.len(), 0);
        prop_assert!(!model.has_lost_wakeup());
    }
}
