//! Property tests modelling the FIFO wait-queue against a single-threaded
//! reference scheduler.
//!
//! The model replays random acquire/release sequences through two
//! schedulers and demands they agree after every event:
//!
//! * the **queue model** runs the shipped discipline: barge-free
//!   enqueueing behind conflicts, and [`sweep_plan`] — the pure
//!   specification the lock manager's release sweep instantiates — to
//!   decide which waiters each release grants;
//! * the **reference scheduler** knows nothing about sweeps: after every
//!   release it just rescans its single arrival-ordered wait list, one
//!   request at a time, granting the first request that conflicts with
//!   neither a held lock nor an earlier still-waiting request, until a
//!   full pass grants nothing.
//!
//! On top of the equivalence, the properties pin the two guarantees the
//! event-driven scheduler owes its callers: **no wakeup is lost** (after a
//! release, nothing grantable is left waiting — a parked waiter with no
//! conflict left would sleep forever now that there is no poll) and
//! **starvation-freedom** (releasing all held locks always grants at least
//! the head of every non-empty queue, so draining terminates in at most
//! one sweep per waiter).

use critique_lock::{requests_conflict, sweep_plan, LockMode, LockTarget, QueuedRequest};
use critique_storage::{RowId, TxnToken};
use proptest::prelude::*;

/// One scripted event: a transaction acquires an item lock or releases
/// everything it holds.
#[derive(Clone, Debug)]
enum Event {
    Acquire { txn: u64, row: u64, exclusive: bool },
    Release { txn: u64 },
}

fn request(txn: u64, row: u64, exclusive: bool) -> QueuedRequest {
    QueuedRequest {
        txn: TxnToken(txn),
        target: LockTarget::item("t", RowId(row)),
        mode: if exclusive {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        },
        images: Vec::new(),
    }
}

/// Strategy: a short script of acquires and releases over a handful of
/// transactions and rows.
fn arbitrary_events() -> impl Strategy<Value = Vec<Event>> {
    let event =
        (1u64..=5, 0u64..3, prop::bool::ANY, 1u64..=8).prop_map(|(txn, row, exclusive, kind)| {
            if kind <= 6 {
                Event::Acquire {
                    txn,
                    row,
                    exclusive,
                }
            } else {
                Event::Release { txn }
            }
        });
    proptest::collection::vec(event, 1..40)
}

/// Shared scheduler state: granted requests plus an arrival-ordered wait
/// list.  Both schedulers use this shape; they differ only in how a
/// release picks the grants.
#[derive(Clone, Default)]
struct Scheduler {
    held: Vec<QueuedRequest>,
    queue: Vec<QueuedRequest>,
    grant_log: Vec<(u64, u64)>,
}

impl Scheduler {
    /// A request is admitted immediately only if it conflicts with nothing
    /// granted and nothing already waiting (no barging past the queue —
    /// this is the discipline a blocking `acquire` follows once it
    /// enqueues; the model scripts every request through it so grant
    /// order is fully deterministic).
    fn acquire(&mut self, req: QueuedRequest) {
        // A transaction re-requesting while already granted or queued on
        // the same row merges in the real manager; keep the model simple
        // by ignoring exact re-requests.
        let same = |r: &QueuedRequest| r.txn == req.txn && r.target == req.target;
        if self.held.iter().any(same) || self.queue.iter().any(same) {
            return;
        }
        let blocked = self.held.iter().any(|h| requests_conflict(h, &req))
            || self.queue.iter().any(|q| requests_conflict(q, &req));
        if blocked {
            self.queue.push(req);
        } else {
            self.grant_log.push((req.txn.0, row_of(&req)));
            self.held.push(req);
        }
    }

    fn release(
        &mut self,
        txn: u64,
        sweep: impl Fn(&[QueuedRequest], &[QueuedRequest]) -> Vec<usize>,
    ) {
        let before = self.held.len();
        self.held.retain(|h| h.txn.0 != txn);
        if self.held.len() == before && !self.queue.iter().any(|q| q.txn.0 == txn) {
            return;
        }
        // A queued request of the releasing transaction retires too (the
        // real waiter would observe its own abort and stop waiting).
        self.queue.retain(|q| q.txn.0 != txn);
        loop {
            let granted = sweep(&self.held, &self.queue);
            if granted.is_empty() {
                return;
            }
            // Move granted requests, in queue order, from queue to held.
            for &i in &granted {
                let req = self.queue[i].clone();
                self.grant_log.push((req.txn.0, row_of(&req)));
                self.held.push(req);
            }
            let mut idx = 0usize;
            self.queue.retain(|_| {
                let keep = !granted.contains(&idx);
                idx += 1;
                keep
            });
            // One sweep reaches a fixpoint for the model (nothing new was
            // released), but loop for reference schedulers that grant one
            // request per pass.
        }
    }

    /// True when some waiting request conflicts with nothing held and no
    /// earlier still-waiting request — i.e. a wakeup has been lost.
    fn has_lost_wakeup(&self) -> bool {
        self.queue.iter().enumerate().any(|(i, req)| {
            !self.held.iter().any(|h| requests_conflict(h, req))
                && !self.queue[..i].iter().any(|q| requests_conflict(q, req))
        })
    }
}

fn row_of(req: &QueuedRequest) -> u64 {
    match &req.target {
        LockTarget::Item { row, .. } => row.0,
        LockTarget::Predicate(_) => u64::MAX,
    }
}

/// The reference sweep: one grant per pass, first eligible request in
/// arrival order.  Deliberately dumber than [`sweep_plan`].
fn reference_sweep(held: &[QueuedRequest], queue: &[QueuedRequest]) -> Vec<usize> {
    for (i, req) in queue.iter().enumerate() {
        let eligible = !held.iter().any(|h| requests_conflict(h, req))
            && !queue[..i].iter().any(|q| requests_conflict(q, req));
        if eligible {
            return vec![i];
        }
    }
    Vec::new()
}

fn replay(events: &[Event]) -> (Scheduler, Scheduler) {
    let mut model = Scheduler::default();
    let mut reference = Scheduler::default();
    for event in events {
        match event {
            Event::Acquire {
                txn,
                row,
                exclusive,
            } => {
                model.acquire(request(*txn, *row, *exclusive));
                reference.acquire(request(*txn, *row, *exclusive));
            }
            Event::Release { txn } => {
                model.release(*txn, sweep_plan);
                reference.release(*txn, reference_sweep);
            }
        }
    }
    (model, reference)
}

fn keyset(requests: &[QueuedRequest]) -> Vec<(u64, u64, bool)> {
    let mut keys: Vec<_> = requests
        .iter()
        .map(|r| (r.txn.0, row_of(r), r.mode == LockMode::Exclusive))
        .collect();
    keys.sort();
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn queue_model_matches_the_reference_scheduler(events in arbitrary_events()) {
        let (model, reference) = replay(&events);
        // Same grants, same order: the batched FIFO sweep is equivalent to
        // granting one eligible request at a time in arrival order.
        prop_assert_eq!(&model.grant_log, &reference.grant_log);
        prop_assert_eq!(keyset(&model.held), keyset(&reference.held));
        prop_assert_eq!(keyset(&model.queue), keyset(&reference.queue));
    }

    #[test]
    fn no_wakeup_is_ever_lost(events in arbitrary_events()) {
        let mut model = Scheduler::default();
        for event in &events {
            match event {
                Event::Acquire { txn, row, exclusive } => {
                    model.acquire(request(*txn, *row, *exclusive));
                }
                Event::Release { txn } => model.release(*txn, sweep_plan),
            }
            // Invariant after every event: nothing grantable is parked.
            prop_assert!(!model.has_lost_wakeup());
        }
    }

    #[test]
    fn draining_all_holders_starves_no_waiter(events in arbitrary_events()) {
        let (mut model, _) = replay(&events);
        // Keep releasing every holder; FIFO must grant at least the head
        // of each queue per round, so the queue drains in bounded rounds.
        let mut rounds = 0usize;
        while !model.queue.is_empty() {
            let waiting_before = model.queue.len();
            let holders: Vec<u64> = model.held.iter().map(|h| h.txn.0).collect();
            if holders.is_empty() {
                // Every waiter conflicts only with other waiters: the
                // sweep of an empty release set must still admit the
                // head (no lost wakeup), which `release` of a absent txn
                // skips — drive it via a no-op holder release.
                model.release(u64::MAX, sweep_plan);
                prop_assert!(model.queue.len() < waiting_before || model.queue.is_empty(),
                    "head of queue starved with no holders");
                break;
            }
            for txn in holders {
                model.release(txn, sweep_plan);
            }
            prop_assert!(model.queue.len() < waiting_before,
                "a full release round granted nothing: starvation");
            rounds += 1;
            prop_assert!(rounds <= events.len() + 1, "drain did not terminate");
        }
        prop_assert!(!model.has_lost_wakeup());
    }

    #[test]
    fn fifo_order_is_strict_for_exclusive_same_row_requests(txns in proptest::collection::vec(1u64..=6, 2..6)) {
        // All-exclusive requests on one row: grants must come out in
        // exactly arrival order when the holders release one by one.
        let mut model = Scheduler::default();
        let mut distinct: Vec<u64> = Vec::new();
        for t in txns {
            if !distinct.contains(&t) {
                distinct.push(t);
            }
        }
        for &t in &distinct {
            model.acquire(request(t, 0, true));
        }
        let mut order: Vec<u64> = Vec::new();
        for _ in 0..distinct.len() {
            let holder = model.held.first().expect("one exclusive holder").txn.0;
            order.push(holder);
            model.release(holder, sweep_plan);
        }
        prop_assert_eq!(order, distinct);
    }
}
