//! Property tests over the three-mode (S / U / X) compatibility and
//! coverage matrix.
//!
//! The update-mode lock is deliberately *asymmetric* — a requested U is
//! compatible with held S locks, but a held U refuses new S requests so
//! its pending upgrade cannot be starved.  These properties pin down
//! exactly that shape: the matrix is symmetric everywhere **except** the
//! single intended U/S cell, coverage is a total order (reflexive and
//! transitive), and walking the upgrade path S → U → X only ever
//! strengthens a lock (monotonicity: a stronger held mode conflicts with
//! at least everything the weaker one did, on both sides of the matrix).

use critique_lock::LockMode;
use proptest::prelude::*;

const MODES: [LockMode; 3] = [LockMode::Shared, LockMode::Update, LockMode::Exclusive];

fn mode() -> impl Strategy<Value = LockMode> {
    prop::sample::select(MODES.to_vec())
}

/// The one intended asymmetry: held U vs requested S.
fn is_the_asymmetric_pair(held: LockMode, requested: LockMode) -> bool {
    matches!(
        (held, requested),
        (LockMode::Update, LockMode::Shared) | (LockMode::Shared, LockMode::Update)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cover_is_reflexive(m in mode()) {
        prop_assert!(m.covers(m));
    }

    #[test]
    fn cover_is_transitive(a in mode(), b in mode(), c in mode()) {
        if a.covers(b) && b.covers(c) {
            prop_assert!(a.covers(c));
        }
    }

    #[test]
    fn cover_is_antisymmetric(a in mode(), b in mode()) {
        if a.covers(b) && b.covers(a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn conflicts_are_symmetric_except_the_intended_us_cell(a in mode(), b in mode()) {
        if is_the_asymmetric_pair(a, b) {
            // Exactly one direction conflicts: held U blocks new S, but a
            // U request is granted while S locks are held.
            prop_assert!(a.conflicts_with(b) != b.conflicts_with(a));
            prop_assert!(LockMode::Update.conflicts_with(LockMode::Shared));
            prop_assert!(!LockMode::Shared.conflicts_with(LockMode::Update));
        } else {
            prop_assert_eq!(a.conflicts_with(b), b.conflicts_with(a));
        }
    }

    #[test]
    fn self_compatibility_is_shared_only(m in mode()) {
        // S is the only self-compatible mode: two U holders would both
        // expect an uncontended upgrade, and X is exclusive by definition.
        prop_assert_eq!(!m.conflicts_with(m), m == LockMode::Shared);
    }

    #[test]
    fn upgrading_the_held_mode_never_sheds_conflicts(weak in mode(), strong in mode(), other in mode()) {
        // Monotonicity on the held side: if a held `weak` blocks `other`,
        // then any covering `strong` blocks it too — upgrading a lock can
        // only restrict concurrency, never admit a request it previously
        // refused (this is what makes in-place upgrade merges sound).
        if strong.covers(weak) && weak.conflicts_with(other) {
            prop_assert!(strong.conflicts_with(other));
        }
    }

    #[test]
    fn upgrading_the_requested_mode_never_sheds_conflicts(weak in mode(), strong in mode(), held in mode()) {
        // Monotonicity on the requested side: asking for more can only be
        // refused by more holders.
        if strong.covers(weak) && held.conflicts_with(weak) {
            prop_assert!(held.conflicts_with(strong));
        }
    }

    #[test]
    fn covering_modes_grant_every_right_of_the_covered(a in mode(), b in mode(), c in mode()) {
        // If holding `b` suffices for a request of `c`, then holding a
        // covering `a` suffices too.
        if a.covers(b) && b.covers(c) {
            prop_assert!(a.covers(c));
            prop_assert!(a >= c);
        }
    }
}

#[test]
fn the_upgrade_path_is_strictly_monotone() {
    // S → U → X: each step covers the previous, never the reverse.
    let path = [LockMode::Shared, LockMode::Update, LockMode::Exclusive];
    for pair in path.windows(2) {
        assert!(pair[1].covers(pair[0]));
        assert!(!pair[0].covers(pair[1]));
    }
    assert!(LockMode::Exclusive.covers(LockMode::Shared));
    assert!(!LockMode::Shared.covers(LockMode::Exclusive));
}

#[test]
fn the_full_matrix_is_the_documented_one() {
    use LockMode::*;
    // (held, requested) → conflicts?
    let expected = [
        ((Shared, Shared), false),
        ((Shared, Update), false),
        ((Shared, Exclusive), true),
        ((Update, Shared), true),
        ((Update, Update), true),
        ((Update, Exclusive), true),
        ((Exclusive, Shared), true),
        ((Exclusive, Update), true),
        ((Exclusive, Exclusive), true),
    ];
    for ((held, requested), conflict) in expected {
        assert_eq!(
            held.conflicts_with(requested),
            conflict,
            "held {held} vs requested {requested}"
        );
    }
}
