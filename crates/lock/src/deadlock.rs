//! Waits-for graph and deadlock detection.
//!
//! When a lock request cannot be granted, the requesting transaction waits
//! for the current holders.  A cycle in the waits-for graph is a deadlock.
//! The manager maintains the graph incrementally — edges are inserted the
//! moment a request blocks and refreshed when a release sweep visits a
//! still-blocked waiter — and runs the cycle check at insertion: the
//! request whose edges *close* the cycle is the victim, so every reported
//! cycle starts and ends with the victim itself.  ([`WaitsForGraph::choose_victim`]
//! implements the classic youngest-in-cycle policy as a standalone helper;
//! the shipped scheduler does not use it.)

use critique_storage::TxnToken;
use std::collections::{BTreeMap, BTreeSet};

/// A waits-for graph between transactions.
#[derive(Clone, Debug, Default)]
pub struct WaitsForGraph {
    edges: BTreeMap<TxnToken, BTreeSet<TxnToken>>,
}

impl WaitsForGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `waiter` waits for `holder`.
    pub fn add_wait(&mut self, waiter: TxnToken, holder: TxnToken) {
        if waiter != holder {
            self.edges.entry(waiter).or_default().insert(holder);
        }
    }

    /// Replace the full set of transactions `waiter` is waiting for.
    pub fn set_waits(&mut self, waiter: TxnToken, holders: impl IntoIterator<Item = TxnToken>) {
        let set: BTreeSet<TxnToken> = holders.into_iter().filter(|h| *h != waiter).collect();
        if set.is_empty() {
            self.edges.remove(&waiter);
        } else {
            self.edges.insert(waiter, set);
        }
    }

    /// Remove `waiter`'s outgoing edges (it is no longer waiting).
    pub fn clear_waits(&mut self, waiter: TxnToken) {
        self.edges.remove(&waiter);
    }

    /// Remove a transaction entirely (it committed or aborted).
    pub fn remove(&mut self, txn: TxnToken) {
        self.edges.remove(&txn);
        for holders in self.edges.values_mut() {
            holders.remove(&txn);
        }
        self.edges.retain(|_, holders| !holders.is_empty());
    }

    /// The transactions `waiter` currently waits for.
    pub fn waits_of(&self, waiter: TxnToken) -> Vec<TxnToken> {
        self.edges
            .get(&waiter)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Find a cycle containing `start`, if one exists, as a list of
    /// transactions `start → … → start`.
    pub fn find_cycle_from(&self, start: TxnToken) -> Option<Vec<TxnToken>> {
        let mut path = vec![start];
        let mut on_path: BTreeSet<TxnToken> = [start].into();
        self.dfs(start, start, &mut path, &mut on_path)
    }

    fn dfs(
        &self,
        current: TxnToken,
        start: TxnToken,
        path: &mut Vec<TxnToken>,
        on_path: &mut BTreeSet<TxnToken>,
    ) -> Option<Vec<TxnToken>> {
        if let Some(nexts) = self.edges.get(&current) {
            for &next in nexts {
                if next == start {
                    let mut cycle = path.clone();
                    cycle.push(start);
                    return Some(cycle);
                }
                if on_path.insert(next) {
                    path.push(next);
                    if let Some(cycle) = self.dfs(next, start, path, on_path) {
                        return Some(cycle);
                    }
                    path.pop();
                    on_path.remove(&next);
                }
            }
        }
        None
    }

    /// Find any deadlock cycle in the graph.
    pub fn find_any_cycle(&self) -> Option<Vec<TxnToken>> {
        self.edges
            .keys()
            .copied()
            .collect::<Vec<_>>()
            .into_iter()
            .find_map(|t| self.find_cycle_from(t))
    }

    /// The classic youngest-transaction victim policy (largest token).
    /// Kept as a standalone helper for comparison and analysis; the lock
    /// manager itself victimises the cycle-closing request instead, which
    /// needs no policy choice at all.
    pub fn choose_victim(cycle: &[TxnToken]) -> Option<TxnToken> {
        cycle.iter().copied().max()
    }

    /// Number of waiting transactions.
    pub fn waiter_count(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_cycle_in_a_chain() {
        let mut g = WaitsForGraph::new();
        g.add_wait(TxnToken(1), TxnToken(2));
        g.add_wait(TxnToken(2), TxnToken(3));
        assert!(g.find_any_cycle().is_none());
        assert!(g.find_cycle_from(TxnToken(1)).is_none());
        assert_eq!(g.waits_of(TxnToken(1)), vec![TxnToken(2)]);
    }

    #[test]
    fn two_party_deadlock_detected() {
        let mut g = WaitsForGraph::new();
        g.add_wait(TxnToken(1), TxnToken(2));
        g.add_wait(TxnToken(2), TxnToken(1));
        let cycle = g.find_cycle_from(TxnToken(1)).unwrap();
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.contains(&TxnToken(2)));
        assert_eq!(WaitsForGraph::choose_victim(&cycle), Some(TxnToken(2)));
    }

    #[test]
    fn three_party_deadlock_detected() {
        let mut g = WaitsForGraph::new();
        g.add_wait(TxnToken(1), TxnToken(2));
        g.add_wait(TxnToken(2), TxnToken(3));
        g.add_wait(TxnToken(3), TxnToken(1));
        assert!(g.find_any_cycle().is_some());
        // Removing one participant breaks the cycle.
        g.remove(TxnToken(3));
        assert!(g.find_any_cycle().is_none());
    }

    #[test]
    fn self_waits_are_ignored() {
        let mut g = WaitsForGraph::new();
        g.add_wait(TxnToken(1), TxnToken(1));
        assert!(g.find_any_cycle().is_none());
        assert_eq!(g.waiter_count(), 0);
    }

    #[test]
    fn set_and_clear_waits() {
        let mut g = WaitsForGraph::new();
        g.set_waits(TxnToken(1), [TxnToken(2), TxnToken(3)]);
        assert_eq!(g.waits_of(TxnToken(1)).len(), 2);
        g.set_waits(TxnToken(1), [TxnToken(2)]);
        assert_eq!(g.waits_of(TxnToken(1)), vec![TxnToken(2)]);
        g.clear_waits(TxnToken(1));
        assert_eq!(g.waiter_count(), 0);
        g.set_waits(TxnToken(1), []);
        assert_eq!(g.waiter_count(), 0);
    }
}
