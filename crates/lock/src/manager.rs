//! The lock manager.

use crate::deadlock::WaitsForGraph;
use crate::mode::LockMode;
use crate::target::LockTarget;
use critique_core::locking::LockDuration;
use critique_storage::{Row, TxnToken};
use parking_lot::{Condvar, Mutex};
use std::fmt;
use std::time::Duration;

/// One granted lock.
#[derive(Clone, Debug)]
struct HeldLock {
    holder: TxnToken,
    target: LockTarget,
    mode: LockMode,
    duration: LockDuration,
    /// Row images associated with an item lock (the values read, or the
    /// before/after images of a write) — used to evaluate conflicts against
    /// predicate locks.
    images: Vec<Row>,
}

/// Result of a non-blocking acquisition attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock was granted (or was already held).
    Granted,
    /// The request conflicts with locks held by these transactions.
    WouldBlock {
        /// Current holders of conflicting locks.
        holders: Vec<TxnToken>,
    },
}

impl LockOutcome {
    /// True if the lock was granted.
    pub fn is_granted(&self) -> bool {
        matches!(self, LockOutcome::Granted)
    }

    /// The conflicting holders, if the request would block.
    pub fn blockers(&self) -> &[TxnToken] {
        match self {
            LockOutcome::Granted => &[],
            LockOutcome::WouldBlock { holders } => holders,
        }
    }
}

/// Errors from a blocking acquisition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AcquireError {
    /// The requester was chosen as the victim of a deadlock cycle and must
    /// abort.
    Deadlock {
        /// The cycle that was detected.
        cycle: Vec<TxnToken>,
    },
    /// The lock could not be acquired within the timeout.
    Timeout,
}

impl fmt::Display for AcquireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcquireError::Deadlock { cycle } => {
                write!(
                    f,
                    "deadlock victim; cycle of {} transactions",
                    cycle.len().saturating_sub(1)
                )
            }
            AcquireError::Timeout => write!(f, "lock wait timeout"),
        }
    }
}

impl std::error::Error for AcquireError {}

#[derive(Default)]
struct Inner {
    held: Vec<HeldLock>,
    waits: WaitsForGraph,
}

/// The lock manager: a table of granted locks plus a waits-for graph.
#[derive(Default)]
pub struct LockManager {
    inner: Mutex<Inner>,
    released: Condvar,
}

impl LockManager {
    /// An empty lock manager.
    pub fn new() -> Self {
        Self::default()
    }

    fn conflicting_holders(
        inner: &Inner,
        txn: TxnToken,
        target: &LockTarget,
        mode: LockMode,
        images: &[Row],
    ) -> Vec<TxnToken> {
        let mut holders: Vec<TxnToken> = inner
            .held
            .iter()
            .filter(|lock| lock.holder != txn)
            .filter(|lock| lock.mode.conflicts_with(mode))
            .filter(|lock| lock.target.overlaps(&lock.images, target, images))
            .map(|lock| lock.holder)
            .collect();
        holders.sort();
        holders.dedup();
        holders
    }

    fn grant(
        inner: &mut Inner,
        txn: TxnToken,
        target: LockTarget,
        mode: LockMode,
        duration: LockDuration,
        images: &[Row],
    ) {
        if let Some(existing) = inner
            .held
            .iter_mut()
            .find(|lock| lock.holder == txn && lock.target == target)
        {
            existing.mode = existing.mode.max(mode);
            existing.duration = existing.duration.max(duration);
            existing.images.extend_from_slice(images);
        } else {
            inner.held.push(HeldLock {
                holder: txn,
                target,
                mode,
                duration,
                images: images.to_vec(),
            });
        }
    }

    /// Attempt to acquire a lock without blocking.
    pub fn try_acquire(
        &self,
        txn: TxnToken,
        target: LockTarget,
        mode: LockMode,
        images: &[Row],
        duration: LockDuration,
    ) -> LockOutcome {
        let mut inner = self.inner.lock();
        let holders = Self::conflicting_holders(&inner, txn, &target, mode, images);
        if holders.is_empty() {
            Self::grant(&mut inner, txn, target, mode, duration, images);
            LockOutcome::Granted
        } else {
            LockOutcome::WouldBlock { holders }
        }
    }

    /// Acquire a lock, blocking until it is granted, the requester becomes
    /// a deadlock victim, or `timeout` expires.
    pub fn acquire(
        &self,
        txn: TxnToken,
        target: LockTarget,
        mode: LockMode,
        images: &[Row],
        duration: LockDuration,
        timeout: Duration,
    ) -> Result<(), AcquireError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            let holders = Self::conflicting_holders(&inner, txn, &target, mode, images);
            if holders.is_empty() {
                Self::grant(&mut inner, txn, target, mode, duration, images);
                inner.waits.clear_waits(txn);
                return Ok(());
            }
            inner.waits.set_waits(txn, holders);
            if let Some(cycle) = inner.waits.find_cycle_from(txn) {
                if WaitsForGraph::choose_victim(&cycle) == Some(txn) {
                    inner.waits.clear_waits(txn);
                    return Err(AcquireError::Deadlock { cycle });
                }
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                inner.waits.clear_waits(txn);
                return Err(AcquireError::Timeout);
            }
            // Re-check periodically so deadlocks formed after we went to
            // sleep are still detected.
            let wait = (deadline - now).min(Duration::from_millis(10));
            self.released.wait_for(&mut inner, wait);
        }
    }

    /// Release every lock held by `txn` (commit or abort) and wake waiters.
    pub fn release_all(&self, txn: TxnToken) {
        let mut inner = self.inner.lock();
        inner.held.retain(|lock| lock.holder != txn);
        inner.waits.remove(txn);
        drop(inner);
        self.released.notify_all();
    }

    /// Release `txn`'s short-duration locks (called after each action at
    /// the levels whose profile uses short read locks).
    pub fn release_short(&self, txn: TxnToken) {
        let mut inner = self.inner.lock();
        inner
            .held
            .retain(|lock| !(lock.holder == txn && lock.duration == LockDuration::Short));
        drop(inner);
        self.released.notify_all();
    }

    /// Release `txn`'s cursor-duration locks (the cursor moved or closed).
    /// A lock on `keep` (the new cursor position) is retained.
    pub fn release_cursor(&self, txn: TxnToken, keep: Option<&LockTarget>) {
        let mut inner = self.inner.lock();
        inner.held.retain(|lock| {
            !(lock.holder == txn
                && lock.duration == LockDuration::Cursor
                && Some(&lock.target) != keep)
        });
        drop(inner);
        self.released.notify_all();
    }

    /// Release `txn`'s lock on `target` only if it is a cursor-duration
    /// lock (used when a cursor moves off a row: a lock that was meanwhile
    /// upgraded to long duration by an update must survive).
    pub fn release_cursor_target(&self, txn: TxnToken, target: &LockTarget) {
        let mut inner = self.inner.lock();
        inner.held.retain(|lock| {
            !(lock.holder == txn && &lock.target == target && lock.duration == LockDuration::Cursor)
        });
        drop(inner);
        self.released.notify_all();
    }

    /// Release one specific lock held by `txn`.
    pub fn release_target(&self, txn: TxnToken, target: &LockTarget) {
        let mut inner = self.inner.lock();
        inner
            .held
            .retain(|lock| !(lock.holder == txn && &lock.target == target));
        drop(inner);
        self.released.notify_all();
    }

    /// The transactions currently holding locks that would conflict with
    /// the given request.
    pub fn conflicts_with(
        &self,
        txn: TxnToken,
        target: &LockTarget,
        mode: LockMode,
        images: &[Row],
    ) -> Vec<TxnToken> {
        let inner = self.inner.lock();
        Self::conflicting_holders(&inner, txn, target, mode, images)
    }

    /// Number of locks currently held by `txn`.
    pub fn held_by(&self, txn: TxnToken) -> usize {
        self.inner
            .lock()
            .held
            .iter()
            .filter(|l| l.holder == txn)
            .count()
    }

    /// Total number of granted locks.
    pub fn total_held(&self) -> usize {
        self.inner.lock().held.len()
    }

    /// True if `txn` holds a lock on `target` with at least the given mode.
    pub fn holds(&self, txn: TxnToken, target: &LockTarget, mode: LockMode) -> bool {
        self.inner
            .lock()
            .held
            .iter()
            .any(|l| l.holder == txn && &l.target == target && l.mode.covers(mode))
    }
}

impl fmt::Debug for LockManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("LockManager")
            .field("held", &inner.held.len())
            .field("waiters", &inner.waits.waiter_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critique_storage::{Condition, RowId, RowPredicate};
    use std::sync::Arc;

    fn item(row: u64) -> LockTarget {
        LockTarget::item("t", RowId(row))
    }

    #[test]
    fn shared_locks_are_compatible() {
        let lm = LockManager::new();
        assert!(lm
            .try_acquire(
                TxnToken(1),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long
            )
            .is_granted());
        assert!(lm
            .try_acquire(
                TxnToken(2),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long
            )
            .is_granted());
        assert_eq!(lm.total_held(), 2);
    }

    #[test]
    fn exclusive_conflicts_with_everything() {
        let lm = LockManager::new();
        assert!(lm
            .try_acquire(
                TxnToken(1),
                item(0),
                LockMode::Exclusive,
                &[],
                LockDuration::Long
            )
            .is_granted());
        let read = lm.try_acquire(
            TxnToken(2),
            item(0),
            LockMode::Shared,
            &[],
            LockDuration::Long,
        );
        assert_eq!(read.blockers(), &[TxnToken(1)]);
        let write = lm.try_acquire(
            TxnToken(2),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        assert!(!write.is_granted());
        // Different item is fine.
        assert!(lm
            .try_acquire(
                TxnToken(2),
                item(1),
                LockMode::Exclusive,
                &[],
                LockDuration::Long
            )
            .is_granted());
    }

    #[test]
    fn reacquisition_and_upgrade_by_the_same_transaction() {
        let lm = LockManager::new();
        assert!(lm
            .try_acquire(
                TxnToken(1),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Short
            )
            .is_granted());
        assert!(lm
            .try_acquire(
                TxnToken(1),
                item(0),
                LockMode::Exclusive,
                &[],
                LockDuration::Long
            )
            .is_granted());
        assert_eq!(lm.held_by(TxnToken(1)), 1);
        assert!(lm.holds(TxnToken(1), &item(0), LockMode::Exclusive));
        // The upgraded lock now has long duration: release_short keeps it.
        lm.release_short(TxnToken(1));
        assert_eq!(lm.held_by(TxnToken(1)), 1);
    }

    #[test]
    fn upgrade_blocks_when_another_reader_holds_the_item() {
        let lm = LockManager::new();
        assert!(lm
            .try_acquire(
                TxnToken(1),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long
            )
            .is_granted());
        assert!(lm
            .try_acquire(
                TxnToken(2),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long
            )
            .is_granted());
        let upgrade = lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        assert_eq!(upgrade.blockers(), &[TxnToken(2)]);
    }

    #[test]
    fn release_all_unblocks_waiters() {
        let lm = LockManager::new();
        assert!(lm
            .try_acquire(
                TxnToken(1),
                item(0),
                LockMode::Exclusive,
                &[],
                LockDuration::Long
            )
            .is_granted());
        lm.release_all(TxnToken(1));
        assert_eq!(lm.total_held(), 0);
        assert!(lm
            .try_acquire(
                TxnToken(2),
                item(0),
                LockMode::Exclusive,
                &[],
                LockDuration::Long
            )
            .is_granted());
    }

    #[test]
    fn duration_specific_release() {
        let lm = LockManager::new();
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Shared,
            &[],
            LockDuration::Short,
        );
        lm.try_acquire(
            TxnToken(1),
            item(1),
            LockMode::Shared,
            &[],
            LockDuration::Cursor,
        );
        lm.try_acquire(
            TxnToken(1),
            item(2),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        assert_eq!(lm.held_by(TxnToken(1)), 3);
        lm.release_short(TxnToken(1));
        assert_eq!(lm.held_by(TxnToken(1)), 2);
        lm.release_cursor(TxnToken(1), None);
        assert_eq!(lm.held_by(TxnToken(1)), 1);
        lm.release_target(TxnToken(1), &item(2));
        assert_eq!(lm.held_by(TxnToken(1)), 0);
    }

    #[test]
    fn cursor_release_keeps_the_new_position() {
        let lm = LockManager::new();
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Shared,
            &[],
            LockDuration::Cursor,
        );
        lm.try_acquire(
            TxnToken(1),
            item(1),
            LockMode::Shared,
            &[],
            LockDuration::Cursor,
        );
        lm.release_cursor(TxnToken(1), Some(&item(1)));
        assert!(!lm.holds(TxnToken(1), &item(0), LockMode::Shared));
        assert!(lm.holds(TxnToken(1), &item(1), LockMode::Shared));
    }

    #[test]
    fn predicate_lock_blocks_matching_item_writes() {
        let lm = LockManager::new();
        let active = RowPredicate::new("employees", Condition::eq("active", true));
        assert!(lm
            .try_acquire(
                TxnToken(1),
                LockTarget::predicate(active),
                LockMode::Shared,
                &[],
                LockDuration::Long
            )
            .is_granted());

        // Inserting an active employee conflicts…
        let new_active = Row::new().with("active", true);
        let blocked = lm.try_acquire(
            TxnToken(2),
            LockTarget::item("employees", RowId(5)),
            LockMode::Exclusive,
            std::slice::from_ref(&new_active),
            LockDuration::Long,
        );
        assert_eq!(blocked.blockers(), &[TxnToken(1)]);

        // …but an inactive one does not.
        let inactive = Row::new().with("active", false);
        assert!(lm
            .try_acquire(
                TxnToken(2),
                LockTarget::item("employees", RowId(6)),
                LockMode::Exclusive,
                std::slice::from_ref(&inactive),
                LockDuration::Long,
            )
            .is_granted());
    }

    #[test]
    fn blocking_acquire_times_out() {
        let lm = LockManager::new();
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        let err = lm
            .acquire(
                TxnToken(2),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long,
                Duration::from_millis(30),
            )
            .unwrap_err();
        assert_eq!(err, AcquireError::Timeout);
    }

    #[test]
    fn blocking_acquire_succeeds_when_holder_releases() {
        let lm = Arc::new(LockManager::new());
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );

        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            lm2.acquire(
                TxnToken(2),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long,
                Duration::from_secs(5),
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        lm.release_all(TxnToken(1));
        assert_eq!(waiter.join().unwrap(), Ok(()));
        assert!(lm.holds(TxnToken(2), &item(0), LockMode::Shared));
    }

    #[test]
    fn deadlock_is_detected_and_the_victim_is_the_youngest() {
        let lm = Arc::new(LockManager::new());
        // T1 holds x, T2 holds y.
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        lm.try_acquire(
            TxnToken(2),
            item(1),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );

        // T1 waits for y on another thread; T2 then requests x → deadlock.
        let lm1 = Arc::clone(&lm);
        let t1 = std::thread::spawn(move || {
            lm1.acquire(
                TxnToken(1),
                item(1),
                LockMode::Exclusive,
                &[],
                LockDuration::Long,
                Duration::from_secs(5),
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        let result = lm.acquire(
            TxnToken(2),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
            Duration::from_secs(5),
        );
        // T2 (youngest) is the victim.
        assert!(matches!(result, Err(AcquireError::Deadlock { .. })));
        // After the victim aborts (releases its locks), T1 proceeds.
        lm.release_all(TxnToken(2));
        assert_eq!(t1.join().unwrap(), Ok(()));
    }
}
