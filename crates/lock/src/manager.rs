//! The lock manager: sharded item-lock tables plus per-table predicate
//! domains, with event-driven FIFO wait-queues for contended locks.
//!
//! The manager used to be a single `Mutex` around one linear `Vec` of
//! granted locks, which serialised every acquire/release in the workspace
//! and made the threaded benchmarks measure that mutex rather than the
//! locking disciplines.  The sharded layout splits the state three ways:
//!
//! * **item locks** live in `N` shards, each a mutex-protected hash table
//!   indexed by the `(table, row)` of the [`LockTarget`]; acquiring or
//!   releasing a row lock touches exactly one shard;
//! * **predicate locks** keep a **per-table domain** rather than living in
//!   any shard: a predicate covers phantom rows that do not exist yet and
//!   therefore have no shard, so the phantom-prevention check must see an
//!   insert no matter which shard its row hashes to.  The domain is an
//!   **ordered interval map** (`DomainMap`): predicates whose condition
//!   pins an integer interval on a column are keyed by that interval's
//!   lower bound, so a hinted predicate probe seeks its column's run in
//!   O(log n) and disjoint ranges never conflict, while whole-table
//!   fallbacks stay fully conservative.  An item grant on a table with a
//!   live predicate domain checks that domain under its mutex; a predicate
//!   grant scans every shard for conflicting item locks on its table;
//! * **blocked requests** park on the [`crate::waitqueue`] wait-set: one
//!   FIFO queue per contended lock, plus the waits-for graph, behind a
//!   single mutex that is touched only when a request actually blocks.
//!
//! Contended handoff is **event-driven**.  A blocked [`LockManager::acquire`]
//! enqueues a waiter handle and parks on the handle's own condvar; a
//! release sweeps the queues of the tables it touched in FIFO order and,
//! under [`GrantPolicy::DirectHandoff`], installs each compatible grant on
//! the waiter's behalf before waking it.  The sweep is **upgrade-aware**:
//! queued conversion requests (a transaction strengthening a lock it
//! already holds on the same target — S→X or U→X) are swept ahead of
//! fresh requests, so the sweep never grants a parked Shared request
//! while a conflicting upgrade on the same target is still waiting.
//! Without that rule a release can batch-grant Shared to several parked
//! readers whose subsequent Exclusive upgrades deadlock each other — and
//! every fresh Shared grant in between adds one more holder the pending
//! upgrade must outwait, which is what made the cascade self-sustaining.
//! (The rule governs the wait queue only: under the default
//! [`FairnessPolicy::Barging`] the uncontended fast path still barges past
//! queued requests when compatible with the *held* set;
//! [`FairnessPolicy::QueueFifo`] makes it defer to conflicting parked
//! waiters instead, and the contended-handoff benchmark grid records what
//! that strictness costs.  The update-mode discipline does not rely on
//! sweep order for its guarantee: a held U refuses new Shared at the
//! held-lock check itself, so barging readers are refused too.)
//! A parked waiter is woken only by
//! a delivered grant, a deadlock verdict, or its own deadline — there is no
//! re-poll timer anywhere in the wait path.  Deadlock detection is
//! incremental: waits-for edges are inserted the moment a request blocks
//! (and refreshed when a sweep visits the waiter), the cycle check runs on
//! insertion, and the request whose edges **close** a cycle is the victim.
//!
//! Grants stay atomic in the presence of sharding: a predicate acquisition
//! first publishes its table's domain and a provisional live-predicate
//! count (holding the domain mutex), then scans the shards in order; an
//! item acquisition that sees no live predicate locks for its table
//! re-checks the count *after* locking its shard and restarts through the
//! domain path if one appeared.  Whichever of the two ordered their
//! critical sections on the shard first is seen by the other, so a
//! conflicting pair can never both be granted — and a table with no
//! predicate history (or whose predicate locks have all been released)
//! costs item grants nothing beyond their own shard mutex.
//!
//! Lock order, outermost first: wait-set mutex → predicate domain mutex →
//! item shard mutex → waiter cell / transaction index partition.  Release
//! paths drop their shard/domain guards before taking the wait-set mutex.

use crate::mode::LockMode;
use crate::target::LockTarget;
use crate::waitqueue::{
    blockers_in_order, requests_conflict, sweep_scan, FairnessPolicy, GrantPolicy, QueueKey,
    QueuedRequest, Verdict, WaitInner, WaitSet, Waiter,
};
use critique_core::locking::LockDuration;
use critique_storage::{KeyInterval, Row, RowId, TxnToken};
use parking_lot::{Mutex, RwLock};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default number of item-lock shards — tied to the store's shard count so
/// `LockManager::new()` and `MvStore::new()` stay in sync with the single
/// `EngineConfig::shards` knob.
pub const DEFAULT_LOCK_SHARDS: usize = critique_storage::DEFAULT_SHARDS;

/// One granted lock.
#[derive(Clone, Debug)]
struct HeldLock {
    holder: TxnToken,
    target: LockTarget,
    mode: LockMode,
    duration: LockDuration,
    /// Row images associated with an item lock (the values read, or the
    /// before/after images of a write) — used to evaluate conflicts against
    /// predicate locks.
    images: Vec<Row>,
}

impl HeldLock {
    fn conflicts(
        &self,
        txn: TxnToken,
        target: &LockTarget,
        mode: LockMode,
        images: &[Row],
    ) -> bool {
        self.holder != txn
            && self.mode.conflicts_with(mode)
            && self.target.overlaps(&self.images, target, images)
    }
}

/// Result of a non-blocking acquisition attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock was granted (or was already held).
    Granted,
    /// The request conflicts with locks held by these transactions.
    WouldBlock {
        /// Current holders of conflicting locks.
        holders: Vec<TxnToken>,
    },
}

impl LockOutcome {
    /// True if the lock was granted.
    pub fn is_granted(&self) -> bool {
        matches!(self, LockOutcome::Granted)
    }

    /// The conflicting holders, if the request would block.
    pub fn blockers(&self) -> &[TxnToken] {
        match self {
            LockOutcome::Granted => &[],
            LockOutcome::WouldBlock { holders } => holders,
        }
    }
}

/// Errors from a blocking acquisition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AcquireError {
    /// The requester's wait closed a deadlock cycle and it must abort.
    /// The cycle starts and ends with the victim itself.
    Deadlock {
        /// The cycle that was detected.
        cycle: Vec<TxnToken>,
    },
    /// The lock could not be acquired within the timeout.
    Timeout,
}

impl fmt::Display for AcquireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcquireError::Deadlock { cycle } => {
                write!(
                    f,
                    "deadlock victim; cycle of {} transactions",
                    cycle.len().saturating_sub(1)
                )
            }
            AcquireError::Timeout => write!(f, "lock wait timeout"),
        }
    }
}

impl std::error::Error for AcquireError {}

/// Item locks whose `(table, row)` hashes into this shard, bucketed by that
/// hash.  Buckets keep the full target, so hash collisions merely share a
/// bucket — conflict tests always re-check [`LockTarget::overlaps`].
#[derive(Default)]
struct ShardInner {
    buckets: HashMap<u64, Vec<HeldLock>>,
}

/// Ordering key for the lower bound of a bounded interval entry:
/// unbounded-below intervals sort before every finite bound.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum LoKey {
    NegInf,
    At(i64),
}

impl LoKey {
    fn of(interval: &KeyInterval) -> LoKey {
        match interval.lo() {
            None => LoKey::NegInf,
            Some(lo) => LoKey::At(lo),
        }
    }
}

/// One table's predicate locks, stored as an ordered interval map.
///
/// A predicate whose condition pins an integer interval on some column
/// ([`critique_storage::RowPredicate::index_hint`]) lives in `bounded`,
/// keyed by `(column, interval lower bound, insertion seq)`: an overlap
/// probe for another hinted request seeks to the column's run in O(log n)
/// and walks only the entries whose lower bound does not exceed the
/// probe's upper bound, pre-filtering by stored-interval intersection
/// before the full conflict test.  Skipping an entry this way is sound
/// because disjoint extracted intervals on a shared constrained column
/// prove the predicates disjoint (`RowPredicate::may_overlap`).
///
/// Everything else — whole-table fallbacks, non-integer conditions,
/// probes for item targets — takes the conservative path: `unbounded`
/// entries and cross-column bounded entries are always given the full
/// conflict test, so conservatism is preserved, never lost.
#[derive(Default)]
struct DomainMap {
    bounded: BTreeMap<(String, LoKey, u64), (KeyInterval, HeldLock)>,
    unbounded: Vec<HeldLock>,
    next_seq: u64,
}

impl DomainMap {
    fn len(&self) -> usize {
        self.bounded.len() + self.unbounded.len()
    }

    fn iter(&self) -> impl Iterator<Item = &HeldLock> {
        self.bounded
            .values()
            .map(|(_, held)| held)
            .chain(self.unbounded.iter())
    }

    fn hint(target: &LockTarget) -> Option<(String, KeyInterval)> {
        match target {
            LockTarget::Predicate(p) => p.index_hint(),
            LockTarget::Item { .. } => None,
        }
    }

    /// Insert with the same merge semantics as the shard buckets: a lock
    /// by the same holder on the same target strengthens in place.
    fn insert(&mut self, lock: HeldLock) {
        let same = |held: &HeldLock| held.holder == lock.holder && held.target == lock.target;
        if let Some(existing) = self.unbounded.iter_mut().find(|held| same(held)) {
            merge_into(existing, lock);
            return;
        }
        if let Some((_, existing)) = self.bounded.values_mut().find(|(_, held)| same(held)) {
            merge_into(existing, lock);
            return;
        }
        match Self::hint(&lock.target) {
            Some((column, interval)) => {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.bounded
                    .insert((column, LoKey::of(&interval), seq), (interval, lock));
            }
            None => self.unbounded.push(lock),
        }
    }

    fn retain<F: FnMut(&HeldLock) -> bool>(&mut self, mut keep: F) {
        self.bounded.retain(|_, entry| keep(&entry.1));
        self.unbounded.retain(|held| keep(held));
    }

    /// Push the holders of entries conflicting with the request onto
    /// `out`.  Hinted predicate probes prune the same-column bounded run
    /// by interval intersection; everything else gets the full test.
    fn probe(
        &self,
        txn: TxnToken,
        target: &LockTarget,
        mode: LockMode,
        images: &[Row],
        out: &mut Vec<TxnToken>,
    ) {
        match Self::hint(target) {
            Some((column, interval)) if !interval.is_int_empty() => {
                let lo = (column.clone(), LoKey::NegInf, 0u64);
                let hi = (
                    column.clone(),
                    LoKey::At(interval.hi().unwrap_or(i64::MAX)),
                    u64::MAX,
                );
                for (stored, held) in self.bounded.range(lo..=hi).map(|(_, entry)| entry) {
                    if stored.overlaps(&interval) && held.conflicts(txn, target, mode, images) {
                        out.push(held.holder);
                    }
                }
                // Bounded entries hinted on *other* columns may still range
                // over this probe's column — full conflict test, no pruning.
                for ((col, _, _), (_, held)) in self.bounded.iter() {
                    if col != &column && held.conflicts(txn, target, mode, images) {
                        out.push(held.holder);
                    }
                }
                for held in &self.unbounded {
                    if held.conflicts(txn, target, mode, images) {
                        out.push(held.holder);
                    }
                }
            }
            _ => {
                for held in self.iter() {
                    if held.conflicts(txn, target, mode, images) {
                        out.push(held.holder);
                    }
                }
            }
        }
    }
}

/// The predicate locks on one table.  Domains are created on the first
/// predicate *grant attempt* for a table and never removed.
#[derive(Default)]
struct TableDomain {
    inner: Mutex<DomainMap>,
    /// Lock-free gate for the item fast path: the number of predicate
    /// locks currently held on the table, bumped *provisionally* (before
    /// the shard scan) during a grant attempt and restored to the list
    /// length afterwards.  Item grants that read 0 while holding their
    /// shard mutex may skip the domain mutex entirely — see the ordering
    /// argument in [`LockManager::attempt_item`].
    live: AtomicUsize,
}

/// Where one transaction's locks live: the shards holding its item locks
/// and the tables where it holds predicate locks.  Entries may be stale
/// after partial releases (a listed shard that no longer holds any of the
/// transaction's locks) — release paths treat the index as a superset.
#[derive(Clone, Default)]
struct TxnIndex {
    shards: BTreeSet<usize>,
    tables: BTreeSet<String>,
}

type IndexPartition = Mutex<BTreeMap<TxnToken, TxnIndex>>;

/// The lock manager: sharded item-lock tables, per-table predicate
/// domains, event-driven FIFO wait-queues, and an incrementally maintained
/// waits-for graph for deadlock detection.
pub struct LockManager {
    shards: Box<[Mutex<ShardInner>]>,
    domains: RwLock<BTreeMap<String, Arc<TableDomain>>>,
    /// Process-wide count of live predicate locks (sum of every domain's
    /// `live`), maintained with the same provisional bump-before-scan
    /// protocol.  Item grants load this once instead of touching the
    /// `domains` RwLock — with no predicate activity anywhere (the common
    /// case on the hot path) an item grant costs one uncontended atomic
    /// load plus its own shard mutex.
    live_predicates: AtomicUsize,
    index: Box<[IndexPartition]>,
    wait: WaitSet,
    policy: GrantPolicy,
    fairness: FairnessPolicy,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::with_shards(DEFAULT_LOCK_SHARDS)
    }
}

fn item_key(table: &str, row: RowId) -> u64 {
    let mut hasher = DefaultHasher::new();
    table.hash(&mut hasher);
    row.0.hash(&mut hasher);
    hasher.finish()
}

fn queue_key(target: &LockTarget) -> QueueKey {
    match target {
        LockTarget::Item { table, row } => QueueKey::Item {
            table: table.clone(),
            bucket: item_key(table, *row),
        },
        LockTarget::Predicate(p) => QueueKey::Predicate {
            table: p.table.clone(),
        },
    }
}

fn merge_into(existing: &mut HeldLock, lock: HeldLock) {
    existing.mode = existing.mode.max(lock.mode);
    existing.duration = existing.duration.max(lock.duration);
    existing.images.extend(lock.images);
}

fn merge_or_push(locks: &mut Vec<HeldLock>, lock: HeldLock) {
    if let Some(existing) = locks
        .iter_mut()
        .find(|held| held.holder == lock.holder && held.target == lock.target)
    {
        merge_into(existing, lock);
    } else {
        locks.push(lock);
    }
}

fn sorted_holders(mut holders: Vec<TxnToken>) -> Vec<TxnToken> {
    holders.sort();
    holders.dedup();
    holders
}

impl LockManager {
    /// An empty lock manager with [`DEFAULT_LOCK_SHARDS`] shards.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty lock manager with an explicit shard count (clamped to at
    /// least 1) and the default [`GrantPolicy`].
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        LockManager {
            shards: (0..shards)
                .map(|_| Mutex::new(ShardInner::default()))
                .collect(),
            domains: RwLock::new(BTreeMap::new()),
            live_predicates: AtomicUsize::new(0),
            index: (0..shards).map(|_| Mutex::new(BTreeMap::new())).collect(),
            wait: WaitSet::new(),
            policy: GrantPolicy::DirectHandoff,
            fairness: FairnessPolicy::default(),
        }
    }

    /// This manager with a different contended-grant policy.
    pub fn with_policy(mut self, policy: GrantPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The contended-grant policy in effect.
    pub fn policy(&self) -> GrantPolicy {
        self.policy
    }

    /// This manager with a different fast-path fairness policy.
    pub fn with_fairness(mut self, fairness: FairnessPolicy) -> Self {
        self.fairness = fairness;
        self
    }

    /// The fast-path fairness policy in effect.
    pub fn fairness(&self) -> FairnessPolicy {
        self.fairness
    }

    /// Number of item-lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_index(&self, key: u64) -> usize {
        (key % self.shards.len() as u64) as usize
    }

    fn domain(&self, table: &str) -> Option<Arc<TableDomain>> {
        self.domains.read().get(table).cloned()
    }

    fn domain_or_create(&self, table: &str) -> Arc<TableDomain> {
        if let Some(domain) = self.domain(table) {
            return domain;
        }
        let mut domains = self.domains.write();
        Arc::clone(domains.entry(table.to_string()).or_default())
    }

    fn index_partition(&self, txn: TxnToken) -> &IndexPartition {
        &self.index[(txn.0 % self.index.len() as u64) as usize]
    }

    fn register_shard(&self, txn: TxnToken, shard: usize) {
        self.index_partition(txn)
            .lock()
            .entry(txn)
            .or_default()
            .shards
            .insert(shard);
    }

    fn register_table(&self, txn: TxnToken, table: &str) {
        let mut partition = self.index_partition(txn).lock();
        let entry = partition.entry(txn).or_default();
        if !entry.tables.contains(table) {
            entry.tables.insert(table.to_string());
        }
    }

    // ------------------------------------------------------------------
    // Conflict checks and grants.
    // ------------------------------------------------------------------

    /// Attempt an item-lock grant.  `grant` selects between `try_acquire`
    /// (grant when conflict-free) and `conflicts_with` (check only).
    fn attempt_item(
        &self,
        txn: TxnToken,
        target: &LockTarget,
        mode: LockMode,
        images: &[Row],
        duration: LockDuration,
        grant: bool,
    ) -> Vec<TxnToken> {
        let LockTarget::Item { table, row } = target else {
            unreachable!("attempt_item called with a predicate target");
        };
        let key = item_key(table, *row);
        let shard = &self.shards[self.shard_index(key)];
        // The fast-path gate: the global live-predicate count first (one
        // uncontended atomic load, no `domains` RwLock touch), and only if
        // some predicate lock exists anywhere, this table's domain.
        let live_predicates = |manager: &Self| -> bool {
            manager.live_predicates.load(Ordering::SeqCst) > 0
                && manager
                    .domain(table)
                    .is_some_and(|d| d.live.load(Ordering::SeqCst) > 0)
        };
        loop {
            // Lock order: domain before shard, always.  When the table has
            // no *live* predicate locks we lock the shard alone, then
            // re-check under the shard mutex: a predicate grant attempt
            // publishes its provisional counts (global, then per-domain)
            // *before* scanning the shards, so whichever of the two
            // ordered its critical section on this shard first is visible
            // to the other — the conflicting pair can never both be
            // granted.
            if live_predicates(self) {
                // Re-fetch under the ordering-significant path: the domain
                // Arc must outlive its guard.
                let domain = self.domain(table).expect("domains are never removed");
                let domain_guard = domain.inner.lock();
                let mut shard_guard = shard.lock();
                return Self::check_and_grant_item(
                    &mut shard_guard,
                    Some(&domain_guard),
                    key,
                    txn,
                    target,
                    mode,
                    images,
                    duration,
                    grant,
                );
            }
            let mut shard_guard = shard.lock();
            if live_predicates(self) {
                drop(shard_guard);
                continue;
            }
            return Self::check_and_grant_item(
                &mut shard_guard,
                None,
                key,
                txn,
                target,
                mode,
                images,
                duration,
                grant,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_and_grant_item(
        shard: &mut ShardInner,
        predicates: Option<&DomainMap>,
        key: u64,
        txn: TxnToken,
        target: &LockTarget,
        mode: LockMode,
        images: &[Row],
        duration: LockDuration,
        grant: bool,
    ) -> Vec<TxnToken> {
        let mut holders: Vec<TxnToken> = Vec::new();
        if let Some(bucket) = shard.buckets.get(&key) {
            holders.extend(
                bucket
                    .iter()
                    .filter(|held| held.conflicts(txn, target, mode, images))
                    .map(|held| held.holder),
            );
        }
        if let Some(predicates) = predicates {
            predicates.probe(txn, target, mode, images, &mut holders);
        }
        let holders = sorted_holders(holders);
        if grant && holders.is_empty() {
            merge_or_push(
                shard.buckets.entry(key).or_default(),
                HeldLock {
                    holder: txn,
                    target: target.clone(),
                    mode,
                    duration,
                    images: images.to_vec(),
                },
            );
        }
        holders
    }

    /// Attempt a predicate-lock grant: conflicts come from the table's
    /// domain (other predicates) and from item locks on the table in every
    /// shard.  A grant holds the domain mutex across the whole scan with
    /// the provisional `live` count already published, so no item grant on
    /// this table can slip past the scan front.  A check-only call
    /// (`grant == false`) never creates the domain and never bumps `live`
    /// — it must not pessimise future item grants on the table.
    fn attempt_predicate(
        &self,
        txn: TxnToken,
        target: &LockTarget,
        mode: LockMode,
        images: &[Row],
        duration: LockDuration,
        grant: bool,
    ) -> Vec<TxnToken> {
        let table = target.table();
        let domain = if grant {
            Some(self.domain_or_create(table))
        } else {
            self.domain(table)
        };
        let mut domain_guard = domain.as_ref().map(|d| d.inner.lock());
        let before_len = domain_guard.as_ref().map(|g| g.len()).unwrap_or(0);
        if grant {
            let domain = domain.as_ref().expect("grant path created the domain");
            // Provisional: divert concurrent item fast paths to the domain
            // mutex before we start scanning the shards — the global gate
            // first, then the per-table one.
            self.live_predicates.fetch_add(1, Ordering::SeqCst);
            domain.live.store(before_len + 1, Ordering::SeqCst);
        }
        let mut holders: Vec<TxnToken> = Vec::new();
        if let Some(guard) = domain_guard.as_ref() {
            guard.probe(txn, target, mode, images, &mut holders);
        }
        for shard in self.shards.iter() {
            let shard_guard = shard.lock();
            holders.extend(
                shard_guard
                    .buckets
                    .values()
                    .flatten()
                    .filter(|held| held.conflicts(txn, target, mode, images))
                    .map(|held| held.holder),
            );
        }
        let holders = sorted_holders(holders);
        if grant {
            let domain = domain.as_ref().expect("grant path created the domain");
            let guard = domain_guard.as_mut().expect("guard taken above");
            if holders.is_empty() {
                guard.insert(HeldLock {
                    holder: txn,
                    target: target.clone(),
                    mode,
                    duration,
                    images: images.to_vec(),
                });
            }
            // Settle the gates to the actual count (the provisional +1
            // goes away on refusal or merge, stays — as the new entry — on
            // a fresh grant).
            domain.live.store(guard.len(), Ordering::SeqCst);
            if guard.len() == before_len {
                self.live_predicates.fetch_sub(1, Ordering::SeqCst);
            }
        }
        holders
    }

    fn attempt(
        &self,
        txn: TxnToken,
        target: &LockTarget,
        mode: LockMode,
        images: &[Row],
        duration: LockDuration,
        grant: bool,
    ) -> Vec<TxnToken> {
        match target {
            LockTarget::Item { table, row } => {
                if grant {
                    self.register_shard(txn, self.shard_index(item_key(table, *row)));
                }
                self.attempt_item(txn, target, mode, images, duration, grant)
            }
            LockTarget::Predicate(_) => {
                if grant {
                    self.register_table(txn, target.table());
                }
                self.attempt_predicate(txn, target, mode, images, duration, grant)
            }
        }
    }

    /// Attempt to acquire a lock without blocking.
    ///
    /// Always barges, whatever the [`FairnessPolicy`]: a non-blocking
    /// probe has no queue position for parked waiters to hold it behind.
    pub fn try_acquire(
        &self,
        txn: TxnToken,
        target: LockTarget,
        mode: LockMode,
        images: &[Row],
        duration: LockDuration,
    ) -> LockOutcome {
        let holders = self.attempt(txn, &target, mode, images, duration, true);
        if holders.is_empty() {
            LockOutcome::Granted
        } else {
            LockOutcome::WouldBlock { holders }
        }
    }

    /// Acquire a lock, blocking until it is granted, the wait closes a
    /// deadlock cycle (the requester is then the victim), or `timeout`
    /// expires.
    ///
    /// A blocked request enqueues on its lock's FIFO wait-queue and parks
    /// on its own handle.  It is woken only by a grant installed on its
    /// behalf (or a retry nudge under [`GrantPolicy::WakeAll`]), a
    /// deadlock verdict, or the deadline — never by a timer.
    pub fn acquire(
        &self,
        txn: TxnToken,
        target: LockTarget,
        mode: LockMode,
        images: &[Row],
        duration: LockDuration,
        timeout: Duration,
    ) -> Result<(), AcquireError> {
        let deadline = Instant::now() + timeout;
        // Uncontended fast path: under [`FairnessPolicy::Barging`] it never
        // touches the wait-set; under [`FairnessPolicy::QueueFifo`] it
        // first defers to conflicting parked waiters.
        if self.fast_path_grant(txn, &target, mode, images, duration) {
            return Ok(());
        }
        let key = queue_key(&target);
        let waiter = Arc::new(Waiter::new(
            txn,
            target.clone(),
            mode,
            images.to_vec(),
            duration,
        ));
        self.wait.enqueue(key.clone(), Arc::clone(&waiter));
        loop {
            let mut wait = self.wait.lock();
            // A sweep may have decided our request while we were off the
            // mutex (it dequeued us and cleared our edges before
            // delivering).
            let (epoch, verdict) = waiter.snapshot();
            match verdict {
                Verdict::Granted => return Ok(()),
                Verdict::Victim(cycle) => return Err(AcquireError::Deadlock { cycle }),
                Verdict::Waiting => {}
            }
            // Re-attempt with the queue entry published and the wait-set
            // mutex held: a release between our last attempt and this one
            // has either already granted us (caught above) or is about to
            // sweep (serialised behind this mutex) — a wakeup can never
            // fall between the conflict check and the park.  Under
            // [`FairnessPolicy::QueueFifo`] the retry may only self-grant
            // when the effective queue order holds nobody ahead of us;
            // otherwise it runs check-only, so a compatible retry cannot
            // overtake an earlier conflicting waiter here either.
            let queue_blockers = self.queue_blockers(&wait, &key, txn);
            let grant_ok = self.fairness != FairnessPolicy::QueueFifo || queue_blockers.is_empty();
            let holders = self.attempt(txn, &target, mode, images, duration, grant_ok);
            if grant_ok && holders.is_empty() {
                self.retire_waiter(&mut wait, &key, txn);
                return Ok(());
            }
            // Insert this request's waits-for edges: the conflicting
            // holders plus any queued waiter the effective order holds us
            // behind (earlier arrivals, and conversions even if they
            // arrived later).
            let mut blockers = holders;
            blockers.extend(queue_blockers);
            wait.graph.set_waits(txn, blockers);
            // Detect-on-insert: if these edges close a cycle, this request
            // is the cycle-closing one and therefore the victim.  Edges of
            // other parked waiters may predate grants that barged past
            // them, so when the quick check finds nothing and other
            // waiters exist, refresh the whole (small, bounded by the
            // thread count) waiter population and look again — with every
            // edge fresh at insertion time, a cycle is found the moment
            // its last wait begins.
            let mut cycle = wait.graph.find_cycle_from(txn);
            if cycle.is_none() && wait.waiter_count() > 1 {
                self.refresh_waiter_edges(&mut wait);
                cycle = wait.graph.find_cycle_from(txn);
            }
            if let Some(cycle) = cycle {
                self.retire_and_resweep(&mut wait, &key, txn, &target);
                return Err(AcquireError::Deadlock { cycle });
            }
            if Instant::now() >= deadline {
                self.retire_and_resweep(&mut wait, &key, txn, &target);
                return Err(AcquireError::Timeout);
            }
            drop(wait);
            waiter.park(epoch, deadline);
        }
    }

    /// The uncontended fast path of [`LockManager::acquire`].
    ///
    /// Under [`FairnessPolicy::Barging`] this is a plain granting attempt:
    /// compatible with the *held* set means granted, conflicting parked
    /// waiters notwithstanding.  Under [`FairnessPolicy::QueueFifo`] a
    /// request that conflicts with any waiting queued request on its lock
    /// refuses the shortcut and falls into the enqueue path behind it.
    /// The queue check runs under the wait-set mutex (taken *before* the
    /// shard/domain mutexes the attempt needs — the documented lock
    /// order), so a parked waiter observed here cannot be concurrently
    /// granted-and-retired in a way the attempt would miss; the cheap
    /// `has_waiters` gate keeps the truly uncontended case off that mutex.
    /// ([`LockManager::try_acquire`] always barges: a non-blocking probe
    /// has no queue position to respect.)
    fn fast_path_grant(
        &self,
        txn: TxnToken,
        target: &LockTarget,
        mode: LockMode,
        images: &[Row],
        duration: LockDuration,
    ) -> bool {
        if self.fairness == FairnessPolicy::QueueFifo && self.wait.has_waiters() {
            let wait = self.wait.lock();
            let own = QueuedRequest {
                txn,
                target: target.clone(),
                mode,
                images: images.to_vec(),
            };
            let contested = wait
                .queue(&queue_key(target))
                .iter()
                .any(|w| w.txn != txn && w.is_waiting() && requests_conflict(&w.request(), &own));
            if contested {
                return false;
            }
            return self
                .attempt(txn, target, mode, images, duration, true)
                .is_empty();
        }
        self.attempt(txn, target, mode, images, duration, true)
            .is_empty()
    }

    /// The upgrade-aware effective order of `key`'s queue: conversion
    /// requests first (FIFO among themselves), then fresh requests (FIFO).
    /// This instantiates [`crate::waitqueue::conversion_first`] against
    /// the real lock tables; both the release sweep and the waits-for
    /// edges use it, so the *sweep* never grants a parked Shared request —
    /// and never considers it unblocked — while a conflicting queued
    /// upgrade on the same target is still waiting.  (Under the default
    /// [`FairnessPolicy::Barging`] the uncontended fast path still barges
    /// past the queue when compatible with the held set;
    /// [`FairnessPolicy::QueueFifo`] closes that gap.  Under the U-lock
    /// discipline barging is harmless either way, because a held U
    /// already refuses new Shared grants at the held-lock check itself.)
    fn ordered_queue(&self, wait: &WaitInner, key: &QueueKey) -> Vec<Arc<Waiter>> {
        let queue = wait.queue(key);
        if queue.is_empty() {
            return queue;
        }
        // A waiter is converting when its transaction already holds a lock
        // on exactly its own target.  Every target queued under an `Item`
        // key hashes to the key's bucket, so all their granted locks live
        // in one shard bucket; every target under a `Predicate` key lives
        // in the table's domain — either way one guard classifies the
        // whole queue.
        let converting: Vec<bool> = match key {
            QueueKey::Item { bucket, .. } => {
                let guard = self.shards[self.shard_index(*bucket)].lock();
                let held = guard.buckets.get(bucket).map(Vec::as_slice).unwrap_or(&[]);
                queue
                    .iter()
                    .map(|w| {
                        held.iter()
                            .any(|h| h.holder == w.txn && h.target == w.target)
                    })
                    .collect()
            }
            QueueKey::Predicate { table } => match self.domain(table) {
                Some(domain) => {
                    let guard = domain.inner.lock();
                    queue
                        .iter()
                        .map(|w| {
                            guard
                                .iter()
                                .any(|h| h.holder == w.txn && h.target == w.target)
                        })
                        .collect()
                }
                None => vec![false; queue.len()],
            },
        };
        let mut order: Vec<Arc<Waiter>> = Vec::with_capacity(queue.len());
        order.extend(
            queue
                .iter()
                .zip(&converting)
                .filter(|(_, &c)| c)
                .map(|(w, _)| Arc::clone(w)),
        );
        order.extend(
            queue
                .iter()
                .zip(&converting)
                .filter(|(_, &c)| !c)
                .map(|(w, _)| Arc::clone(w)),
        );
        order
    }

    /// The transactions whose *queued* requests precede `txn`'s in the
    /// effective order and conflict with it — they belong in `txn`'s
    /// waits-for edges alongside the current holders.
    fn queue_blockers(&self, wait: &WaitInner, key: &QueueKey, txn: TxnToken) -> Vec<TxnToken> {
        blockers_in_order(&self.ordered_queue(wait, key), txn)
    }

    /// Remove `txn`'s waiter and its waits-for edges (grant found on
    /// retry, timeout, or victimhood) under the wait-set guard.
    fn retire_waiter(&self, wait: &mut WaitInner, key: &QueueKey, txn: TxnToken) {
        self.wait.dequeue(wait, key, txn);
        wait.graph.clear_waits(txn);
    }

    /// Retire a waiter whose *request* is abandoned (timeout or deadlock
    /// victim), then re-sweep its queue: a follower may have been FIFO
    /// held-back only by the vanished request, and with no poll it would
    /// otherwise sleep until its own deadline.
    fn retire_and_resweep(
        &self,
        wait: &mut WaitInner,
        key: &QueueKey,
        txn: TxnToken,
        target: &LockTarget,
    ) {
        self.retire_waiter(wait, key, txn);
        let mut tables = BTreeSet::new();
        tables.insert(target.table().to_string());
        self.sweep_locked(wait, &tables);
    }

    /// Recompute the waits-for edges of every parked waiter from the real
    /// lock state (check-only attempts).  Called before a cycle verdict is
    /// trusted and by sweeps, so the incremental graph can never hold a
    /// stale edge long enough to fabricate or hide a deadlock.
    fn refresh_waiter_edges(&self, wait: &mut WaitInner) {
        // The effective order of a queue is the same for every waiter on
        // it; derive it once per key, not once per waiter.
        let mut orders: BTreeMap<QueueKey, Vec<Arc<Waiter>>> = BTreeMap::new();
        for waiter in wait.all_waiters() {
            if !waiter.is_waiting() {
                continue;
            }
            let mut blockers = self.attempt(
                waiter.txn,
                &waiter.target,
                waiter.mode,
                &waiter.images,
                waiter.duration,
                false,
            );
            let key = queue_key(&waiter.target);
            if !orders.contains_key(&key) {
                let order = self.ordered_queue(wait, &key);
                orders.insert(key.clone(), order);
            }
            blockers.extend(blockers_in_order(&orders[&key], waiter.txn));
            wait.graph.set_waits(waiter.txn, blockers);
        }
    }

    /// Hand released locks to waiters: sweep every queue on the touched
    /// tables in FIFO order.  Under [`GrantPolicy::DirectHandoff`] each
    /// eligible request is granted here, on the releasing thread, and the
    /// waiter is woken with the lock already installed; under
    /// [`GrantPolicy::WakeAll`] every waiter on the touched tables is
    /// nudged to race for the locks itself.
    fn sweep(&self, tables: &BTreeSet<String>) {
        if !self.wait.has_waiters() {
            return;
        }
        let mut wait = self.wait.lock();
        self.sweep_locked(&mut wait, tables);
    }

    /// [`LockManager::sweep`] under an already-held wait-set guard.
    fn sweep_locked(&self, wait: &mut WaitInner, tables: &BTreeSet<String>) {
        let keys = wait.keys_for_tables(tables.iter());
        for key in keys {
            // Upgrade-aware effective order: conversions sweep first, so a
            // queued S→X or U→X upgrade is offered the lock before any
            // fresh Shared request that would otherwise pile onto the held
            // set it must outwait (the PR 4 batch-grant cascade).
            let queue = self.ordered_queue(wait, &key);
            match self.policy {
                GrantPolicy::WakeAll => {
                    for waiter in &queue {
                        waiter.nudge();
                    }
                }
                GrantPolicy::DirectHandoff => {
                    let requests: Vec<_> = queue.iter().map(|w| w.request()).collect();
                    sweep_scan(
                        queue.len(),
                        |j, i| {
                            queue[j].is_waiting() && requests_conflict(&requests[j], &requests[i])
                        },
                        |i| {
                            let w = &queue[i];
                            if !w.is_waiting() {
                                return false;
                            }
                            let holders =
                                self.attempt(w.txn, &w.target, w.mode, &w.images, w.duration, true);
                            if holders.is_empty() {
                                self.retire_waiter(wait, &key, w.txn);
                                w.deliver(Verdict::Granted);
                                true
                            } else {
                                // Still blocked: refresh this waiter's
                                // edges; a refreshed edge set can close a
                                // cycle (detect-on-insert), in which case
                                // this pending request is the closer and
                                // the victim.
                                let mut blockers = holders;
                                // The sweep's own ordered snapshot is
                                // current (granted waiters are filtered
                                // by `is_waiting`), so the edges come
                                // from it instead of re-deriving the
                                // order per waiter.
                                blockers.extend(blockers_in_order(&queue, w.txn));
                                wait.graph.set_waits(w.txn, blockers);
                                if let Some(cycle) = wait.graph.find_cycle_from(w.txn) {
                                    self.retire_waiter(wait, &key, w.txn);
                                    w.deliver(Verdict::Victim(cycle));
                                }
                                false
                            }
                        },
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Releases.
    // ------------------------------------------------------------------

    /// Remove the locks of `txn` matching `remove` from every place the
    /// index says the transaction holds locks, then hand the freed locks
    /// to waiters via [`LockManager::sweep`].
    fn release_where<F>(&self, txn: TxnToken, take_index: bool, mut remove: F)
    where
        F: FnMut(&HeldLock) -> bool,
    {
        let index = {
            let mut partition = self.index_partition(txn).lock();
            if take_index {
                partition.remove(&txn)
            } else {
                // Clone the superset; stale entries cost one empty scan.
                partition.get(&txn).cloned()
            }
        };
        let Some(index) = index else {
            return;
        };
        // Tables a removed lock ranged over: conflicts never cross tables,
        // so these name exactly the wait-queues the sweep must visit.
        let mut touched_tables: BTreeSet<String> = BTreeSet::new();
        for &shard_idx in &index.shards {
            let mut guard = self.shards[shard_idx].lock();
            guard.buckets.retain(|_, bucket| {
                bucket.retain(|held| {
                    let gone = held.holder == txn && remove(held);
                    if gone {
                        touched_tables.insert(held.target.table().to_string());
                    }
                    !gone
                });
                !bucket.is_empty()
            });
        }
        for table in &index.tables {
            if let Some(domain) = self.domain(table) {
                let removed = {
                    let mut guard = domain.inner.lock();
                    let before = guard.len();
                    guard.retain(|held| !(held.holder == txn && remove(held)));
                    // Settle the item fast-path gates to the surviving
                    // count (under the domain mutex, like every other
                    // `live` mutation).
                    domain.live.store(guard.len(), Ordering::SeqCst);
                    before - guard.len()
                };
                if removed > 0 {
                    self.live_predicates.fetch_sub(removed, Ordering::SeqCst);
                    touched_tables.insert(table.clone());
                }
            }
        }
        // Event-driven handoff: grants are installed for (or raced by) the
        // waiters parked on the touched tables.  No condvar broadcast, no
        // waiter-side re-scan.  The waits-for edges of every visited
        // still-blocked waiter are re-derived from the real lock state in
        // the same pass, which replaces the old release-time stale-edge
        // pruning: an edge set may lag reality between refreshes (a grant
        // can barge in while a waiter is parked), but every cycle verdict
        // is preceded by a full refresh, so lagging edges can neither
        // fabricate nor hide a deadlock.
        if !touched_tables.is_empty() {
            self.sweep(&touched_tables);
        }
    }

    /// Release every lock held by `txn` (commit or abort) and hand them to
    /// waiters.
    pub fn release_all(&self, txn: TxnToken) {
        self.release_where(txn, true, |_| true);
        if self.wait.has_waiters() {
            // Retire the transaction's node outright; the sweep above
            // already re-pointed any waiter that was blocked on it.
            self.wait.lock().graph.remove(txn);
        }
    }

    /// Release `txn`'s short-duration locks (called after each action at
    /// the levels whose profile uses short read locks).
    pub fn release_short(&self, txn: TxnToken) {
        self.release_where(txn, false, |held| held.duration == LockDuration::Short);
    }

    /// Release `txn`'s cursor-duration locks (the cursor moved or closed).
    /// A lock on `keep` (the new cursor position) is retained.
    pub fn release_cursor(&self, txn: TxnToken, keep: Option<&LockTarget>) {
        self.release_where(txn, false, |held| {
            held.duration == LockDuration::Cursor && Some(&held.target) != keep
        });
    }

    /// Release `txn`'s lock on `target` only if it is a cursor-duration
    /// lock (used when a cursor moves off a row: a lock that was meanwhile
    /// upgraded to long duration by an update must survive).
    pub fn release_cursor_target(&self, txn: TxnToken, target: &LockTarget) {
        self.release_where(txn, false, |held| {
            &held.target == target && held.duration == LockDuration::Cursor
        });
    }

    /// Release one specific lock held by `txn`.
    pub fn release_target(&self, txn: TxnToken, target: &LockTarget) {
        self.release_where(txn, false, |held| &held.target == target);
    }

    // ------------------------------------------------------------------
    // Queries.
    // ------------------------------------------------------------------

    /// The transactions currently holding locks that would conflict with
    /// the given request.
    pub fn conflicts_with(
        &self,
        txn: TxnToken,
        target: &LockTarget,
        mode: LockMode,
        images: &[Row],
    ) -> Vec<TxnToken> {
        self.attempt(txn, target, mode, images, LockDuration::Short, false)
    }

    /// Number of requests currently parked on wait-queues.
    pub fn queued_waiters(&self) -> usize {
        if !self.wait.has_waiters() {
            return 0;
        }
        self.wait.lock().waiter_count()
    }

    /// Visit every lock currently held by `txn`.
    fn for_each_held<F>(&self, txn: TxnToken, mut visit: F)
    where
        F: FnMut(&HeldLock),
    {
        let index = {
            let partition = self.index_partition(txn).lock();
            partition.get(&txn).cloned()
        };
        let Some(index) = index else {
            return;
        };
        for &shard_idx in &index.shards {
            let guard = self.shards[shard_idx].lock();
            for held in guard.buckets.values().flatten() {
                if held.holder == txn {
                    visit(held);
                }
            }
        }
        for table in &index.tables {
            if let Some(domain) = self.domain(table) {
                let guard = domain.inner.lock();
                for held in guard.iter() {
                    if held.holder == txn {
                        visit(held);
                    }
                }
            }
        }
    }

    /// Number of locks currently held by `txn`.
    pub fn held_by(&self, txn: TxnToken) -> usize {
        let mut count = 0;
        self.for_each_held(txn, |_| count += 1);
        count
    }

    /// Total number of granted locks.
    pub fn total_held(&self) -> usize {
        let items: usize = self
            .shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .buckets
                    .values()
                    .map(|bucket| bucket.len())
                    .sum::<usize>()
            })
            .sum();
        let predicates: usize = self
            .domains
            .read()
            .values()
            .map(|domain| domain.inner.lock().len())
            .sum();
        items + predicates
    }

    /// True if `txn` holds a lock on `target` with at least the given mode.
    pub fn holds(&self, txn: TxnToken, target: &LockTarget, mode: LockMode) -> bool {
        let mut found = false;
        self.for_each_held(txn, |held| {
            found |= &held.target == target && held.mode.covers(mode);
        });
        found
    }
}

impl fmt::Debug for LockManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockManager")
            .field("shards", &self.shards.len())
            .field("policy", &self.policy)
            .field("held", &self.total_held())
            .field("waiters", &self.queued_waiters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critique_storage::{Condition, RowId, RowPredicate};
    use std::sync::Arc;

    fn item(row: u64) -> LockTarget {
        LockTarget::item("t", RowId(row))
    }

    #[test]
    fn shared_locks_are_compatible() {
        let lm = LockManager::new();
        assert!(lm
            .try_acquire(
                TxnToken(1),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long
            )
            .is_granted());
        assert!(lm
            .try_acquire(
                TxnToken(2),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long
            )
            .is_granted());
        assert_eq!(lm.total_held(), 2);
    }

    #[test]
    fn exclusive_conflicts_with_everything() {
        let lm = LockManager::new();
        assert!(lm
            .try_acquire(
                TxnToken(1),
                item(0),
                LockMode::Exclusive,
                &[],
                LockDuration::Long
            )
            .is_granted());
        let read = lm.try_acquire(
            TxnToken(2),
            item(0),
            LockMode::Shared,
            &[],
            LockDuration::Long,
        );
        assert_eq!(read.blockers(), &[TxnToken(1)]);
        let write = lm.try_acquire(
            TxnToken(2),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        assert!(!write.is_granted());
        // Different item is fine.
        assert!(lm
            .try_acquire(
                TxnToken(2),
                item(1),
                LockMode::Exclusive,
                &[],
                LockDuration::Long
            )
            .is_granted());
    }

    #[test]
    fn reacquisition_and_upgrade_by_the_same_transaction() {
        let lm = LockManager::new();
        assert!(lm
            .try_acquire(
                TxnToken(1),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Short
            )
            .is_granted());
        assert!(lm
            .try_acquire(
                TxnToken(1),
                item(0),
                LockMode::Exclusive,
                &[],
                LockDuration::Long
            )
            .is_granted());
        assert_eq!(lm.held_by(TxnToken(1)), 1);
        assert!(lm.holds(TxnToken(1), &item(0), LockMode::Exclusive));
        // The upgraded lock now has long duration: release_short keeps it.
        lm.release_short(TxnToken(1));
        assert_eq!(lm.held_by(TxnToken(1)), 1);
    }

    #[test]
    fn upgrade_blocks_when_another_reader_holds_the_item() {
        let lm = LockManager::new();
        assert!(lm
            .try_acquire(
                TxnToken(1),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long
            )
            .is_granted());
        assert!(lm
            .try_acquire(
                TxnToken(2),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long
            )
            .is_granted());
        let upgrade = lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        assert_eq!(upgrade.blockers(), &[TxnToken(2)]);
    }

    #[test]
    fn release_all_unblocks_waiters() {
        let lm = LockManager::new();
        assert!(lm
            .try_acquire(
                TxnToken(1),
                item(0),
                LockMode::Exclusive,
                &[],
                LockDuration::Long
            )
            .is_granted());
        lm.release_all(TxnToken(1));
        assert_eq!(lm.total_held(), 0);
        assert!(lm
            .try_acquire(
                TxnToken(2),
                item(0),
                LockMode::Exclusive,
                &[],
                LockDuration::Long
            )
            .is_granted());
    }

    #[test]
    fn duration_specific_release() {
        let lm = LockManager::new();
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Shared,
            &[],
            LockDuration::Short,
        );
        lm.try_acquire(
            TxnToken(1),
            item(1),
            LockMode::Shared,
            &[],
            LockDuration::Cursor,
        );
        lm.try_acquire(
            TxnToken(1),
            item(2),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        assert_eq!(lm.held_by(TxnToken(1)), 3);
        lm.release_short(TxnToken(1));
        assert_eq!(lm.held_by(TxnToken(1)), 2);
        lm.release_cursor(TxnToken(1), None);
        assert_eq!(lm.held_by(TxnToken(1)), 1);
        lm.release_target(TxnToken(1), &item(2));
        assert_eq!(lm.held_by(TxnToken(1)), 0);
    }

    #[test]
    fn cursor_release_keeps_the_new_position() {
        let lm = LockManager::new();
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Shared,
            &[],
            LockDuration::Cursor,
        );
        lm.try_acquire(
            TxnToken(1),
            item(1),
            LockMode::Shared,
            &[],
            LockDuration::Cursor,
        );
        lm.release_cursor(TxnToken(1), Some(&item(1)));
        assert!(!lm.holds(TxnToken(1), &item(0), LockMode::Shared));
        assert!(lm.holds(TxnToken(1), &item(1), LockMode::Shared));
    }

    #[test]
    fn predicate_lock_blocks_matching_item_writes() {
        let lm = LockManager::new();
        let active = RowPredicate::new("employees", Condition::eq("active", true));
        assert!(lm
            .try_acquire(
                TxnToken(1),
                LockTarget::predicate(active),
                LockMode::Shared,
                &[],
                LockDuration::Long
            )
            .is_granted());

        // Inserting an active employee conflicts…
        let new_active = Row::new().with("active", true);
        let blocked = lm.try_acquire(
            TxnToken(2),
            LockTarget::item("employees", RowId(5)),
            LockMode::Exclusive,
            std::slice::from_ref(&new_active),
            LockDuration::Long,
        );
        assert_eq!(blocked.blockers(), &[TxnToken(1)]);

        // …but an inactive one does not.
        let inactive = Row::new().with("active", false);
        assert!(lm
            .try_acquire(
                TxnToken(2),
                LockTarget::item("employees", RowId(6)),
                LockMode::Exclusive,
                std::slice::from_ref(&inactive),
                LockDuration::Long,
            )
            .is_granted());
    }

    #[test]
    fn item_lock_blocks_matching_predicate_no_matter_the_shard() {
        // The phantom-prevention direction across shards: an exclusive item
        // lock (a write in flight) must block a predicate read even though
        // the predicate lives in the per-table domain and the item lock in
        // whatever shard its row hashed to.
        for shards in [1, 3, 16] {
            let lm = LockManager::with_shards(shards);
            let matching = Row::new().with("active", true);
            for row in 0..8 {
                assert!(lm
                    .try_acquire(
                        TxnToken(1),
                        LockTarget::item("employees", RowId(row)),
                        LockMode::Exclusive,
                        std::slice::from_ref(&matching),
                        LockDuration::Long,
                    )
                    .is_granted());
            }
            let active = RowPredicate::new("employees", Condition::eq("active", true));
            let blocked = lm.try_acquire(
                TxnToken(2),
                LockTarget::predicate(active),
                LockMode::Shared,
                &[],
                LockDuration::Long,
            );
            assert_eq!(blocked.blockers(), &[TxnToken(1)], "shards={shards}");
        }
    }

    #[test]
    fn disjoint_range_predicate_locks_grant_concurrently() {
        use critique_storage::Comparison;
        let lm = LockManager::new();
        let low = RowPredicate::new("tasks", Condition::compare("hours", Comparison::Lt, 5));
        let high = RowPredicate::new("tasks", Condition::compare("hours", Comparison::Gt, 100));
        // Both writers lock their own range exclusively: disjoint intervals
        // on the same table must not block each other.
        assert!(lm
            .try_acquire(
                TxnToken(1),
                LockTarget::predicate(low),
                LockMode::Exclusive,
                &[],
                LockDuration::Long
            )
            .is_granted());
        assert!(lm
            .try_acquire(
                TxnToken(2),
                LockTarget::predicate(high),
                LockMode::Exclusive,
                &[],
                LockDuration::Long
            )
            .is_granted());
        // An overlapping range still conflicts with both.
        let overlap = RowPredicate::new("tasks", Condition::compare("hours", Comparison::Ge, 0));
        let blocked = lm.try_acquire(
            TxnToken(3),
            LockTarget::predicate(overlap),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        let mut blockers = blocked.blockers().to_vec();
        blockers.sort_unstable();
        assert_eq!(blockers, vec![TxnToken(1), TxnToken(2)]);
        // And the conservative whole-table fallback conflicts too.
        let whole = lm.try_acquire(
            TxnToken(4),
            LockTarget::predicate(RowPredicate::whole_table("tasks")),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        assert!(!whole.is_granted());
        lm.release_all(TxnToken(1));
        lm.release_all(TxnToken(2));
        assert!(lm
            .try_acquire(
                TxnToken(4),
                LockTarget::predicate(RowPredicate::whole_table("tasks")),
                LockMode::Exclusive,
                &[],
                LockDuration::Long,
            )
            .is_granted());
    }

    #[test]
    fn bounded_predicate_lock_still_blocks_matching_item_writes() {
        use critique_storage::Comparison;
        let lm = LockManager::new();
        let low = RowPredicate::new("tasks", Condition::compare("hours", Comparison::Lt, 5));
        assert!(lm
            .try_acquire(
                TxnToken(1),
                LockTarget::predicate(low),
                LockMode::Exclusive,
                &[],
                LockDuration::Long
            )
            .is_granted());
        // A write whose image falls inside the locked interval conflicts…
        let inside = Row::new().with("hours", 3);
        let blocked = lm.try_acquire(
            TxnToken(2),
            LockTarget::item("tasks", RowId(1)),
            LockMode::Exclusive,
            std::slice::from_ref(&inside),
            LockDuration::Long,
        );
        assert_eq!(blocked.blockers(), &[TxnToken(1)]);
        // …one outside the interval does not.
        let outside = Row::new().with("hours", 50);
        assert!(lm
            .try_acquire(
                TxnToken(2),
                LockTarget::item("tasks", RowId(2)),
                LockMode::Exclusive,
                std::slice::from_ref(&outside),
                LockDuration::Long,
            )
            .is_granted());
    }

    #[test]
    fn blocking_acquire_times_out() {
        let lm = LockManager::new();
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        let err = lm
            .acquire(
                TxnToken(2),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long,
                Duration::from_millis(30),
            )
            .unwrap_err();
        assert_eq!(err, AcquireError::Timeout);
        // The timed-out waiter left no queue entry or graph node behind.
        assert_eq!(lm.queued_waiters(), 0);
    }

    #[test]
    fn blocking_acquire_succeeds_when_holder_releases() {
        let lm = Arc::new(LockManager::new());
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );

        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            lm2.acquire(
                TxnToken(2),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long,
                Duration::from_secs(5),
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        lm.release_all(TxnToken(1));
        assert_eq!(waiter.join().unwrap(), Ok(()));
        assert!(lm.holds(TxnToken(2), &item(0), LockMode::Shared));
        assert_eq!(lm.queued_waiters(), 0);
    }

    #[test]
    fn wake_all_policy_also_completes_handoffs() {
        let lm = Arc::new(LockManager::new().with_policy(GrantPolicy::WakeAll));
        assert_eq!(lm.policy(), GrantPolicy::WakeAll);
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            lm2.acquire(
                TxnToken(2),
                item(0),
                LockMode::Exclusive,
                &[],
                LockDuration::Long,
                Duration::from_secs(5),
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        lm.release_all(TxnToken(1));
        assert_eq!(waiter.join().unwrap(), Ok(()));
        assert!(lm.holds(TxnToken(2), &item(0), LockMode::Exclusive));
    }

    #[test]
    fn direct_handoff_grants_waiters_in_fifo_order() {
        let lm = Arc::new(LockManager::new());
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        let order = Arc::new(Mutex::new(Vec::<u64>::new()));
        let mut handles = Vec::new();
        // Three exclusive waiters arrive in a staggered, known order.
        for t in [10u64, 11, 12] {
            let lm2 = Arc::clone(&lm);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                lm2.acquire(
                    TxnToken(t),
                    item(0),
                    LockMode::Exclusive,
                    &[],
                    LockDuration::Long,
                    Duration::from_secs(10),
                )
                .unwrap();
                order.lock().push(t);
                lm2.release_all(TxnToken(t));
            }));
            // Wait until the waiter is actually parked before starting the
            // next one, so arrival order is deterministic.
            while lm.queued_waiters() < (t - 9) as usize {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        lm.release_all(TxnToken(1));
        for handle in handles {
            handle.join().unwrap();
        }
        // Each release hands the lock to the longest-waiting request.
        assert_eq!(*order.lock(), vec![10, 11, 12]);
        assert_eq!(lm.queued_waiters(), 0);
        assert_eq!(lm.total_held(), 0);
    }

    #[test]
    fn follower_is_reswept_when_a_held_back_waiter_times_out() {
        // Holder keeps S(x).  W1 requests X(x) with a short deadline and
        // times out; W2 (S(x), compatible with the holder) was FIFO
        // held-back behind W1 and must be granted the moment W1's request
        // vanishes — not at W2's own deadline.
        let lm = Arc::new(LockManager::new());
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Shared,
            &[],
            LockDuration::Long,
        );
        let lm1 = Arc::clone(&lm);
        let w1 = std::thread::spawn(move || {
            lm1.acquire(
                TxnToken(2),
                item(0),
                LockMode::Exclusive,
                &[],
                LockDuration::Long,
                Duration::from_millis(100),
            )
        });
        while lm.queued_waiters() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let lm2 = Arc::clone(&lm);
        let start = Instant::now();
        let w2 = std::thread::spawn(move || {
            lm2.acquire(
                TxnToken(3),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long,
                Duration::from_secs(30),
            )
        });
        assert_eq!(w1.join().unwrap(), Err(AcquireError::Timeout));
        assert_eq!(w2.join().unwrap(), Ok(()));
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "W2 slept to its deadline: the retire did not re-sweep"
        );
        assert!(lm.holds(TxnToken(3), &item(0), LockMode::Shared));
    }

    #[test]
    fn deadlock_victim_is_the_cycle_closer() {
        let lm = Arc::new(LockManager::new());
        // T1 holds x, T2 holds y.
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        lm.try_acquire(
            TxnToken(2),
            item(1),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );

        // T1 waits for y on another thread; T2 then requests x, closing
        // the cycle — so T2 is the victim.
        let lm1 = Arc::clone(&lm);
        let t1 = std::thread::spawn(move || {
            lm1.acquire(
                TxnToken(1),
                item(1),
                LockMode::Exclusive,
                &[],
                LockDuration::Long,
                Duration::from_secs(5),
            )
        });
        while lm.queued_waiters() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let result = lm.acquire(
            TxnToken(2),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
            Duration::from_secs(5),
        );
        let Err(AcquireError::Deadlock { cycle }) = result else {
            panic!("expected a deadlock verdict, got {result:?}");
        };
        // The cycle is reported from the victim's own request: it starts
        // and ends with the cycle-closing transaction.
        assert_eq!(cycle.first(), Some(&TxnToken(2)));
        assert_eq!(cycle.last(), Some(&TxnToken(2)));
        assert!(cycle.contains(&TxnToken(1)));
        // After the victim aborts (releases its locks), T1 proceeds.
        lm.release_all(TxnToken(2));
        assert_eq!(t1.join().unwrap(), Ok(()));
    }

    #[test]
    fn upgrade_deadlock_is_detected_at_the_second_request() {
        let lm = Arc::new(LockManager::new());
        // Both transactions hold shared locks on the same item.
        for t in [1u64, 2] {
            assert!(lm
                .try_acquire(
                    TxnToken(t),
                    item(0),
                    LockMode::Shared,
                    &[],
                    LockDuration::Long
                )
                .is_granted());
        }
        // T1 requests the upgrade first and parks; T2's upgrade then
        // closes the cycle and is refused on the spot.
        let lm1 = Arc::clone(&lm);
        let t1 = std::thread::spawn(move || {
            lm1.acquire(
                TxnToken(1),
                item(0),
                LockMode::Exclusive,
                &[],
                LockDuration::Long,
                Duration::from_secs(5),
            )
        });
        while lm.queued_waiters() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let result = lm.acquire(
            TxnToken(2),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
            Duration::from_secs(5),
        );
        assert!(matches!(result, Err(AcquireError::Deadlock { .. })));
        lm.release_all(TxnToken(2));
        assert_eq!(t1.join().unwrap(), Ok(()));
        assert!(lm.holds(TxnToken(1), &item(0), LockMode::Exclusive));
    }

    #[test]
    fn shared_waiters_are_granted_together_but_never_past_a_writer() {
        let lm = Arc::new(LockManager::new());
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        // Queue: X(2), then S(3), S(4).  FIFO holds the readers behind
        // the writer even though they are compatible with each other.
        let mut handles = Vec::new();
        let order = Arc::new(Mutex::new(Vec::<u64>::new()));
        for (t, mode) in [
            (2u64, LockMode::Exclusive),
            (3, LockMode::Shared),
            (4, LockMode::Shared),
        ] {
            let lm2 = Arc::clone(&lm);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                lm2.acquire(
                    TxnToken(t),
                    item(0),
                    mode,
                    &[],
                    LockDuration::Long,
                    Duration::from_secs(10),
                )
                .unwrap();
                order.lock().push(t);
            }));
            while lm.queued_waiters() < (t - 1) as usize {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        lm.release_all(TxnToken(1));
        // The writer is granted alone first…
        while order.lock().first().copied() != Some(2) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(lm.queued_waiters(), 2, "readers held behind the writer");
        // …and its release grants both readers in one sweep.
        lm.release_all(TxnToken(2));
        for handle in handles {
            handle.join().unwrap();
        }
        let granted = order.lock().clone();
        assert_eq!(granted[0], 2);
        assert_eq!(lm.queued_waiters(), 0);
        assert!(lm.holds(TxnToken(3), &item(0), LockMode::Shared));
        assert!(lm.holds(TxnToken(4), &item(0), LockMode::Shared));
    }

    #[test]
    fn barging_fast_path_overtakes_a_parked_writer_by_default() {
        let lm = Arc::new(LockManager::new());
        assert_eq!(lm.fairness(), FairnessPolicy::Barging);
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Shared,
            &[],
            LockDuration::Long,
        );
        let lm2 = Arc::clone(&lm);
        let writer = std::thread::spawn(move || {
            lm2.acquire(
                TxnToken(2),
                item(0),
                LockMode::Exclusive,
                &[],
                LockDuration::Long,
                Duration::from_secs(10),
            )
        });
        while lm.queued_waiters() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // A fresh reader is compatible with the held S and barges straight
        // past the parked writer — the starvation pattern the QueueFifo
        // policy exists to close.
        lm.acquire(
            TxnToken(3),
            item(0),
            LockMode::Shared,
            &[],
            LockDuration::Long,
            Duration::from_secs(1),
        )
        .unwrap();
        assert!(lm.holds(TxnToken(3), &item(0), LockMode::Shared));
        lm.release_all(TxnToken(3));
        lm.release_all(TxnToken(1));
        assert_eq!(writer.join().unwrap(), Ok(()));
    }

    #[test]
    fn queue_fifo_fast_path_defers_to_a_parked_writer() {
        let lm = Arc::new(LockManager::new().with_fairness(FairnessPolicy::QueueFifo));
        assert_eq!(lm.fairness(), FairnessPolicy::QueueFifo);
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Shared,
            &[],
            LockDuration::Long,
        );
        let order = Arc::new(Mutex::new(Vec::<u64>::new()));
        let lm2 = Arc::clone(&lm);
        let order2 = Arc::clone(&order);
        let writer = std::thread::spawn(move || {
            lm2.acquire(
                TxnToken(2),
                item(0),
                LockMode::Exclusive,
                &[],
                LockDuration::Long,
                Duration::from_secs(10),
            )
            .unwrap();
            order2.lock().push(2);
            lm2.release_all(TxnToken(2));
        });
        while lm.queued_waiters() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // The reader is compatible with the held S but conflicts with the
        // parked X: the FIFO fast path refuses the shortcut and enqueues
        // it behind the writer.
        let lm3 = Arc::clone(&lm);
        let order3 = Arc::clone(&order);
        let reader = std::thread::spawn(move || {
            lm3.acquire(
                TxnToken(3),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long,
                Duration::from_secs(10),
            )
            .unwrap();
            order3.lock().push(3);
            lm3.release_all(TxnToken(3));
        });
        while lm.queued_waiters() < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            !lm.holds(TxnToken(3), &item(0), LockMode::Shared),
            "the reader must not overtake the parked writer"
        );
        lm.release_all(TxnToken(1));
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(*order.lock(), vec![2, 3], "strict arrival order");
        assert_eq!(lm.queued_waiters(), 0);
    }

    #[test]
    fn try_acquire_still_barges_under_queue_fifo() {
        let lm = Arc::new(LockManager::new().with_fairness(FairnessPolicy::QueueFifo));
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Shared,
            &[],
            LockDuration::Long,
        );
        let lm2 = Arc::clone(&lm);
        let writer = std::thread::spawn(move || {
            lm2.acquire(
                TxnToken(2),
                item(0),
                LockMode::Exclusive,
                &[],
                LockDuration::Long,
                Duration::from_secs(10),
            )
        });
        while lm.queued_waiters() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // A non-blocking probe has no queue position to respect.
        assert!(lm
            .try_acquire(
                TxnToken(4),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long
            )
            .is_granted());
        lm.release_all(TxnToken(4));
        lm.release_all(TxnToken(1));
        assert_eq!(writer.join().unwrap(), Ok(()));
    }
}
