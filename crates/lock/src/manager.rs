//! The lock manager: sharded item-lock tables plus per-table predicate
//! domains.
//!
//! The manager used to be a single `Mutex` around one linear `Vec` of
//! granted locks, which serialised every acquire/release in the workspace
//! and made the threaded benchmarks measure that mutex rather than the
//! locking disciplines.  The sharded layout splits the state three ways:
//!
//! * **item locks** live in `N` shards, each a mutex-protected hash table
//!   indexed by the `(table, row)` of the [`LockTarget`]; acquiring or
//!   releasing a row lock touches exactly one shard, and each shard has its
//!   own condvar so a release only wakes the waiters parked on that shard;
//! * **predicate locks** keep a **per-table domain** rather than living in
//!   any shard: a predicate covers phantom rows that do not exist yet and
//!   therefore have no shard, so the phantom-prevention check must see an
//!   insert no matter which shard its row hashes to.  An item grant on a
//!   table with a live predicate domain checks that domain under its mutex;
//!   a predicate grant scans every shard for conflicting item locks on its
//!   table;
//! * the **waits-for graph** is global, behind its own mutex, and is used
//!   only for deadlock detection — it is touched only when a request
//!   actually blocks.
//!
//! Grants stay atomic in the presence of sharding: a predicate acquisition
//! first publishes its table's domain and a provisional live-predicate
//! count (holding the domain mutex), then scans the shards in order; an
//! item acquisition that sees no live predicate locks for its table
//! re-checks the count *after* locking its shard and restarts through the
//! domain path if one appeared.  Whichever of the two ordered their
//! critical sections on the shard first is seen by the other, so a
//! conflicting pair can never both be granted — and a table with no
//! predicate history (or whose predicate locks have all been released)
//! costs item grants nothing beyond their own shard mutex.

use crate::deadlock::WaitsForGraph;
use crate::mode::LockMode;
use crate::target::LockTarget;
use critique_core::locking::LockDuration;
use critique_storage::{Row, RowId, TxnToken};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default number of item-lock shards — tied to the store's shard count so
/// `LockManager::new()` and `MvStore::new()` stay in sync with the single
/// `EngineConfig::shards` knob.
pub const DEFAULT_LOCK_SHARDS: usize = critique_storage::DEFAULT_SHARDS;

/// One granted lock.
#[derive(Clone, Debug)]
struct HeldLock {
    holder: TxnToken,
    target: LockTarget,
    mode: LockMode,
    duration: LockDuration,
    /// Row images associated with an item lock (the values read, or the
    /// before/after images of a write) — used to evaluate conflicts against
    /// predicate locks.
    images: Vec<Row>,
}

impl HeldLock {
    fn conflicts(
        &self,
        txn: TxnToken,
        target: &LockTarget,
        mode: LockMode,
        images: &[Row],
    ) -> bool {
        self.holder != txn
            && self.mode.conflicts_with(mode)
            && self.target.overlaps(&self.images, target, images)
    }
}

/// Result of a non-blocking acquisition attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock was granted (or was already held).
    Granted,
    /// The request conflicts with locks held by these transactions.
    WouldBlock {
        /// Current holders of conflicting locks.
        holders: Vec<TxnToken>,
    },
}

impl LockOutcome {
    /// True if the lock was granted.
    pub fn is_granted(&self) -> bool {
        matches!(self, LockOutcome::Granted)
    }

    /// The conflicting holders, if the request would block.
    pub fn blockers(&self) -> &[TxnToken] {
        match self {
            LockOutcome::Granted => &[],
            LockOutcome::WouldBlock { holders } => holders,
        }
    }
}

/// Errors from a blocking acquisition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AcquireError {
    /// The requester was chosen as the victim of a deadlock cycle and must
    /// abort.
    Deadlock {
        /// The cycle that was detected.
        cycle: Vec<TxnToken>,
    },
    /// The lock could not be acquired within the timeout.
    Timeout,
}

impl fmt::Display for AcquireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcquireError::Deadlock { cycle } => {
                write!(
                    f,
                    "deadlock victim; cycle of {} transactions",
                    cycle.len().saturating_sub(1)
                )
            }
            AcquireError::Timeout => write!(f, "lock wait timeout"),
        }
    }
}

impl std::error::Error for AcquireError {}

/// Item locks whose `(table, row)` hashes into this shard, bucketed by that
/// hash.  Buckets keep the full target, so hash collisions merely share a
/// bucket — conflict tests always re-check [`LockTarget::overlaps`].
#[derive(Default)]
struct ShardInner {
    buckets: HashMap<u64, Vec<HeldLock>>,
}

struct LockShard {
    inner: Mutex<ShardInner>,
    released: Condvar,
}

/// The predicate locks on one table, plus the condvar predicate waiters
/// park on.  Domains are created on the first predicate *grant attempt*
/// for a table and never removed.
#[derive(Default)]
struct TableDomain {
    inner: Mutex<Vec<HeldLock>>,
    /// Lock-free gate for the item fast path: the number of predicate
    /// locks currently held on the table, bumped *provisionally* (before
    /// the shard scan) during a grant attempt and restored to the list
    /// length afterwards.  Item grants that read 0 while holding their
    /// shard mutex may skip the domain mutex entirely — see the ordering
    /// argument in [`LockManager::attempt_item`].
    live: AtomicUsize,
    released: Condvar,
}

/// Where one transaction's locks live: the shards holding its item locks
/// and the tables where it holds predicate locks.  Entries may be stale
/// after partial releases (a listed shard that no longer holds any of the
/// transaction's locks) — release paths treat the index as a superset.
#[derive(Clone, Default)]
struct TxnIndex {
    shards: BTreeSet<usize>,
    tables: BTreeSet<String>,
}

type IndexPartition = Mutex<BTreeMap<TxnToken, TxnIndex>>;

/// The lock manager: sharded item-lock tables, per-table predicate
/// domains, and a global waits-for graph for deadlock detection.
pub struct LockManager {
    shards: Box<[LockShard]>,
    domains: RwLock<BTreeMap<String, Arc<TableDomain>>>,
    /// Process-wide count of live predicate locks (sum of every domain's
    /// `live`), maintained with the same provisional bump-before-scan
    /// protocol.  Item grants load this once instead of touching the
    /// `domains` RwLock — with no predicate activity anywhere (the common
    /// case on the hot path) an item grant costs one uncontended atomic
    /// load plus its own shard mutex.
    live_predicates: AtomicUsize,
    index: Box<[IndexPartition]>,
    waits: Mutex<WaitsForGraph>,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::with_shards(DEFAULT_LOCK_SHARDS)
    }
}

fn item_key(table: &str, row: RowId) -> u64 {
    let mut hasher = DefaultHasher::new();
    table.hash(&mut hasher);
    row.0.hash(&mut hasher);
    hasher.finish()
}

fn merge_or_push(locks: &mut Vec<HeldLock>, lock: HeldLock) {
    if let Some(existing) = locks
        .iter_mut()
        .find(|held| held.holder == lock.holder && held.target == lock.target)
    {
        existing.mode = existing.mode.max(lock.mode);
        existing.duration = existing.duration.max(lock.duration);
        existing.images.extend(lock.images);
    } else {
        locks.push(lock);
    }
}

fn sorted_holders(mut holders: Vec<TxnToken>) -> Vec<TxnToken> {
    holders.sort();
    holders.dedup();
    holders
}

impl LockManager {
    /// An empty lock manager with [`DEFAULT_LOCK_SHARDS`] shards.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty lock manager with an explicit shard count (clamped to at
    /// least 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        LockManager {
            shards: (0..shards)
                .map(|_| LockShard {
                    inner: Mutex::new(ShardInner::default()),
                    released: Condvar::new(),
                })
                .collect(),
            domains: RwLock::new(BTreeMap::new()),
            live_predicates: AtomicUsize::new(0),
            index: (0..shards).map(|_| Mutex::new(BTreeMap::new())).collect(),
            waits: Mutex::new(WaitsForGraph::new()),
        }
    }

    /// Number of item-lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_index(&self, key: u64) -> usize {
        (key % self.shards.len() as u64) as usize
    }

    fn domain(&self, table: &str) -> Option<Arc<TableDomain>> {
        self.domains.read().get(table).cloned()
    }

    fn domain_or_create(&self, table: &str) -> Arc<TableDomain> {
        if let Some(domain) = self.domain(table) {
            return domain;
        }
        let mut domains = self.domains.write();
        Arc::clone(domains.entry(table.to_string()).or_default())
    }

    fn index_partition(&self, txn: TxnToken) -> &IndexPartition {
        &self.index[(txn.0 % self.index.len() as u64) as usize]
    }

    fn register_shard(&self, txn: TxnToken, shard: usize) {
        self.index_partition(txn)
            .lock()
            .entry(txn)
            .or_default()
            .shards
            .insert(shard);
    }

    fn register_table(&self, txn: TxnToken, table: &str) {
        let mut partition = self.index_partition(txn).lock();
        let entry = partition.entry(txn).or_default();
        if !entry.tables.contains(table) {
            entry.tables.insert(table.to_string());
        }
    }

    // ------------------------------------------------------------------
    // Conflict checks and grants.
    // ------------------------------------------------------------------

    /// Attempt an item-lock grant.  `grant` selects between `try_acquire`
    /// (grant when conflict-free) and `conflicts_with` (check only).
    fn attempt_item(
        &self,
        txn: TxnToken,
        target: &LockTarget,
        mode: LockMode,
        images: &[Row],
        duration: LockDuration,
        grant: bool,
    ) -> Vec<TxnToken> {
        let LockTarget::Item { table, row } = target else {
            unreachable!("attempt_item called with a predicate target");
        };
        let key = item_key(table, *row);
        let shard = &self.shards[self.shard_index(key)];
        // The fast-path gate: the global live-predicate count first (one
        // uncontended atomic load, no `domains` RwLock touch), and only if
        // some predicate lock exists anywhere, this table's domain.
        let live_predicates = |manager: &Self| -> bool {
            manager.live_predicates.load(Ordering::SeqCst) > 0
                && manager
                    .domain(table)
                    .is_some_and(|d| d.live.load(Ordering::SeqCst) > 0)
        };
        loop {
            // Lock order: domain before shard, always.  When the table has
            // no *live* predicate locks we lock the shard alone, then
            // re-check under the shard mutex: a predicate grant attempt
            // publishes its provisional counts (global, then per-domain)
            // *before* scanning the shards, so whichever of the two
            // ordered its critical section on this shard first is visible
            // to the other — the conflicting pair can never both be
            // granted.
            if live_predicates(self) {
                // Re-fetch under the ordering-significant path: the domain
                // Arc must outlive its guard.
                let domain = self.domain(table).expect("domains are never removed");
                let domain_guard = domain.inner.lock();
                let mut shard_guard = shard.inner.lock();
                return Self::check_and_grant_item(
                    &mut shard_guard,
                    Some(domain_guard.as_slice()),
                    key,
                    txn,
                    target,
                    mode,
                    images,
                    duration,
                    grant,
                );
            }
            let mut shard_guard = shard.inner.lock();
            if live_predicates(self) {
                drop(shard_guard);
                continue;
            }
            return Self::check_and_grant_item(
                &mut shard_guard,
                None,
                key,
                txn,
                target,
                mode,
                images,
                duration,
                grant,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_and_grant_item(
        shard: &mut ShardInner,
        predicates: Option<&[HeldLock]>,
        key: u64,
        txn: TxnToken,
        target: &LockTarget,
        mode: LockMode,
        images: &[Row],
        duration: LockDuration,
        grant: bool,
    ) -> Vec<TxnToken> {
        let mut holders: Vec<TxnToken> = Vec::new();
        if let Some(bucket) = shard.buckets.get(&key) {
            holders.extend(
                bucket
                    .iter()
                    .filter(|held| held.conflicts(txn, target, mode, images))
                    .map(|held| held.holder),
            );
        }
        if let Some(predicates) = predicates {
            holders.extend(
                predicates
                    .iter()
                    .filter(|held| held.conflicts(txn, target, mode, images))
                    .map(|held| held.holder),
            );
        }
        let holders = sorted_holders(holders);
        if grant && holders.is_empty() {
            merge_or_push(
                shard.buckets.entry(key).or_default(),
                HeldLock {
                    holder: txn,
                    target: target.clone(),
                    mode,
                    duration,
                    images: images.to_vec(),
                },
            );
        }
        holders
    }

    /// Attempt a predicate-lock grant: conflicts come from the table's
    /// domain (other predicates) and from item locks on the table in every
    /// shard.  A grant holds the domain mutex across the whole scan with
    /// the provisional `live` count already published, so no item grant on
    /// this table can slip past the scan front.  A check-only call
    /// (`grant == false`) never creates the domain and never bumps `live`
    /// — it must not pessimise future item grants on the table.
    fn attempt_predicate(
        &self,
        txn: TxnToken,
        target: &LockTarget,
        mode: LockMode,
        images: &[Row],
        duration: LockDuration,
        grant: bool,
    ) -> Vec<TxnToken> {
        let table = target.table();
        let domain = if grant {
            Some(self.domain_or_create(table))
        } else {
            self.domain(table)
        };
        let mut domain_guard = domain.as_ref().map(|d| d.inner.lock());
        let before_len = domain_guard.as_ref().map(|g| g.len()).unwrap_or(0);
        if grant {
            let domain = domain.as_ref().expect("grant path created the domain");
            // Provisional: divert concurrent item fast paths to the domain
            // mutex before we start scanning the shards — the global gate
            // first, then the per-table one.
            self.live_predicates.fetch_add(1, Ordering::SeqCst);
            domain.live.store(before_len + 1, Ordering::SeqCst);
        }
        let mut holders: Vec<TxnToken> = domain_guard
            .as_ref()
            .map(|guard| guard.as_slice())
            .unwrap_or(&[])
            .iter()
            .filter(|held| held.conflicts(txn, target, mode, images))
            .map(|held| held.holder)
            .collect();
        for shard in self.shards.iter() {
            let shard_guard = shard.inner.lock();
            holders.extend(
                shard_guard
                    .buckets
                    .values()
                    .flatten()
                    .filter(|held| held.conflicts(txn, target, mode, images))
                    .map(|held| held.holder),
            );
        }
        let holders = sorted_holders(holders);
        if grant {
            let domain = domain.as_ref().expect("grant path created the domain");
            let guard = domain_guard.as_mut().expect("guard taken above");
            if holders.is_empty() {
                merge_or_push(
                    guard,
                    HeldLock {
                        holder: txn,
                        target: target.clone(),
                        mode,
                        duration,
                        images: images.to_vec(),
                    },
                );
            }
            // Settle the gates to the actual count (the provisional +1
            // goes away on refusal or merge, stays — as the new entry — on
            // a fresh grant).
            domain.live.store(guard.len(), Ordering::SeqCst);
            if guard.len() == before_len {
                self.live_predicates.fetch_sub(1, Ordering::SeqCst);
            }
        }
        holders
    }

    fn attempt(
        &self,
        txn: TxnToken,
        target: &LockTarget,
        mode: LockMode,
        images: &[Row],
        duration: LockDuration,
        grant: bool,
    ) -> Vec<TxnToken> {
        match target {
            LockTarget::Item { table, row } => {
                if grant {
                    self.register_shard(txn, self.shard_index(item_key(table, *row)));
                }
                self.attempt_item(txn, target, mode, images, duration, grant)
            }
            LockTarget::Predicate(_) => {
                if grant {
                    self.register_table(txn, target.table());
                }
                self.attempt_predicate(txn, target, mode, images, duration, grant)
            }
        }
    }

    /// Attempt to acquire a lock without blocking.
    pub fn try_acquire(
        &self,
        txn: TxnToken,
        target: LockTarget,
        mode: LockMode,
        images: &[Row],
        duration: LockDuration,
    ) -> LockOutcome {
        let holders = self.attempt(txn, &target, mode, images, duration, true);
        if holders.is_empty() {
            LockOutcome::Granted
        } else {
            LockOutcome::WouldBlock { holders }
        }
    }

    /// Acquire a lock, blocking until it is granted, the requester becomes
    /// a deadlock victim, or `timeout` expires.
    pub fn acquire(
        &self,
        txn: TxnToken,
        target: LockTarget,
        mode: LockMode,
        images: &[Row],
        duration: LockDuration,
        timeout: Duration,
    ) -> Result<(), AcquireError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let holders = self.attempt(txn, &target, mode, images, duration, true);
            if holders.is_empty() {
                self.waits.lock().clear_waits(txn);
                return Ok(());
            }
            {
                let mut waits = self.waits.lock();
                waits.set_waits(txn, holders);
                if let Some(cycle) = waits.find_cycle_from(txn) {
                    if WaitsForGraph::choose_victim(&cycle) == Some(txn) {
                        waits.clear_waits(txn);
                        return Err(AcquireError::Deadlock { cycle });
                    }
                }
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                self.waits.lock().clear_waits(txn);
                return Err(AcquireError::Timeout);
            }
            // Park on the condvar covering the contended state.  The wait
            // re-polls at least every 10ms so deadlocks formed after we
            // went to sleep — and wakeups lost between the conflict check
            // and the park — are still noticed promptly.
            let wait = (deadline - now).min(Duration::from_millis(10));
            match &target {
                LockTarget::Item { table, row } => {
                    let shard = &self.shards[self.shard_index(item_key(table, *row))];
                    let mut guard = shard.inner.lock();
                    shard.released.wait_for(&mut guard, wait);
                }
                LockTarget::Predicate(_) => {
                    let domain = self.domain_or_create(target.table());
                    let mut guard = domain.inner.lock();
                    domain.released.wait_for(&mut guard, wait);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Releases.
    // ------------------------------------------------------------------

    /// Remove the locks of `txn` matching `keep == false` from every place
    /// the index says the transaction holds locks, waking the relevant
    /// waiters.  Returns the index entry if `take_index` asked to retire it.
    fn release_where<F>(&self, txn: TxnToken, take_index: bool, mut remove: F)
    where
        F: FnMut(&HeldLock) -> bool,
    {
        let index = {
            let mut partition = self.index_partition(txn).lock();
            if take_index {
                partition.remove(&txn)
            } else {
                // Clone the superset; stale entries cost one empty scan.
                partition.get(&txn).cloned()
            }
        };
        let Some(index) = index else {
            return;
        };
        // Tables whose domains may have predicate waiters parked on them:
        // any table this transaction held an item lock on.
        let mut touched_tables: BTreeSet<String> = BTreeSet::new();
        let mut released_anything = false;
        for &shard_idx in &index.shards {
            let shard = &self.shards[shard_idx];
            let mut removed_any = false;
            {
                let mut guard = shard.inner.lock();
                guard.buckets.retain(|_, bucket| {
                    bucket.retain(|held| {
                        let gone = held.holder == txn && remove(held);
                        if gone {
                            removed_any = true;
                            touched_tables.insert(held.target.table().to_string());
                        }
                        !gone
                    });
                    !bucket.is_empty()
                });
            }
            if removed_any {
                released_anything = true;
                shard.released.notify_all();
            }
        }
        let mut released_predicate = false;
        for table in &index.tables {
            if let Some(domain) = self.domain(table) {
                let removed = {
                    let mut guard = domain.inner.lock();
                    let before = guard.len();
                    guard.retain(|held| !(held.holder == txn && remove(held)));
                    // Settle the item fast-path gates to the surviving
                    // count (under the domain mutex, like every other
                    // `live` mutation).
                    domain.live.store(guard.len(), Ordering::SeqCst);
                    before - guard.len()
                };
                if removed > 0 {
                    self.live_predicates.fetch_sub(removed, Ordering::SeqCst);
                    released_predicate = true;
                    domain.released.notify_all();
                }
            }
        }
        // Predicate waiters conflicting with a released *item* lock are
        // parked on their table's domain condvar.
        for table in &touched_tables {
            if let Some(domain) = self.domain(table) {
                domain.released.notify_all();
            }
        }
        // Item waiters blocked by a released *predicate* lock can be parked
        // on any shard; predicate releases are rare, so wake them all.
        if released_predicate {
            released_anything = true;
            for shard in self.shards.iter() {
                shard.released.notify_all();
            }
        }
        // Prune waits-for edges that pointed at the releasing transaction:
        // they may describe conflicts that just evaporated, and a stale
        // edge can fabricate a phantom deadlock cycle.  Any waiter that is
        // still genuinely blocked re-adds its edges on its next poll
        // (≤10ms), so deadlock detection is delayed at most one poll,
        // never lost.
        if released_anything {
            let mut waits = self.waits.lock();
            if waits.waiter_count() > 0 {
                waits.remove(txn);
            }
        }
    }

    /// Release every lock held by `txn` (commit or abort) and wake waiters.
    pub fn release_all(&self, txn: TxnToken) {
        self.release_where(txn, true, |_| true);
        self.waits.lock().remove(txn);
    }

    /// Release `txn`'s short-duration locks (called after each action at
    /// the levels whose profile uses short read locks).
    pub fn release_short(&self, txn: TxnToken) {
        self.release_where(txn, false, |held| held.duration == LockDuration::Short);
    }

    /// Release `txn`'s cursor-duration locks (the cursor moved or closed).
    /// A lock on `keep` (the new cursor position) is retained.
    pub fn release_cursor(&self, txn: TxnToken, keep: Option<&LockTarget>) {
        self.release_where(txn, false, |held| {
            held.duration == LockDuration::Cursor && Some(&held.target) != keep
        });
    }

    /// Release `txn`'s lock on `target` only if it is a cursor-duration
    /// lock (used when a cursor moves off a row: a lock that was meanwhile
    /// upgraded to long duration by an update must survive).
    pub fn release_cursor_target(&self, txn: TxnToken, target: &LockTarget) {
        self.release_where(txn, false, |held| {
            &held.target == target && held.duration == LockDuration::Cursor
        });
    }

    /// Release one specific lock held by `txn`.
    pub fn release_target(&self, txn: TxnToken, target: &LockTarget) {
        self.release_where(txn, false, |held| &held.target == target);
    }

    // ------------------------------------------------------------------
    // Queries.
    // ------------------------------------------------------------------

    /// The transactions currently holding locks that would conflict with
    /// the given request.
    pub fn conflicts_with(
        &self,
        txn: TxnToken,
        target: &LockTarget,
        mode: LockMode,
        images: &[Row],
    ) -> Vec<TxnToken> {
        self.attempt(txn, target, mode, images, LockDuration::Short, false)
    }

    /// Visit every lock currently held by `txn`.
    fn for_each_held<F>(&self, txn: TxnToken, mut visit: F)
    where
        F: FnMut(&HeldLock),
    {
        let index = {
            let partition = self.index_partition(txn).lock();
            partition.get(&txn).cloned()
        };
        let Some(index) = index else {
            return;
        };
        for &shard_idx in &index.shards {
            let guard = self.shards[shard_idx].inner.lock();
            for held in guard.buckets.values().flatten() {
                if held.holder == txn {
                    visit(held);
                }
            }
        }
        for table in &index.tables {
            if let Some(domain) = self.domain(table) {
                let guard = domain.inner.lock();
                for held in guard.iter() {
                    if held.holder == txn {
                        visit(held);
                    }
                }
            }
        }
    }

    /// Number of locks currently held by `txn`.
    pub fn held_by(&self, txn: TxnToken) -> usize {
        let mut count = 0;
        self.for_each_held(txn, |_| count += 1);
        count
    }

    /// Total number of granted locks.
    pub fn total_held(&self) -> usize {
        let items: usize = self
            .shards
            .iter()
            .map(|shard| {
                shard
                    .inner
                    .lock()
                    .buckets
                    .values()
                    .map(|bucket| bucket.len())
                    .sum::<usize>()
            })
            .sum();
        let predicates: usize = self
            .domains
            .read()
            .values()
            .map(|domain| domain.inner.lock().len())
            .sum();
        items + predicates
    }

    /// True if `txn` holds a lock on `target` with at least the given mode.
    pub fn holds(&self, txn: TxnToken, target: &LockTarget, mode: LockMode) -> bool {
        let mut found = false;
        self.for_each_held(txn, |held| {
            found |= &held.target == target && held.mode.covers(mode);
        });
        found
    }
}

impl fmt::Debug for LockManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockManager")
            .field("shards", &self.shards.len())
            .field("held", &self.total_held())
            .field("waiters", &self.waits.lock().waiter_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critique_storage::{Condition, RowId, RowPredicate};
    use std::sync::Arc;

    fn item(row: u64) -> LockTarget {
        LockTarget::item("t", RowId(row))
    }

    #[test]
    fn shared_locks_are_compatible() {
        let lm = LockManager::new();
        assert!(lm
            .try_acquire(
                TxnToken(1),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long
            )
            .is_granted());
        assert!(lm
            .try_acquire(
                TxnToken(2),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long
            )
            .is_granted());
        assert_eq!(lm.total_held(), 2);
    }

    #[test]
    fn exclusive_conflicts_with_everything() {
        let lm = LockManager::new();
        assert!(lm
            .try_acquire(
                TxnToken(1),
                item(0),
                LockMode::Exclusive,
                &[],
                LockDuration::Long
            )
            .is_granted());
        let read = lm.try_acquire(
            TxnToken(2),
            item(0),
            LockMode::Shared,
            &[],
            LockDuration::Long,
        );
        assert_eq!(read.blockers(), &[TxnToken(1)]);
        let write = lm.try_acquire(
            TxnToken(2),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        assert!(!write.is_granted());
        // Different item is fine.
        assert!(lm
            .try_acquire(
                TxnToken(2),
                item(1),
                LockMode::Exclusive,
                &[],
                LockDuration::Long
            )
            .is_granted());
    }

    #[test]
    fn reacquisition_and_upgrade_by_the_same_transaction() {
        let lm = LockManager::new();
        assert!(lm
            .try_acquire(
                TxnToken(1),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Short
            )
            .is_granted());
        assert!(lm
            .try_acquire(
                TxnToken(1),
                item(0),
                LockMode::Exclusive,
                &[],
                LockDuration::Long
            )
            .is_granted());
        assert_eq!(lm.held_by(TxnToken(1)), 1);
        assert!(lm.holds(TxnToken(1), &item(0), LockMode::Exclusive));
        // The upgraded lock now has long duration: release_short keeps it.
        lm.release_short(TxnToken(1));
        assert_eq!(lm.held_by(TxnToken(1)), 1);
    }

    #[test]
    fn upgrade_blocks_when_another_reader_holds_the_item() {
        let lm = LockManager::new();
        assert!(lm
            .try_acquire(
                TxnToken(1),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long
            )
            .is_granted());
        assert!(lm
            .try_acquire(
                TxnToken(2),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long
            )
            .is_granted());
        let upgrade = lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        assert_eq!(upgrade.blockers(), &[TxnToken(2)]);
    }

    #[test]
    fn release_all_unblocks_waiters() {
        let lm = LockManager::new();
        assert!(lm
            .try_acquire(
                TxnToken(1),
                item(0),
                LockMode::Exclusive,
                &[],
                LockDuration::Long
            )
            .is_granted());
        lm.release_all(TxnToken(1));
        assert_eq!(lm.total_held(), 0);
        assert!(lm
            .try_acquire(
                TxnToken(2),
                item(0),
                LockMode::Exclusive,
                &[],
                LockDuration::Long
            )
            .is_granted());
    }

    #[test]
    fn duration_specific_release() {
        let lm = LockManager::new();
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Shared,
            &[],
            LockDuration::Short,
        );
        lm.try_acquire(
            TxnToken(1),
            item(1),
            LockMode::Shared,
            &[],
            LockDuration::Cursor,
        );
        lm.try_acquire(
            TxnToken(1),
            item(2),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        assert_eq!(lm.held_by(TxnToken(1)), 3);
        lm.release_short(TxnToken(1));
        assert_eq!(lm.held_by(TxnToken(1)), 2);
        lm.release_cursor(TxnToken(1), None);
        assert_eq!(lm.held_by(TxnToken(1)), 1);
        lm.release_target(TxnToken(1), &item(2));
        assert_eq!(lm.held_by(TxnToken(1)), 0);
    }

    #[test]
    fn cursor_release_keeps_the_new_position() {
        let lm = LockManager::new();
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Shared,
            &[],
            LockDuration::Cursor,
        );
        lm.try_acquire(
            TxnToken(1),
            item(1),
            LockMode::Shared,
            &[],
            LockDuration::Cursor,
        );
        lm.release_cursor(TxnToken(1), Some(&item(1)));
        assert!(!lm.holds(TxnToken(1), &item(0), LockMode::Shared));
        assert!(lm.holds(TxnToken(1), &item(1), LockMode::Shared));
    }

    #[test]
    fn predicate_lock_blocks_matching_item_writes() {
        let lm = LockManager::new();
        let active = RowPredicate::new("employees", Condition::eq("active", true));
        assert!(lm
            .try_acquire(
                TxnToken(1),
                LockTarget::predicate(active),
                LockMode::Shared,
                &[],
                LockDuration::Long
            )
            .is_granted());

        // Inserting an active employee conflicts…
        let new_active = Row::new().with("active", true);
        let blocked = lm.try_acquire(
            TxnToken(2),
            LockTarget::item("employees", RowId(5)),
            LockMode::Exclusive,
            std::slice::from_ref(&new_active),
            LockDuration::Long,
        );
        assert_eq!(blocked.blockers(), &[TxnToken(1)]);

        // …but an inactive one does not.
        let inactive = Row::new().with("active", false);
        assert!(lm
            .try_acquire(
                TxnToken(2),
                LockTarget::item("employees", RowId(6)),
                LockMode::Exclusive,
                std::slice::from_ref(&inactive),
                LockDuration::Long,
            )
            .is_granted());
    }

    #[test]
    fn item_lock_blocks_matching_predicate_no_matter_the_shard() {
        // The phantom-prevention direction across shards: an exclusive item
        // lock (a write in flight) must block a predicate read even though
        // the predicate lives in the per-table domain and the item lock in
        // whatever shard its row hashed to.
        for shards in [1, 3, 16] {
            let lm = LockManager::with_shards(shards);
            let matching = Row::new().with("active", true);
            for row in 0..8 {
                assert!(lm
                    .try_acquire(
                        TxnToken(1),
                        LockTarget::item("employees", RowId(row)),
                        LockMode::Exclusive,
                        std::slice::from_ref(&matching),
                        LockDuration::Long,
                    )
                    .is_granted());
            }
            let active = RowPredicate::new("employees", Condition::eq("active", true));
            let blocked = lm.try_acquire(
                TxnToken(2),
                LockTarget::predicate(active),
                LockMode::Shared,
                &[],
                LockDuration::Long,
            );
            assert_eq!(blocked.blockers(), &[TxnToken(1)], "shards={shards}");
        }
    }

    #[test]
    fn blocking_acquire_times_out() {
        let lm = LockManager::new();
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        let err = lm
            .acquire(
                TxnToken(2),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long,
                Duration::from_millis(30),
            )
            .unwrap_err();
        assert_eq!(err, AcquireError::Timeout);
    }

    #[test]
    fn blocking_acquire_succeeds_when_holder_releases() {
        let lm = Arc::new(LockManager::new());
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );

        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            lm2.acquire(
                TxnToken(2),
                item(0),
                LockMode::Shared,
                &[],
                LockDuration::Long,
                Duration::from_secs(5),
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        lm.release_all(TxnToken(1));
        assert_eq!(waiter.join().unwrap(), Ok(()));
        assert!(lm.holds(TxnToken(2), &item(0), LockMode::Shared));
    }

    #[test]
    fn deadlock_is_detected_and_the_victim_is_the_youngest() {
        let lm = Arc::new(LockManager::new());
        // T1 holds x, T2 holds y.
        lm.try_acquire(
            TxnToken(1),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );
        lm.try_acquire(
            TxnToken(2),
            item(1),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
        );

        // T1 waits for y on another thread; T2 then requests x → deadlock.
        let lm1 = Arc::clone(&lm);
        let t1 = std::thread::spawn(move || {
            lm1.acquire(
                TxnToken(1),
                item(1),
                LockMode::Exclusive,
                &[],
                LockDuration::Long,
                Duration::from_secs(5),
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        let result = lm.acquire(
            TxnToken(2),
            item(0),
            LockMode::Exclusive,
            &[],
            LockDuration::Long,
            Duration::from_secs(5),
        );
        // T2 (youngest) is the victim.
        assert!(matches!(result, Err(AcquireError::Deadlock { .. })));
        // After the victim aborts (releases its locks), T1 proceeds.
        lm.release_all(TxnToken(2));
        assert_eq!(t1.join().unwrap(), Ok(()));
    }
}
