//! Event-driven FIFO wait-queues for contended locks.
//!
//! The old scheduler parked blocked transactions on per-shard condvars and
//! re-polled the conflict check at least every 10ms, so lock handoff
//! latency — not the locking disciplines — dominated contended throughput.
//! This module replaces the poll with explicit per-lock wait-queues:
//!
//! * every contended item or predicate lock keeps an **ordered queue** of
//!   `Waiter` handles, keyed by `QueueKey` (the item's hash bucket, or
//!   the table for predicate requests);
//! * a release **sweeps** the queues whose table it touched, in FIFO
//!   order, and installs grants *on the waiters' behalf* — a woken waiter
//!   finds the lock already held, it never re-runs the conflict scan;
//! * a waiter is woken only by a delivered verdict (grant or deadlock), a
//!   retry nudge under the [`GrantPolicy::WakeAll`] baseline, or its own
//!   deadline.  There is no timer anywhere in the wait path.
//!
//! The FIFO discipline of one sweep is specified by the pure function
//! [`sweep_plan`]: walk the queue front to back and grant every request
//! that conflicts neither with the currently granted locks nor with an
//! **earlier waiter that is still waiting**.  The hold-back half is what
//! makes the queue starvation-free — a compatible latecomer is never
//! granted past a conflicting predecessor, so the head of the queue is
//! always eligible and every release makes progress.  The lock manager's
//! real sweep runs the same control flow through [`sweep_scan`], with the
//! "conflicts with granted locks" half answered by the sharded lock
//! tables; the property tests model [`sweep_plan`] against a
//! single-threaded reference scheduler.

use crate::deadlock::WaitsForGraph;
use crate::mode::LockMode;
use crate::target::LockTarget;
use critique_core::locking::LockDuration;
use critique_storage::{Row, TxnToken};
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How a release hands contended locks to blocked waiters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum GrantPolicy {
    /// The releasing thread walks the affected wait-queues in FIFO order
    /// and installs each compatible grant on the waiter's behalf before
    /// waking it: no re-scan by the waiter, no wakeup storm, no barging
    /// window between the release and the handoff.
    #[default]
    DirectHandoff,
    /// The releasing thread wakes every waiter on the affected tables and
    /// lets them race to re-acquire — the thundering-herd baseline the
    /// contended-handoff benchmark compares [`GrantPolicy::DirectHandoff`]
    /// against.  Still event-driven: waiters are woken by the release,
    /// never by a timer.
    WakeAll,
}

/// Whether an *un*contended acquisition may overtake parked waiters.
///
/// The companion knob to [`GrantPolicy`]: grant policy decides how a
/// release hands locks to the queue, fairness decides whether requests
/// that never blocked may cut past it.  The contended-handoff benchmark
/// grid records the throughput cost of strict FIFO rather than assuming
/// it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum FairnessPolicy {
    /// The fast path grants any request compatible with the *held* set,
    /// even past conflicting parked waiters (the classic throughput
    /// choice, and the default).  Under a steady stream of compatible
    /// requests a parked conflicting waiter can starve until its
    /// deadline.
    #[default]
    Barging,
    /// The fast path defers to the queue: a request that conflicts with
    /// any *waiting* queued request enqueues behind it instead of
    /// grabbing the lock, buying strict global FIFO at some throughput
    /// cost.  (`try_acquire` still barges — a non-blocking probe has no
    /// queue position to respect.)
    QueueFifo,
}

/// One lock request as the FIFO discipline sees it: who is asking for
/// what.  This is the vocabulary of the pure [`sweep_plan`] specification;
/// the lock manager's internal `Waiter` carries the same fields plus the
/// parking machinery.
#[derive(Clone, Debug)]
pub struct QueuedRequest {
    /// The requesting transaction.
    pub txn: TxnToken,
    /// What the request covers.
    pub target: LockTarget,
    /// Requested mode.
    pub mode: LockMode,
    /// Row images backing item-vs-predicate conflict tests.
    pub images: Vec<Row>,
}

/// Whether two *requests* conflict: different transactions, incompatible
/// modes, overlapping targets.  (Granted-vs-requested conflicts use the
/// same test — a granted lock is just a request that succeeded.)
pub fn requests_conflict(a: &QueuedRequest, b: &QueuedRequest) -> bool {
    a.txn != b.txn
        && a.mode.conflicts_with(b.mode)
        && a.target.overlaps(&a.images, &b.target, &b.images)
}

/// The FIFO sweep over one queue of `len` requests, abstracted over how
/// conflicts are answered.  `conflicts(j, i)` must say whether the pending
/// requests at positions `j` and `i` conflict; `try_grant(i)` must attempt
/// to grant request `i` against the real (or model) lock state and return
/// `true` on success.  `try_grant` is only invoked for requests that are
/// not held back behind a conflicting earlier waiter that is still
/// waiting.  Returns the indices granted, in queue order.
pub fn sweep_scan<C, F>(len: usize, mut conflicts: C, mut try_grant: F) -> Vec<usize>
where
    C: FnMut(usize, usize) -> bool,
    F: FnMut(usize) -> bool,
{
    let mut granted: Vec<usize> = Vec::new();
    for i in 0..len {
        let held_back = (0..i)
            .filter(|j| !granted.contains(j))
            .any(|j| conflicts(j, i));
        if held_back {
            continue;
        }
        if try_grant(i) {
            granted.push(i);
        }
    }
    granted
}

/// The pure specification of one handoff sweep: which queued requests a
/// release may grant, given the locks still `held` after it.  Equals
/// [`sweep_scan`] with a model lock table: a request is grantable when it
/// conflicts with no held lock and no request granted earlier in this
/// sweep.  The property tests check this against a single-threaded
/// reference scheduler.
pub fn sweep_plan(held: &[QueuedRequest], queue: &[QueuedRequest]) -> Vec<usize> {
    let mut planned: Vec<usize> = Vec::new();
    sweep_scan(
        queue.len(),
        |j, i| requests_conflict(&queue[j], &queue[i]),
        |i| {
            let ok = !held.iter().any(|h| requests_conflict(h, &queue[i]))
                && !planned
                    .iter()
                    .any(|&g| requests_conflict(&queue[g], &queue[i]));
            if ok {
                planned.push(i);
            }
            ok
        },
    )
}

/// True when `req` is a **conversion** (upgrade) request: its transaction
/// already holds a granted lock on the same target, so granting `req`
/// strengthens an existing lock instead of adding a new holder.
pub fn is_conversion(held: &[QueuedRequest], req: &QueuedRequest) -> bool {
    held.iter()
        .any(|h| h.txn == req.txn && h.target == req.target)
}

/// The **upgrade-aware** effective order of a wait-queue: conversion
/// requests first (in arrival order among themselves), then everything
/// else (in arrival order).  Returns indices into `queue`.
///
/// This is the classic "conversions wait ahead of new requests" rule, and
/// it is what makes the sweep upgrade-aware: a sweep never grants a
/// parked Shared request while a conflicting queued upgrade (S→X or U→X)
/// on the same target is still waiting — granting it would add one more
/// holder the upgrade has to outwait, which is exactly how the
/// batch-grant cascade sustains itself.  (The rule orders the wait queue;
/// it does not close the manager's barging fast path, which never
/// consults the queue — see the ROADMAP's fairness item.)  Because the
/// rule is an *ordering* (not a refusal), no wakeup is lost: the
/// held-back request is simply behind the upgrade, and the retire/grant
/// of the upgrade re-sweeps the queue as usual.
pub fn conversion_first(held: &[QueuedRequest], queue: &[QueuedRequest]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..queue.len())
        .filter(|&i| is_conversion(held, &queue[i]))
        .collect();
    order.extend((0..queue.len()).filter(|&i| !is_conversion(held, &queue[i])));
    order
}

/// [`sweep_plan`] over the [`conversion_first`] effective order: the
/// upgrade-aware sweep the lock manager's release path instantiates.
/// Returns the granted indices into `queue` (original positions), in
/// grant order.
pub fn upgrade_aware_plan(held: &[QueuedRequest], queue: &[QueuedRequest]) -> Vec<usize> {
    let order = conversion_first(held, queue);
    let mut planned: Vec<usize> = Vec::new();
    sweep_scan(
        order.len(),
        |j, i| requests_conflict(&queue[order[j]], &queue[order[i]]),
        |i| {
            let idx = order[i];
            let ok = !held.iter().any(|h| requests_conflict(h, &queue[idx]))
                && !planned
                    .iter()
                    .any(|&g| requests_conflict(&queue[g], &queue[idx]));
            if ok {
                planned.push(idx);
            }
            ok
        },
    );
    planned
}

// ---------------------------------------------------------------------
// The runtime side: waiter handles and the wait-set.
// ---------------------------------------------------------------------

/// Waiters that precede `txn` in the given effective order and whose
/// pending request conflicts with `txn`'s — the discipline holds `txn`
/// behind them even once the current holders release, so they belong in
/// `txn`'s waits-for edges.  The caller supplies the order (the lock
/// manager passes the [`conversion_first`] view of the queue).
pub(crate) fn blockers_in_order(order: &[Arc<Waiter>], txn: TxnToken) -> Vec<TxnToken> {
    let Some(own) = order.iter().find(|w| w.txn == txn) else {
        return Vec::new();
    };
    let own_req = own.request();
    order
        .iter()
        .take_while(|w| w.txn != txn)
        .filter(|w| w.is_waiting() && requests_conflict(&w.request(), &own_req))
        .map(|w| w.txn)
        .collect()
}

/// Which queue a blocked request parks on.  Item requests queue under
/// their `(table, row)` hash bucket — hash collisions merely share a FIFO
/// — and predicate requests under their table, because a predicate covers
/// phantom rows that have no bucket.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) enum QueueKey {
    /// An item request's queue: the table plus the item's hash bucket.
    Item {
        /// Table of the contended item (sweeps select queues by table).
        table: String,
        /// The item's `(table, row)` hash.
        bucket: u64,
    },
    /// A predicate request's queue: one per table.
    Predicate {
        /// Table the predicate ranges over.
        table: String,
    },
}

impl QueueKey {
    pub(crate) fn table(&self) -> &str {
        match self {
            QueueKey::Item { table, .. } | QueueKey::Predicate { table } => table,
        }
    }
}

/// The verdict a parked waiter is woken with.
#[derive(Clone, Debug)]
pub(crate) enum Verdict {
    /// No verdict yet.
    Waiting,
    /// The lock has been installed on the waiter's behalf; return `Ok`.
    Granted,
    /// The waiter's pending request closed a deadlock cycle; return the
    /// cycle and abort.
    Victim(Vec<TxnToken>),
}

struct WaiterCell {
    /// Bumped on every delivery or nudge so a wakeup racing the park is
    /// never lost: the waiter parks only while the epoch it read under the
    /// wait-set mutex is still current.
    epoch: u64,
    verdict: Verdict,
}

/// One blocked request: the request fields the FIFO discipline needs plus
/// a private mutex/condvar pair to park on.  Grants and deadlock verdicts
/// are *delivered* to the handle; the owning thread never re-scans.
pub(crate) struct Waiter {
    pub(crate) txn: TxnToken,
    pub(crate) target: LockTarget,
    pub(crate) mode: LockMode,
    pub(crate) images: Vec<Row>,
    pub(crate) duration: LockDuration,
    cell: Mutex<WaiterCell>,
    wake: Condvar,
}

impl Waiter {
    pub(crate) fn new(
        txn: TxnToken,
        target: LockTarget,
        mode: LockMode,
        images: Vec<Row>,
        duration: LockDuration,
    ) -> Self {
        Waiter {
            txn,
            target,
            mode,
            images,
            duration,
            cell: Mutex::new(WaiterCell {
                epoch: 0,
                verdict: Verdict::Waiting,
            }),
            wake: Condvar::new(),
        }
    }

    pub(crate) fn request(&self) -> QueuedRequest {
        QueuedRequest {
            txn: self.txn,
            target: self.target.clone(),
            mode: self.mode,
            images: self.images.clone(),
        }
    }

    /// Current `(epoch, verdict)`.
    pub(crate) fn snapshot(&self) -> (u64, Verdict) {
        let cell = self.cell.lock();
        (cell.epoch, cell.verdict.clone())
    }

    pub(crate) fn is_waiting(&self) -> bool {
        matches!(self.cell.lock().verdict, Verdict::Waiting)
    }

    /// Deliver a final verdict (only the first delivery sticks).
    pub(crate) fn deliver(&self, verdict: Verdict) {
        let mut cell = self.cell.lock();
        if matches!(cell.verdict, Verdict::Waiting) {
            cell.verdict = verdict;
            cell.epoch += 1;
            self.wake.notify_all();
        }
    }

    /// Wake the waiter for a self-retry without deciding its request
    /// (the [`GrantPolicy::WakeAll`] baseline).
    pub(crate) fn nudge(&self) {
        let mut cell = self.cell.lock();
        cell.epoch += 1;
        self.wake.notify_all();
    }

    /// Park until the epoch moves past `seen_epoch`, a verdict lands, or
    /// the deadline passes.  The caller re-reads the state under the
    /// wait-set mutex afterwards; this only sleeps.
    pub(crate) fn park(&self, seen_epoch: u64, deadline: Instant) {
        let mut cell = self.cell.lock();
        while matches!(cell.verdict, Verdict::Waiting) && cell.epoch == seen_epoch {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            self.wake.wait_for(&mut cell, deadline - now);
        }
    }
}

/// Every wait-queue plus the waits-for graph, behind one mutex.  The
/// mutex is touched only when a request actually blocks (the fast path is
/// gated by the lock-free `waiters` counter), so uncontended traffic
/// never sees it; under contention it serialises enqueue, verdict
/// delivery, and edge insertion, which is what makes "a grant, a deadlock
/// verdict, or the deadline" an exhaustive list of wake reasons.
pub(crate) struct WaitSet {
    waiters: AtomicUsize,
    inner: Mutex<WaitInner>,
}

pub(crate) struct WaitInner {
    queues: BTreeMap<QueueKey, VecDeque<Arc<Waiter>>>,
    /// The waits-for graph, updated incrementally: edges are inserted when
    /// a request blocks and refreshed when a sweep visits the waiter; they
    /// are removed when the waiter is granted, victimised, or retires.
    pub(crate) graph: WaitsForGraph,
}

impl WaitSet {
    pub(crate) fn new() -> Self {
        WaitSet {
            waiters: AtomicUsize::new(0),
            inner: Mutex::new(WaitInner {
                queues: BTreeMap::new(),
                graph: WaitsForGraph::new(),
            }),
        }
    }

    /// Lock-free gate for release paths: are any waiters parked at all?
    pub(crate) fn has_waiters(&self) -> bool {
        self.waiters.load(Ordering::SeqCst) > 0
    }

    pub(crate) fn lock(&self) -> parking_lot::MutexGuard<'_, WaitInner> {
        self.inner.lock()
    }

    /// Register a new waiter on its queue (FIFO: at the back).
    pub(crate) fn enqueue(&self, key: QueueKey, waiter: Arc<Waiter>) {
        let mut inner = self.inner.lock();
        inner.queues.entry(key).or_default().push_back(waiter);
        self.waiters.fetch_add(1, Ordering::SeqCst);
    }

    /// Remove `txn`'s waiter from `key`'s queue (grant, victim, retire).
    /// The caller holds the guard; the counter is adjusted here.
    pub(crate) fn dequeue(&self, inner: &mut WaitInner, key: &QueueKey, txn: TxnToken) {
        if let Some(queue) = inner.queues.get_mut(key) {
            let before = queue.len();
            queue.retain(|w| w.txn != txn);
            let removed = before - queue.len();
            if queue.is_empty() {
                inner.queues.remove(key);
            }
            if removed > 0 {
                self.waiters.fetch_sub(removed, Ordering::SeqCst);
            }
        }
    }
}

impl WaitInner {
    /// The queues a release on `tables` must sweep: every queue whose key
    /// ranges over one of the touched tables (conflicts never cross
    /// tables, so nothing else can have been unblocked).
    pub(crate) fn keys_for_tables<'a>(
        &self,
        tables: impl IntoIterator<Item = &'a String>,
    ) -> Vec<QueueKey> {
        let mut keys: Vec<QueueKey> = Vec::new();
        for table in tables {
            keys.extend(
                self.queues
                    .keys()
                    .filter(|k| k.table() == table.as_str())
                    .cloned(),
            );
        }
        keys.sort();
        keys.dedup();
        keys
    }

    /// Snapshot of one queue, front to back.
    pub(crate) fn queue(&self, key: &QueueKey) -> Vec<Arc<Waiter>> {
        self.queues
            .get(key)
            .map(|q| q.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Every parked waiter, across all queues, in queue order.
    pub(crate) fn all_waiters(&self) -> Vec<Arc<Waiter>> {
        self.queues.values().flatten().cloned().collect()
    }

    /// Number of parked waiters.
    pub(crate) fn waiter_count(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critique_storage::RowId;

    fn req(txn: u64, row: u64, mode: LockMode) -> QueuedRequest {
        QueuedRequest {
            txn: TxnToken(txn),
            target: LockTarget::item("t", RowId(row)),
            mode,
            images: Vec::new(),
        }
    }

    #[test]
    fn conflicting_requests_are_detected() {
        let a = req(1, 0, LockMode::Exclusive);
        let b = req(2, 0, LockMode::Shared);
        let c = req(2, 1, LockMode::Exclusive);
        assert!(requests_conflict(&a, &b));
        assert!(!requests_conflict(&a, &c)); // different row
        assert!(!requests_conflict(&a, &req(1, 0, LockMode::Exclusive))); // same txn
    }

    #[test]
    fn sweep_plan_grants_compatible_prefix() {
        // Two shared readers at the head are both granted; the exclusive
        // writer behind them is not.
        let queue = [
            req(1, 0, LockMode::Shared),
            req(2, 0, LockMode::Shared),
            req(3, 0, LockMode::Exclusive),
        ];
        assert_eq!(sweep_plan(&[], &queue), vec![0, 1]);
    }

    #[test]
    fn sweep_plan_never_overtakes_a_conflicting_predecessor() {
        // The shared reader behind the still-blocked exclusive writer is
        // held back even though it is compatible with the held lock.
        let held = [req(9, 0, LockMode::Shared)];
        let queue = [req(1, 0, LockMode::Exclusive), req(2, 0, LockMode::Shared)];
        assert_eq!(sweep_plan(&held, &queue), Vec::<usize>::new());
    }

    #[test]
    fn sweep_plan_grants_independent_items_past_a_blocked_head() {
        let held = [req(9, 0, LockMode::Exclusive)];
        let queue = [
            req(1, 0, LockMode::Exclusive),
            req(2, 1, LockMode::Exclusive),
        ];
        assert_eq!(sweep_plan(&held, &queue), vec![1]);
    }

    #[test]
    fn sweep_plan_head_is_always_eligible_when_holders_clear() {
        let queue = [
            req(1, 0, LockMode::Exclusive),
            req(2, 0, LockMode::Exclusive),
            req(3, 0, LockMode::Shared),
        ];
        // With nothing held, exactly the head wins (the rest conflict).
        assert_eq!(sweep_plan(&[], &queue), vec![0]);
    }

    #[test]
    fn conversion_requests_are_ordered_first() {
        let held = [req(2, 0, LockMode::Shared)];
        let queue = [
            req(3, 0, LockMode::Shared),
            req(2, 0, LockMode::Exclusive), // upgrade: txn 2 already holds S(x)
            req(4, 1, LockMode::Shared),
        ];
        assert!(!is_conversion(&held, &queue[0]));
        assert!(is_conversion(&held, &queue[1]));
        assert_eq!(conversion_first(&held, &queue), vec![1, 0, 2]);
    }

    #[test]
    fn upgrade_aware_plan_grants_the_conversion_not_the_reader() {
        // txn 2 holds S(x) and queued its X upgrade; a fresh reader queued
        // *ahead* of the upgrade.  The plain FIFO sweep would grant the
        // reader (compatible with the held S) and leave the upgrade with
        // one more holder to outwait — the cascade shape.  The
        // upgrade-aware sweep grants the conversion instead.
        let held = [req(2, 0, LockMode::Shared)];
        let queue = [req(3, 0, LockMode::Shared), req(2, 0, LockMode::Exclusive)];
        assert_eq!(sweep_plan(&held, &queue), vec![0]);
        assert_eq!(upgrade_aware_plan(&held, &queue), vec![1]);
    }

    #[test]
    fn shared_is_never_granted_while_a_conflicting_conversion_waits() {
        // Two S holders; one of them queued its upgrade, so the conversion
        // itself is still blocked — and the fresh reader must be held back
        // behind it rather than pile onto the held set.
        let held = [req(2, 0, LockMode::Shared), req(9, 0, LockMode::Shared)];
        let queue = [req(3, 0, LockMode::Shared), req(2, 0, LockMode::Exclusive)];
        assert_eq!(upgrade_aware_plan(&held, &queue), Vec::<usize>::new());
    }

    #[test]
    fn upgrade_aware_plan_without_conversions_is_the_plain_sweep() {
        let held = [req(9, 0, LockMode::Exclusive)];
        let queue = [
            req(1, 0, LockMode::Exclusive),
            req(2, 1, LockMode::Exclusive),
            req(3, 0, LockMode::Shared),
        ];
        assert_eq!(upgrade_aware_plan(&held, &queue), sweep_plan(&held, &queue));
    }

    #[test]
    fn update_mode_requests_conflict_asymmetrically() {
        let held_u = req(1, 0, LockMode::Update);
        let held_s = req(2, 0, LockMode::Shared);
        // A U request against held S is compatible; an S request against
        // held U is not (the first argument is the held/earlier side).
        assert!(!requests_conflict(&held_s, &req(1, 0, LockMode::Update)));
        assert!(requests_conflict(&held_u, &req(2, 0, LockMode::Shared)));
        assert!(requests_conflict(&held_u, &req(3, 0, LockMode::Update)));
    }

    #[test]
    fn waiter_verdict_delivery_is_first_write_wins() {
        let w = Waiter::new(
            TxnToken(1),
            LockTarget::item("t", RowId(0)),
            LockMode::Shared,
            Vec::new(),
            LockDuration::Long,
        );
        assert!(w.is_waiting());
        w.deliver(Verdict::Granted);
        w.deliver(Verdict::Victim(vec![TxnToken(1)]));
        assert!(matches!(w.snapshot().1, Verdict::Granted));
    }

    #[test]
    fn park_returns_immediately_on_stale_epoch() {
        let w = Waiter::new(
            TxnToken(1),
            LockTarget::item("t", RowId(0)),
            LockMode::Shared,
            Vec::new(),
            LockDuration::Long,
        );
        let (epoch, _) = w.snapshot();
        w.nudge();
        // The epoch moved between the snapshot and the park: no sleep.
        let start = Instant::now();
        w.park(epoch, Instant::now() + std::time::Duration::from_secs(5));
        assert!(start.elapsed() < std::time::Duration::from_secs(1));
    }
}
