//! Lock modes and their compatibility.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Lock modes: Read (Share) and Write (Exclusive), Section 2.3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum LockMode {
    /// Read lock — compatible with other read locks.
    Shared,
    /// Write lock — conflicts with every other lock.
    Exclusive,
}

impl LockMode {
    /// Two locks by *different* transactions on the same target conflict if
    /// at least one of them is a write lock.
    pub fn conflicts_with(&self, other: LockMode) -> bool {
        matches!(
            (self, other),
            (LockMode::Exclusive, _) | (_, LockMode::Exclusive)
        )
    }

    /// True if holding `self` is sufficient for a new request of `wanted`
    /// by the same transaction (Exclusive covers Shared).
    pub fn covers(&self, wanted: LockMode) -> bool {
        *self >= wanted
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockMode::Shared => write!(f, "S"),
            LockMode::Exclusive => write!(f, "X"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_matrix() {
        assert!(!LockMode::Shared.conflicts_with(LockMode::Shared));
        assert!(LockMode::Shared.conflicts_with(LockMode::Exclusive));
        assert!(LockMode::Exclusive.conflicts_with(LockMode::Shared));
        assert!(LockMode::Exclusive.conflicts_with(LockMode::Exclusive));
    }

    #[test]
    fn coverage() {
        assert!(LockMode::Exclusive.covers(LockMode::Shared));
        assert!(LockMode::Exclusive.covers(LockMode::Exclusive));
        assert!(LockMode::Shared.covers(LockMode::Shared));
        assert!(!LockMode::Shared.covers(LockMode::Exclusive));
    }

    #[test]
    fn display() {
        assert_eq!(LockMode::Shared.to_string(), "S");
        assert_eq!(LockMode::Exclusive.to_string(), "X");
    }
}
