//! Lock modes and their compatibility.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Lock modes: Read (Share), Update, and Write (Exclusive).
///
/// Shared and Exclusive are the Section 2.3 modes.  **Update** is the
/// classic asymmetric read-with-intent-to-write mode from the Gray
/// lock-granularity lineage the Critique builds on: a transaction that
/// will read an item and then write it takes U at the read instead of S,
/// which serialises would-be upgraders against each other *before* any of
/// them holds a read lock the others need — removing the S→X upgrade
/// deadlock entirely.  The U→X conversion then waits only for plain
/// Shared holders to drain, and the asymmetry (a held U admits no *new*
/// Shared requests) guarantees that drain terminates.
///
/// The variant order is the strength order: `Shared < Update <
/// Exclusive`, which is what [`LockMode::covers`] and the lock manager's
/// upgrade merge (`max`) rely on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum LockMode {
    /// Read lock — compatible with other read locks and with a (single)
    /// update lock already held.
    Shared,
    /// Update lock — read permission plus the declared intent to upgrade
    /// to [`LockMode::Exclusive`].  Granted while Shared locks are held;
    /// conflicts with other Update and Exclusive locks; once held, blocks
    /// new Shared requests so the upgrade cannot be starved.
    Update,
    /// Write lock — conflicts with every other lock.
    Exclusive,
}

impl LockMode {
    /// Whether a *held* lock of mode `self` blocks a new request of mode
    /// `requested` by a different transaction on an overlapping target.
    ///
    /// The matrix is the standard asymmetric one for update-mode locks
    /// (held mode down, requested mode across):
    ///
    /// | held \ requested | S | U | X |
    /// |---|---|---|---|
    /// | **S** | ok | ok | conflict |
    /// | **U** | conflict | conflict | conflict |
    /// | **X** | conflict | conflict | conflict |
    ///
    /// The single asymmetric cell is U/S: a *requested* U is compatible
    /// with held S locks (an updater can announce itself while readers
    /// are active), but a *held* U refuses new S requests — otherwise a
    /// stream of arriving readers could starve the pending U→X upgrade
    /// forever.
    pub fn conflicts_with(&self, requested: LockMode) -> bool {
        !matches!(
            (self, requested),
            (LockMode::Shared, LockMode::Shared) | (LockMode::Shared, LockMode::Update)
        )
    }

    /// True if holding `self` is sufficient for a new request of `wanted`
    /// by the same transaction (Exclusive covers Update covers Shared).
    pub fn covers(&self, wanted: LockMode) -> bool {
        *self >= wanted
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockMode::Shared => write!(f, "S"),
            LockMode::Update => write!(f, "U"),
            LockMode::Exclusive => write!(f, "X"),
        }
    }
}

/// How a read-modify-write transaction locks the read that precedes its
/// write at the locking isolation levels.
///
/// This is the `EngineConfig`/`MixedWorkload` knob behind the ROADMAP's
/// upgrade-deadlock item: under [`UpgradeStrategy::SharedThenUpgrade`] a
/// release sweep can batch-grant Shared to several parked readers whose
/// subsequent Exclusive upgrades then deadlock each other; under
/// [`UpgradeStrategy::UpdateLock`] the read announces the write up front,
/// so at most one would-be upgrader holds the item at a time and the
/// cascade cannot form.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum UpgradeStrategy {
    /// Read-for-update behaves like a plain read: take Shared at the
    /// level's read duration and upgrade to Exclusive at the write.  The
    /// historical behaviour, kept as the measured baseline.
    #[default]
    SharedThenUpgrade,
    /// Read-for-update takes an [`LockMode::Update`] lock held to the
    /// write duration; the write converts it to Exclusive, waiting only
    /// for plain Shared holders to drain.
    UpdateLock,
}

impl UpgradeStrategy {
    /// The lock mode a read-for-update acquires under this strategy.
    pub fn read_for_update_mode(&self) -> LockMode {
        match self {
            UpgradeStrategy::SharedThenUpgrade => LockMode::Shared,
            UpgradeStrategy::UpdateLock => LockMode::Update,
        }
    }
}

impl fmt::Display for UpgradeStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpgradeStrategy::SharedThenUpgrade => write!(f, "shared-then-upgrade"),
            UpgradeStrategy::UpdateLock => write!(f, "update-lock"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        // Shared row: admits readers and an announcing updater.
        assert!(!Shared.conflicts_with(Shared));
        assert!(!Shared.conflicts_with(Update));
        assert!(Shared.conflicts_with(Exclusive));
        // Update row: the asymmetry — a held U admits nothing new.
        assert!(Update.conflicts_with(Shared));
        assert!(Update.conflicts_with(Update));
        assert!(Update.conflicts_with(Exclusive));
        // Exclusive row: conflicts with everything.
        assert!(Exclusive.conflicts_with(Shared));
        assert!(Exclusive.conflicts_with(Update));
        assert!(Exclusive.conflicts_with(Exclusive));
    }

    #[test]
    fn coverage() {
        use LockMode::*;
        assert!(Exclusive.covers(Shared));
        assert!(Exclusive.covers(Update));
        assert!(Exclusive.covers(Exclusive));
        assert!(Update.covers(Shared));
        assert!(Update.covers(Update));
        assert!(!Update.covers(Exclusive));
        assert!(Shared.covers(Shared));
        assert!(!Shared.covers(Update));
        assert!(!Shared.covers(Exclusive));
    }

    #[test]
    fn strength_order_backs_upgrade_merges() {
        assert!(LockMode::Shared < LockMode::Update);
        assert!(LockMode::Update < LockMode::Exclusive);
        assert_eq!(
            LockMode::Update.max(LockMode::Exclusive),
            LockMode::Exclusive
        );
    }

    #[test]
    fn display() {
        assert_eq!(LockMode::Shared.to_string(), "S");
        assert_eq!(LockMode::Update.to_string(), "U");
        assert_eq!(LockMode::Exclusive.to_string(), "X");
    }

    #[test]
    fn strategy_selects_the_read_mode() {
        assert_eq!(
            UpgradeStrategy::SharedThenUpgrade.read_for_update_mode(),
            LockMode::Shared
        );
        assert_eq!(
            UpgradeStrategy::UpdateLock.read_for_update_mode(),
            LockMode::Update
        );
        assert_eq!(
            UpgradeStrategy::default(),
            UpgradeStrategy::SharedThenUpgrade
        );
        assert_eq!(
            UpgradeStrategy::SharedThenUpgrade.to_string(),
            "shared-then-upgrade"
        );
        assert_eq!(UpgradeStrategy::UpdateLock.to_string(), "update-lock");
    }
}
