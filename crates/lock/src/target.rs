//! Lock targets: data items and predicates.

use critique_storage::{Row, RowId, RowPredicate};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a lock covers: a single data item (record lock) or a predicate —
/// "effectively a lock on all data items satisfying the `<search
/// condition>`", including phantom items not currently in the database
/// (Section 2.3).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum LockTarget {
    /// A single row of a table.
    Item {
        /// Table name.
        table: String,
        /// Row id within the table.
        row: RowId,
    },
    /// A predicate over a table.
    Predicate(RowPredicate),
}

impl LockTarget {
    /// An item target.
    pub fn item(table: &str, row: RowId) -> Self {
        LockTarget::Item {
            table: table.to_string(),
            row,
        }
    }

    /// A predicate target.
    pub fn predicate(predicate: RowPredicate) -> Self {
        LockTarget::Predicate(predicate)
    }

    /// The table this target ranges over.
    pub fn table(&self) -> &str {
        match self {
            LockTarget::Item { table, .. } => table,
            LockTarget::Predicate(p) => &p.table,
        }
    }

    /// True if this target is the exact same item as `other` (two item
    /// targets on the same table/row).
    pub fn same_item(&self, other: &LockTarget) -> bool {
        matches!(
            (self, other),
            (
                LockTarget::Item { table: ta, row: ra },
                LockTarget::Item { table: tb, row: rb }
            ) if ta == tb && ra == rb
        )
    }

    /// Decide whether two lock targets *cover a common data item*, which is
    /// the scope half of the conflict test (the mode half is
    /// [`crate::mode::LockMode::conflicts_with`]).
    ///
    /// * item vs item: same table and row;
    /// * predicate vs predicate: interval intersection over every column
    ///   either condition constrains ([`RowPredicate::may_overlap`]) —
    ///   provably disjoint ranges on a shared column do not overlap, and
    ///   any condition whose bounds cannot be extracted falls back to the
    ///   whole-table interval, so the test stays conservative (it may
    ///   report an overlap where none exists, never the reverse);
    /// * item vs predicate: decided against the row images supplied by the
    ///   caller for the item (before/after images of the write, or the
    ///   value read).  If no images are supplied the test is conservative
    ///   and any same-table pair overlaps.
    pub fn overlaps(&self, self_images: &[Row], other: &LockTarget, other_images: &[Row]) -> bool {
        match (self, other) {
            (LockTarget::Item { .. }, LockTarget::Item { .. }) => self.same_item(other),
            (LockTarget::Predicate(a), LockTarget::Predicate(b)) => a.may_overlap(b),
            (LockTarget::Predicate(p), LockTarget::Item { table, .. }) => {
                Self::predicate_item_overlap(p, table, other_images)
            }
            (LockTarget::Item { table, .. }, LockTarget::Predicate(p)) => {
                Self::predicate_item_overlap(p, table, self_images)
            }
        }
    }

    fn predicate_item_overlap(predicate: &RowPredicate, table: &str, images: &[Row]) -> bool {
        if predicate.table != table {
            return false;
        }
        if images.is_empty() {
            // Conservative: unknown contents might satisfy the predicate.
            return true;
        }
        images.iter().any(|row| predicate.matches(table, row))
    }
}

impl fmt::Display for LockTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockTarget::Item { table, row } => write!(f, "{table}{row}"),
            LockTarget::Predicate(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use critique_storage::Condition;

    fn active_predicate() -> RowPredicate {
        RowPredicate::new("employees", Condition::eq("active", true))
    }

    #[test]
    fn item_vs_item_overlap_requires_same_row() {
        let a = LockTarget::item("t", RowId(1));
        let b = LockTarget::item("t", RowId(1));
        let c = LockTarget::item("t", RowId(2));
        let d = LockTarget::item("u", RowId(1));
        assert!(a.overlaps(&[], &b, &[]));
        assert!(!a.overlaps(&[], &c, &[]));
        assert!(!a.overlaps(&[], &d, &[]));
        assert!(a.same_item(&b));
        assert!(!a.same_item(&c));
    }

    #[test]
    fn predicate_vs_predicate_overlap_is_per_table() {
        let a = LockTarget::predicate(active_predicate());
        let b = LockTarget::predicate(RowPredicate::whole_table("employees"));
        let c = LockTarget::predicate(RowPredicate::whole_table("accounts"));
        assert!(a.overlaps(&[], &b, &[]));
        assert!(!a.overlaps(&[], &c, &[]));
    }

    #[test]
    fn predicate_vs_predicate_disjoint_intervals_do_not_overlap() {
        use critique_storage::Comparison;
        let low = LockTarget::predicate(RowPredicate::new(
            "tasks",
            Condition::compare("hours", Comparison::Lt, 5),
        ));
        let high = LockTarget::predicate(RowPredicate::new(
            "tasks",
            Condition::compare("hours", Comparison::Gt, 100),
        ));
        let wide = LockTarget::predicate(RowPredicate::new(
            "tasks",
            Condition::compare("hours", Comparison::Ge, 0),
        ));
        assert!(!low.overlaps(&[], &high, &[]));
        assert!(wide.overlaps(&[], &high, &[]));
        assert!(wide.overlaps(&[], &low, &[]));
    }

    #[test]
    fn predicate_vs_item_uses_row_images() {
        let p = LockTarget::predicate(active_predicate());
        let item = LockTarget::item("employees", RowId(3));
        let matching = Row::new().with("active", true);
        let non_matching = Row::new().with("active", false);

        assert!(p.overlaps(&[], &item, std::slice::from_ref(&matching)));
        assert!(!p.overlaps(&[], &item, std::slice::from_ref(&non_matching)));
        // Either image matching is enough (e.g. an update moving a row out
        // of the predicate still conflicts).
        assert!(p.overlaps(&[], &item, &[non_matching.clone(), matching.clone()]));
        // Unknown images are treated conservatively.
        assert!(p.overlaps(&[], &item, &[]));
        // Symmetric case: item lock held, predicate requested.
        assert!(item.overlaps(&[matching], &p, &[]));
        assert!(!item.overlaps(&[non_matching], &p, &[]));
    }

    #[test]
    fn predicate_vs_item_on_other_table_never_overlaps() {
        let p = LockTarget::predicate(active_predicate());
        let item = LockTarget::item("accounts", RowId(0));
        assert!(!p.overlaps(&[], &item, &[]));
    }

    #[test]
    fn accessors_and_display() {
        let p = LockTarget::predicate(active_predicate());
        assert_eq!(p.table(), "employees");
        let i = LockTarget::item("accounts", RowId(7));
        assert_eq!(i.table(), "accounts");
        assert_eq!(i.to_string(), "accounts#7");
        assert!(p.to_string().contains("employees["));
    }
}
