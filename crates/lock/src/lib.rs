//! # critique-lock
//!
//! The lock manager behind the locking isolation levels of Table 2.
//!
//! Transactions request **Shared** (read), **Update** (read with declared
//! intent to write — the classic asymmetric U mode from the Gray locking
//! lineage), and **Exclusive** (write) locks on *data items* or on
//! *predicates* (Section 2.3).  Two locks by different transactions
//! conflict if they cover a common (possibly phantom) data item and their
//! modes conflict under the asymmetric compatibility matrix
//! ([`LockMode::conflicts_with`]).  The lock manager supports:
//!
//! * item locks and predicate locks, with item-vs-predicate conflicts
//!   decided against the row images supplied by the caller;
//! * short, cursor, and long durations (the engine releases short locks
//!   after each action, cursor locks when the cursor moves, long locks at
//!   commit/abort — exactly the knobs Table 2 varies);
//! * non-blocking [`LockManager::try_acquire`] for the deterministic
//!   interleaving driver, and blocking [`LockManager::acquire`] for the
//!   threaded workloads: blocked requests park on event-driven per-lock
//!   FIFO wait-queues ([`waitqueue`]) and are handed released locks
//!   directly, with incremental (detect-on-insert) waits-for deadlock
//!   detection — no re-poll timer anywhere in the wait path.
//!
//! ```
//! use critique_lock::prelude::*;
//! use critique_storage::prelude::*;
//!
//! let locks = LockManager::new();
//! let t1 = TxnToken(1);
//! let t2 = TxnToken(2);
//! let x = LockTarget::item("accounts", RowId(0));
//!
//! assert!(locks.try_acquire(t1, x.clone(), LockMode::Exclusive, &[], LockDuration::Long).is_granted());
//! // A conflicting request by another transaction must wait.
//! assert!(!locks.try_acquire(t2, x.clone(), LockMode::Shared, &[], LockDuration::Long).is_granted());
//! locks.release_all(t1);
//! assert!(locks.try_acquire(t2, x, LockMode::Shared, &[], LockDuration::Long).is_granted());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod deadlock;
pub mod manager;
pub mod mode;
pub mod target;
pub mod waitqueue;

pub use crate::deadlock::WaitsForGraph;
pub use crate::manager::{AcquireError, LockManager, LockOutcome, DEFAULT_LOCK_SHARDS};
pub use crate::mode::{LockMode, UpgradeStrategy};
pub use crate::target::LockTarget;
pub use crate::waitqueue::{
    conversion_first, is_conversion, requests_conflict, sweep_plan, upgrade_aware_plan,
    FairnessPolicy, GrantPolicy, QueuedRequest,
};
pub use critique_core::locking::LockDuration;

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::deadlock::WaitsForGraph;
    pub use crate::manager::{AcquireError, LockManager, LockOutcome, DEFAULT_LOCK_SHARDS};
    pub use crate::mode::{LockMode, UpgradeStrategy};
    pub use crate::target::LockTarget;
    pub use crate::waitqueue::{
        conversion_first, is_conversion, requests_conflict, sweep_plan, upgrade_aware_plan,
        FairnessPolicy, GrantPolicy, QueuedRequest,
    };
    pub use critique_core::locking::LockDuration;
}
