//! Operations (actions) that make up a history.

use crate::item::{Item, Predicate, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A transaction identifier (the subscript in `r1[x]`, `w2[y]`, `c1`, …).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct TxnId(pub u32);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u32> for TxnId {
    fn from(v: u32) -> Self {
        TxnId(v)
    }
}

/// The kind of an action, mirroring the paper's notation.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum OpKind {
    /// `r i[x]` — read of a single data item.
    Read(Item),
    /// `w i[x]` — write (insert, update, or delete) of a single data item.
    Write(Item),
    /// `r i[P]` — read of the set of data items satisfying predicate `P`.
    PredicateRead(Predicate),
    /// `rc i[x]` — read of item `x` through a cursor (Section 4.1); the
    /// cursor remains positioned on `x` until it moves or is closed.
    CursorRead(Item),
    /// `wc i[x]` — write of the current item of the cursor (Section 4.1).
    CursorWrite(Item),
    /// `c i` — commit.
    Commit,
    /// `a i` — abort (ROLLBACK).
    Abort,
}

impl OpKind {
    /// The item this operation touches, if it is an item-level operation.
    pub fn item(&self) -> Option<&Item> {
        match self {
            OpKind::Read(i) | OpKind::Write(i) | OpKind::CursorRead(i) | OpKind::CursorWrite(i) => {
                Some(i)
            }
            _ => None,
        }
    }

    /// The predicate this operation reads, if it is a predicate read.
    pub fn predicate(&self) -> Option<&Predicate> {
        match self {
            OpKind::PredicateRead(p) => Some(p),
            _ => None,
        }
    }

    /// True for `Read`, `PredicateRead`, and `CursorRead`.
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            OpKind::Read(_) | OpKind::PredicateRead(_) | OpKind::CursorRead(_)
        )
    }

    /// True for `Write` and `CursorWrite`.
    pub fn is_write(&self) -> bool {
        matches!(self, OpKind::Write(_) | OpKind::CursorWrite(_))
    }

    /// True for `Commit` and `Abort`.
    pub fn is_terminator(&self) -> bool {
        matches!(self, OpKind::Commit | OpKind::Abort)
    }
}

/// How a write relates to a predicate, for phantom analysis.
///
/// The paper's broad P3 covers *any* write (insert, update, delete) that
/// affects an item satisfying a previously read predicate.  The strict ANSI
/// reading of P3 covers only inserts.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PredicateEffect {
    /// The write inserts a new item that satisfies the predicate
    /// (`w2[insert y to P]`).
    Insert,
    /// The write updates or deletes an existing item covered by the
    /// predicate (`w2[y in P]`).
    Mutate,
}

/// A write's relationship to a named predicate.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct PredicateMembership {
    /// The predicate affected.
    pub predicate: Predicate,
    /// Whether the write is an insert into the predicate or a mutation of an
    /// item already covered by it.
    pub effect: PredicateEffect,
}

/// A single action in a history.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Op {
    /// The transaction performing the action.
    pub txn: TxnId,
    /// What the action does.
    pub kind: OpKind,
    /// Value observed (reads) or installed (writes), when annotated.
    pub value: Option<Value>,
    /// For multi-version histories: the version read or created
    /// (`r1[x0=50]`, `w1[x1=10]`).  `None` in single-version histories.
    pub version: Option<u32>,
    /// Predicates this *write* affects (empty for reads and terminators).
    pub in_predicates: Vec<PredicateMembership>,
}

impl Op {
    /// A plain read of `item`.
    pub fn read(txn: impl Into<TxnId>, item: impl Into<Item>) -> Self {
        Op {
            txn: txn.into(),
            kind: OpKind::Read(item.into()),
            value: None,
            version: None,
            in_predicates: Vec::new(),
        }
    }

    /// A plain write of `item`.
    pub fn write(txn: impl Into<TxnId>, item: impl Into<Item>) -> Self {
        Op {
            txn: txn.into(),
            kind: OpKind::Write(item.into()),
            value: None,
            version: None,
            in_predicates: Vec::new(),
        }
    }

    /// A predicate read of `predicate`.
    pub fn predicate_read(txn: impl Into<TxnId>, predicate: impl Into<Predicate>) -> Self {
        Op {
            txn: txn.into(),
            kind: OpKind::PredicateRead(predicate.into()),
            value: None,
            version: None,
            in_predicates: Vec::new(),
        }
    }

    /// A cursor read of `item` (Section 4.1).
    pub fn cursor_read(txn: impl Into<TxnId>, item: impl Into<Item>) -> Self {
        Op {
            txn: txn.into(),
            kind: OpKind::CursorRead(item.into()),
            value: None,
            version: None,
            in_predicates: Vec::new(),
        }
    }

    /// A cursor write of `item` (Section 4.1).
    pub fn cursor_write(txn: impl Into<TxnId>, item: impl Into<Item>) -> Self {
        Op {
            txn: txn.into(),
            kind: OpKind::CursorWrite(item.into()),
            value: None,
            version: None,
            in_predicates: Vec::new(),
        }
    }

    /// A commit action.
    pub fn commit(txn: impl Into<TxnId>) -> Self {
        Op {
            txn: txn.into(),
            kind: OpKind::Commit,
            value: None,
            version: None,
            in_predicates: Vec::new(),
        }
    }

    /// An abort (ROLLBACK) action.
    pub fn abort(txn: impl Into<TxnId>) -> Self {
        Op {
            txn: txn.into(),
            kind: OpKind::Abort,
            value: None,
            version: None,
            in_predicates: Vec::new(),
        }
    }

    /// Annotate the operation with an observed/installed value.
    pub fn with_value(mut self, value: impl Into<Value>) -> Self {
        self.value = Some(value.into());
        self
    }

    /// Annotate the operation with a version number (MV histories).
    pub fn with_version(mut self, version: u32) -> Self {
        self.version = Some(version);
        self
    }

    /// Mark this write as inserting a new item into `predicate`.
    pub fn inserting_into(mut self, predicate: impl Into<Predicate>) -> Self {
        self.in_predicates.push(PredicateMembership {
            predicate: predicate.into(),
            effect: PredicateEffect::Insert,
        });
        self
    }

    /// Mark this write as mutating (updating/deleting) an item covered by
    /// `predicate`.
    pub fn mutating_in(mut self, predicate: impl Into<Predicate>) -> Self {
        self.in_predicates.push(PredicateMembership {
            predicate: predicate.into(),
            effect: PredicateEffect::Mutate,
        });
        self
    }

    /// The item touched, if any.
    pub fn item(&self) -> Option<&Item> {
        self.kind.item()
    }

    /// The predicate read, if any.
    pub fn predicate(&self) -> Option<&Predicate> {
        self.kind.predicate()
    }

    /// True if this is any kind of read.
    pub fn is_read(&self) -> bool {
        self.kind.is_read()
    }

    /// True if this is any kind of write.
    pub fn is_write(&self) -> bool {
        self.kind.is_write()
    }

    /// True if this write affects (inserts into or mutates within) the given
    /// predicate.
    pub fn affects_predicate(&self, predicate: &Predicate) -> bool {
        self.in_predicates.iter().any(|m| &m.predicate == predicate)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::notation::format_op(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_kinds() {
        assert!(matches!(Op::read(1u32, "x").kind, OpKind::Read(_)));
        assert!(matches!(Op::write(1u32, "x").kind, OpKind::Write(_)));
        assert!(matches!(
            Op::predicate_read(1u32, "P").kind,
            OpKind::PredicateRead(_)
        ));
        assert!(matches!(
            Op::cursor_read(1u32, "x").kind,
            OpKind::CursorRead(_)
        ));
        assert!(matches!(
            Op::cursor_write(1u32, "x").kind,
            OpKind::CursorWrite(_)
        ));
        assert!(matches!(Op::commit(1u32).kind, OpKind::Commit));
        assert!(matches!(Op::abort(1u32).kind, OpKind::Abort));
    }

    #[test]
    fn read_write_classification() {
        assert!(Op::read(1u32, "x").is_read());
        assert!(Op::cursor_read(1u32, "x").is_read());
        assert!(Op::predicate_read(1u32, "P").is_read());
        assert!(!Op::read(1u32, "x").is_write());
        assert!(Op::write(1u32, "x").is_write());
        assert!(Op::cursor_write(1u32, "x").is_write());
        assert!(Op::commit(1u32).kind.is_terminator());
        assert!(Op::abort(1u32).kind.is_terminator());
    }

    #[test]
    fn value_and_version_annotations() {
        let op = Op::read(1u32, "x").with_value(50).with_version(0);
        assert_eq!(op.value, Some(Value(50)));
        assert_eq!(op.version, Some(0));
    }

    #[test]
    fn predicate_membership_annotations() {
        let op = Op::write(2u32, "y").inserting_into("P");
        assert!(op.affects_predicate(&Predicate::new("P")));
        assert!(!op.affects_predicate(&Predicate::new("Q")));
        assert_eq!(op.in_predicates[0].effect, PredicateEffect::Insert);

        let op = Op::write(2u32, "y").mutating_in("P");
        assert_eq!(op.in_predicates[0].effect, PredicateEffect::Mutate);
    }

    #[test]
    fn item_accessor() {
        assert_eq!(Op::read(1u32, "x").item(), Some(&Item::new("x")));
        assert_eq!(Op::commit(1u32).item(), None);
        assert_eq!(
            Op::predicate_read(1u32, "P").predicate(),
            Some(&Predicate::new("P"))
        );
    }

    #[test]
    fn txn_id_display() {
        assert_eq!(TxnId(3).to_string(), "T3");
        assert_eq!(TxnId::from(7u32), TxnId(7));
    }
}
