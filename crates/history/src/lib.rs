//! # critique-history
//!
//! Transaction histories in the style of *"A Critique of ANSI SQL Isolation
//! Levels"* (Berenson et al., SIGMOD 1995).
//!
//! A [`History`] is a linear interleaving of the actions of a set of
//! transactions: reads, writes, predicate reads, cursor reads/writes,
//! commits and aborts.  The crate provides:
//!
//! * the operation model ([`op`]) and data-item model ([`item`]),
//! * the paper's shorthand notation (`"r1[x=50] w1[x=10] c1"`) — parser and
//!   formatter ([`notation`]),
//! * single- and multi-version histories ([`history`], [`mv`]),
//! * conflict/dependency graphs and serializability checks ([`graph`],
//!   [`serializability`]),
//! * the MV → SV mapping the paper uses to place Snapshot Isolation in the
//!   isolation hierarchy ([`equivalence`]),
//! * every canonical history used in the paper (H1, H1.SI, H2, H3, H4, H5,
//!   and the dirty-write / recovery examples) ([`canonical`]).
//!
//! Phenomenon *detectors* (P0–P3, A1–A3, P4, P4C, A5A, A5B) live in
//! `critique-core`; this crate only models histories and their structure.
//!
//! ## Quick example
//!
//! ```
//! use critique_history::prelude::*;
//!
//! // The paper's H1: non-serializable inconsistent analysis.
//! let h1 = History::parse(
//!     "r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1",
//! ).unwrap();
//! assert_eq!(h1.transactions().len(), 2);
//! assert!(!conflict_serializable(&h1).is_serializable());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod canonical;
pub mod equivalence;
pub mod graph;
pub mod history;
pub mod item;
pub mod mv;
pub mod notation;
pub mod op;
pub mod serializability;

pub use crate::graph::{Conflict, ConflictKind, DependencyGraph, Edge};
pub use crate::history::{History, HistoryBuilder, HistoryError, TxnOutcome};
pub use crate::item::{Item, Predicate, Value};
pub use crate::mv::{MvHistory, MvRead, VersionId};
pub use crate::notation::{format_history, parse_history, NotationError};
pub use crate::op::{Op, OpKind, TxnId};
pub use crate::serializability::{conflict_serializable, view_equivalent, SerializabilityReport};

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::canonical;
    pub use crate::graph::{Conflict, ConflictKind, DependencyGraph, Edge};
    pub use crate::history::{History, HistoryBuilder, HistoryError, TxnOutcome};
    pub use crate::item::{Item, Predicate, Value};
    pub use crate::mv::{MvHistory, MvRead, VersionId};
    pub use crate::op::{Op, OpKind, TxnId};
    pub use crate::serializability::{
        conflict_serializable, view_equivalent, SerializabilityReport,
    };
}
