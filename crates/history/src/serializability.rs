//! Conflict-serializability and view-equivalence checks.

use crate::graph::DependencyGraph;
use crate::history::History;
use crate::item::{Item, Predicate};
use crate::op::{OpKind, TxnId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The result of a serializability check.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SerializabilityReport {
    /// True when the committed projection's dependency graph is acyclic.
    serializable: bool,
    /// An equivalent serial order of the committed transactions, when one
    /// exists.
    pub serial_order: Option<Vec<TxnId>>,
    /// A witness cycle in the dependency graph, when the history is not
    /// serializable.
    pub cycle: Option<Vec<TxnId>>,
}

impl SerializabilityReport {
    /// True if the history is conflict-serializable.
    pub fn is_serializable(&self) -> bool {
        self.serializable
    }
}

/// Check conflict-serializability of a history via the Serializability
/// Theorem: the history is serializable iff the dependency graph over its
/// committed transactions is acyclic (Section 2.1, [BHG Theorem 3.6]).
pub fn conflict_serializable(history: &History) -> SerializabilityReport {
    let graph = DependencyGraph::from_history(history);
    match graph.find_cycle() {
        Some(cycle) => SerializabilityReport {
            serializable: false,
            serial_order: None,
            cycle: Some(cycle),
        },
        None => SerializabilityReport {
            serializable: true,
            serial_order: graph.topological_order(),
            cycle: None,
        },
    }
}

/// The source of the value observed by a read.
#[derive(Clone, PartialEq, Eq, Debug, PartialOrd, Ord)]
enum ReadSource {
    /// The read observed the initial (pre-history) database state.
    Initial,
    /// The read observed the most recent preceding write by this
    /// transaction.
    Txn(TxnId),
}

/// The reads-from relation of a history's committed projection.
///
/// For each read (identified by reading transaction, item, and occurrence
/// number), records which transaction's write it observed.  Used by
/// [`view_equivalent`].
fn reads_from(history: &History) -> BTreeMap<(TxnId, Item, usize), ReadSource> {
    let proj = history.committed_projection();
    let mut last_writer: BTreeMap<Item, TxnId> = BTreeMap::new();
    let mut occurrence: BTreeMap<(TxnId, Item), usize> = BTreeMap::new();
    let mut result = BTreeMap::new();

    for op in proj.ops() {
        match &op.kind {
            OpKind::Read(item) | OpKind::CursorRead(item) => {
                let n = occurrence.entry((op.txn, item.clone())).or_insert(0);
                let source = match last_writer.get(item) {
                    Some(t) => ReadSource::Txn(*t),
                    None => ReadSource::Initial,
                };
                result.insert((op.txn, item.clone(), *n), source);
                *n += 1;
            }
            OpKind::Write(item) | OpKind::CursorWrite(item) => {
                last_writer.insert(item.clone(), op.txn);
            }
            _ => {}
        }
    }
    result
}

/// The final writer of each item in the committed projection.
fn final_writes(history: &History) -> BTreeMap<Item, TxnId> {
    let proj = history.committed_projection();
    let mut map = BTreeMap::new();
    for op in proj.ops() {
        if op.is_write() {
            if let Some(item) = op.item() {
                map.insert(item.clone(), op.txn);
            }
        }
    }
    map
}

/// The set of committed writers that affected each predicate before each
/// predicate read (identified by reading transaction, predicate, occurrence).
fn predicate_observations(
    history: &History,
) -> BTreeMap<(TxnId, Predicate, usize), BTreeSet<TxnId>> {
    let proj = history.committed_projection();
    let mut writers: BTreeMap<Predicate, BTreeSet<TxnId>> = BTreeMap::new();
    let mut occurrence: BTreeMap<(TxnId, Predicate), usize> = BTreeMap::new();
    let mut result = BTreeMap::new();

    for op in proj.ops() {
        if let OpKind::PredicateRead(p) = &op.kind {
            let n = occurrence.entry((op.txn, p.clone())).or_insert(0);
            result.insert(
                (op.txn, p.clone(), *n),
                writers.get(p).cloned().unwrap_or_default(),
            );
            *n += 1;
        } else if op.is_write() {
            for m in &op.in_predicates {
                writers
                    .entry(m.predicate.clone())
                    .or_default()
                    .insert(op.txn);
            }
        }
    }
    result
}

/// True when two histories are *view equivalent*: they have the same
/// committed transactions, the same reads-from relation (including predicate
/// reads), and the same final writes (\[BHG\] Chapter 5; used by the paper to
/// map Snapshot Isolation MV histories to single-valued histories).
pub fn view_equivalent(a: &History, b: &History) -> bool {
    let a_txns: BTreeSet<TxnId> = a.committed().into_iter().collect();
    let b_txns: BTreeSet<TxnId> = b.committed().into_iter().collect();
    if a_txns != b_txns {
        return false;
    }
    reads_from(a) == reads_from(b)
        && final_writes(a) == final_writes(b)
        && predicate_observations(a) == predicate_observations(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h1_is_not_serializable() {
        let h1 =
            History::parse("r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1").unwrap();
        let report = conflict_serializable(&h1);
        assert!(!report.is_serializable());
        assert!(report.cycle.is_some());
        assert!(report.serial_order.is_none());
    }

    #[test]
    fn h2_is_not_serializable() {
        let h2 =
            History::parse("r1[x=50] r2[x=50] w2[x=10] r2[y=50] w2[y=90] c2 r1[y=90] c1").unwrap();
        assert!(!conflict_serializable(&h2).is_serializable());
    }

    #[test]
    fn h3_is_not_serializable_with_predicate_conflicts() {
        let h3 = History::parse("r1[P] w2[insert y to P] r2[z] w2[z] c2 r1[z] c1").unwrap();
        assert!(!conflict_serializable(&h3).is_serializable());
    }

    #[test]
    fn serial_histories_are_serializable() {
        let h = History::parse("r1[x] w1[y] c1 r2[y] w2[x] c2").unwrap();
        let report = conflict_serializable(&h);
        assert!(report.is_serializable());
        assert_eq!(report.serial_order.unwrap(), vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn interleaved_but_serializable() {
        // Reads of disjoint items interleaved — no conflicts at all.
        let h = History::parse("r1[x] r2[y] w1[x] w2[y] c1 c2").unwrap();
        assert!(conflict_serializable(&h).is_serializable());
    }

    #[test]
    fn aborted_transactions_do_not_affect_serializability() {
        // T2 aborts, so its conflicting ops are ignored.
        let h = History::parse("r1[x] w2[x] r2[y] w1[y] a2 c1").unwrap();
        assert!(conflict_serializable(&h).is_serializable());
    }

    #[test]
    fn view_equivalence_of_identical_histories() {
        let h = History::parse("w1[x] c1 r2[x] c2").unwrap();
        assert!(view_equivalent(&h, &h));
    }

    #[test]
    fn view_equivalence_detects_different_reads_from() {
        let a = History::parse("w1[x] c1 r2[x] c2").unwrap();
        let b = History::parse("r2[x] w1[x] c1 c2").unwrap();
        assert!(!view_equivalent(&a, &b));
    }

    #[test]
    fn view_equivalence_detects_different_final_writes() {
        let a = History::parse("w1[x] w2[x] c1 c2").unwrap();
        let b = History::parse("w2[x] w1[x] c1 c2").unwrap();
        assert!(!view_equivalent(&a, &b));
    }

    #[test]
    fn view_equivalence_requires_same_committed_set() {
        let a = History::parse("w1[x] c1").unwrap();
        let b = History::parse("w1[x] a1").unwrap();
        assert!(!view_equivalent(&a, &b));
    }

    #[test]
    fn view_equivalence_tracks_predicate_observations() {
        let a = History::parse("r1[P] w2[insert y to P] c2 c1").unwrap();
        let b = History::parse("w2[insert y to P] c2 r1[P] c1").unwrap();
        assert!(!view_equivalent(&a, &b));
    }

    #[test]
    fn paper_h1si_sv_mapping_is_serializable() {
        // H1.SI.SV from Section 4.2.
        let h =
            History::parse("r1[x=50] r1[y=50] r2[x=50] r2[y=50] c2 w1[x=10] w1[y=90] c1").unwrap();
        let report = conflict_serializable(&h);
        assert!(report.is_serializable());
        assert_eq!(report.serial_order.unwrap(), vec![TxnId(2), TxnId(1)]);
    }

    #[test]
    fn reads_from_counts_multiple_reads_of_same_item() {
        // T1 reads x twice: once initial, once after T2's committed write.
        let a = History::parse("r1[x] w2[x] c2 r1[x] c1").unwrap();
        let b = History::parse("r1[x] r1[x] w2[x] c2 c1").unwrap();
        assert!(!view_equivalent(&a, &b));
    }
}
