//! Data items, values, and predicates.
//!
//! Following \[EGLT\] and the paper's Section 2.1, a *data item* is taken in a
//! broad sense: a row, a page, a whole table, or any named lockable entity.
//! A *predicate* names a set of data items — both those currently in the
//! database and "phantom" items that would satisfy the predicate if they
//! were inserted.

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;

/// A named data item (the paper's `x`, `y`, `z`, …).
///
/// Items compare by name.  Engine-recorded histories use fully qualified
/// names such as `accounts.7.balance`; hand-written histories typically use
/// single letters.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Item(Cow<'static, str>);

impl Item {
    /// Create a new item from any string-like name.
    pub fn new(name: impl Into<Cow<'static, str>>) -> Self {
        Item(name.into())
    }

    /// The item's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Item({})", self.0)
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&'static str> for Item {
    fn from(s: &'static str) -> Self {
        Item::new(s)
    }
}

impl From<String> for Item {
    fn from(s: String) -> Self {
        Item::new(s)
    }
}

/// The value observed by a read or installed by a write.
///
/// The paper annotates histories with integer values (`r1[x=50]`); engine
/// recorded histories may carry arbitrary integers or remain unannotated.
/// Values are optional everywhere: structural phenomena (P0–P3) do not
/// depend on them, but the inconsistent-analysis examples (H1, H2, H5) and
/// the constraint-violation anomalies (A5A, A5B) are easier to demonstrate
/// with concrete numbers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct Value(pub i64);

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value(v)
    }
}

/// A named predicate (the paper's `P`) — a `<search condition>` naming a
/// possibly infinite set of data items.
///
/// For the purposes of history analysis the predicate is identified by name;
/// whether a particular write "falls in" the predicate is recorded on the
/// write operation itself (see [`crate::op::Op::in_predicates`]).  This
/// mirrors the paper's notation `w2[y in P]` / `w2[insert y to P]`: the
/// history records the membership fact rather than re-evaluating a search
/// condition.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Predicate(Cow<'static, str>);

impl Predicate {
    /// Create a predicate with the given name.
    pub fn new(name: impl Into<Cow<'static, str>>) -> Self {
        Predicate(name.into())
    }

    /// The predicate's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Predicate({})", self.0)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&'static str> for Predicate {
    fn from(s: &'static str) -> Self {
        Predicate::new(s)
    }
}

impl From<String> for Predicate {
    fn from(s: String) -> Self {
        Predicate::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn item_equality_is_by_name() {
        assert_eq!(Item::new("x"), Item::new(String::from("x")));
        assert_ne!(Item::new("x"), Item::new("y"));
    }

    #[test]
    fn item_display_and_debug() {
        let i = Item::new("accounts.7.balance");
        assert_eq!(i.to_string(), "accounts.7.balance");
        assert_eq!(format!("{i:?}"), "Item(accounts.7.balance)");
        assert_eq!(i.name(), "accounts.7.balance");
    }

    #[test]
    fn items_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(Item::new("x"));
        set.insert(Item::new("x"));
        set.insert(Item::new("y"));
        assert_eq!(set.len(), 2);
        assert!(Item::new("a") < Item::new("b"));
    }

    #[test]
    fn value_conversions() {
        let v: Value = 42.into();
        assert_eq!(v, Value(42));
        assert_eq!(v.to_string(), "42");
    }

    #[test]
    fn predicate_identity() {
        let p = Predicate::new("ActiveEmployees");
        assert_eq!(p.name(), "ActiveEmployees");
        assert_eq!(p, Predicate::new("ActiveEmployees"));
        assert_ne!(p, Predicate::new("P"));
        assert_eq!(format!("{p:?}"), "Predicate(ActiveEmployees)");
    }
}
