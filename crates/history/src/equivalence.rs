//! The MV → SV mapping used to place Snapshot Isolation in the isolation
//! hierarchy.
//!
//! Section 4.2 of the paper: *"In \[OOBBGM\], we show that all Snapshot
//! Isolation histories can be mapped to single-valued histories while
//! preserving dataflow dependencies."*  The device is simple: a Snapshot
//! Isolation transaction performs all of its reads against the committed
//! state as of its start timestamp and installs all of its writes at its
//! commit timestamp.  The equivalent single-valued history therefore places
//! each transaction's reads at its start point and its writes immediately
//! before its commit, e.g. the paper's `H1.SI` maps to `H1.SI.SV`:
//!
//! ```text
//! H1.SI:    r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 r1[y0=50] w1[y1=90] c1
//! H1.SI.SV: r1[x=50] r1[y=50] r2[x=50] r2[y=50] c2 w1[x=10] w1[y=90] c1
//! ```

use crate::history::History;
use crate::mv::MvHistory;
use crate::op::{Op, OpKind, TxnId};
use std::collections::BTreeMap;

/// Map a multi-version (Snapshot Isolation) history to the equivalent
/// single-valued history: each transaction's reads are placed at its start
/// point (its first action) and its writes immediately before its
/// commit/abort, preserving the relative order of start and commit points.
///
/// Version annotations are dropped; value annotations are preserved.
pub fn si_to_single_version(mv: &MvHistory) -> History {
    let history = mv.as_history();
    let ops = history.ops();

    #[derive(Default)]
    struct TxnBlocks {
        start_index: usize,
        reads: Vec<Op>,
        writes: Vec<Op>,
        terminator: Option<Op>,
        terminator_index: usize,
    }

    let mut blocks: BTreeMap<TxnId, TxnBlocks> = BTreeMap::new();
    for (index, op) in ops.iter().enumerate() {
        let block = blocks.entry(op.txn).or_insert_with(|| TxnBlocks {
            start_index: index,
            terminator_index: ops.len(),
            ..Default::default()
        });
        let mut stripped = op.clone();
        stripped.version = None;
        match &op.kind {
            OpKind::Read(_) | OpKind::CursorRead(_) | OpKind::PredicateRead(_) => {
                block.reads.push(stripped);
            }
            OpKind::Write(_) | OpKind::CursorWrite(_) => block.writes.push(stripped),
            OpKind::Commit | OpKind::Abort => {
                block.terminator = Some(stripped);
                block.terminator_index = index;
            }
        }
    }

    // Emit events in order of their position in the original history:
    // (start_index, reads of txn) and (terminator_index, writes + terminator).
    let mut events: Vec<(usize, u8, Vec<Op>)> = Vec::new();
    for (txn, block) in blocks {
        let _ = txn;
        events.push((block.start_index, 0, block.reads));
        let mut tail = block.writes;
        if let Some(term) = block.terminator {
            tail.push(term);
        }
        events.push((block.terminator_index, 1, tail));
    }
    events.sort_by_key(|(index, phase, _)| (*index, *phase));

    let ops: Vec<Op> = events.into_iter().flat_map(|(_, _, ops)| ops).collect();
    History::from_ops_unchecked(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serializability::conflict_serializable;

    const H1_SI: &str = "r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 r1[y0=50] w1[y1=90] c1";
    const H1_SI_SV: &str = "r1[x=50] r1[y=50] r2[x=50] r2[y=50] c2 w1[x=10] w1[y=90] c1";

    #[test]
    fn maps_h1_si_to_the_papers_sv_history() {
        let mv = MvHistory::parse(H1_SI).unwrap();
        let sv = si_to_single_version(&mv);
        assert_eq!(sv.to_notation(), H1_SI_SV);
    }

    #[test]
    fn mapped_h1_si_is_serializable() {
        let mv = MvHistory::parse(H1_SI).unwrap();
        let sv = si_to_single_version(&mv);
        let report = conflict_serializable(&sv);
        assert!(report.is_serializable());
        assert_eq!(report.serial_order.unwrap(), vec![TxnId(2), TxnId(1)]);
    }

    #[test]
    fn single_transaction_maps_to_reads_then_writes() {
        let mv = MvHistory::parse("r1[x0=1] w1[x1=2] r1[y0=3] w1[y1=4] c1").unwrap();
        let sv = si_to_single_version(&mv);
        assert_eq!(sv.to_notation(), "r1[x=1] r1[y=3] w1[x=2] w1[y=4] c1");
    }

    #[test]
    fn aborted_transaction_keeps_abort_terminator() {
        let mv = MvHistory::parse("r1[x0=1] w1[x1=2] a1").unwrap();
        let sv = si_to_single_version(&mv);
        assert_eq!(sv.to_notation(), "r1[x=1] w1[x=2] a1");
    }

    #[test]
    fn write_skew_h5_dataflow_is_preserved() {
        // H5 as an MV history: both transactions read initial versions and
        // write their own versions.  The SV mapping keeps it non-serializable.
        let mv =
            MvHistory::parse("r1[x0=50] r1[y0=50] r2[x0=50] r2[y0=50] w1[y1=-40] w2[x2=-40] c1 c2")
                .unwrap();
        assert!(mv.obeys_snapshot_visibility());
        let sv = si_to_single_version(&mv);
        assert!(!conflict_serializable(&sv).is_serializable());
    }

    #[test]
    fn values_survive_the_mapping_and_versions_are_dropped() {
        let mv = MvHistory::parse(H1_SI).unwrap();
        let sv = si_to_single_version(&mv);
        assert!(sv.ops().iter().all(|op| op.version.is_none()));
        assert!(sv
            .ops()
            .iter()
            .filter(|op| !op.kind.is_terminator())
            .all(|op| op.value.is_some()));
    }
}
