//! Parser and formatter for the paper's shorthand history notation.
//!
//! The notation, introduced in Section 2.2 of the paper:
//!
//! * `w1[x]` — write by transaction 1 on data item `x`
//! * `r2[x]` — read of `x` by transaction 2
//! * `r1[x=50]` — read observing value 50
//! * `r1[P]` — read of the set of items satisfying predicate `P`
//!   (identifiers starting with an uppercase letter are predicates)
//! * `w2[insert y to P]` — write that inserts a new item `y` satisfying `P`
//! * `w2[y in P]` — write to an item `y` covered by predicate `P`
//! * `rc1[x]` / `wc1[x]` — cursor read / cursor write (Section 4.1)
//! * `c1` / `a1` — commit / abort
//! * `r1[x0=50]`, `w1[x1=10]` — multi-version reads/writes where the
//!   trailing digits denote the version (Section 4.2); enabled by
//!   [`parse_mv_history`] and [`NotationOptions::versions`].
//!
//! Tokens are separated by whitespace.  `parse_history` round-trips with
//! [`format_history`].

use crate::history::{History, HistoryError};
use crate::item::Value;
use crate::op::{Op, OpKind, PredicateEffect, TxnId};
use std::fmt;

/// Errors from parsing the shorthand notation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NotationError {
    /// A token could not be understood.
    BadToken {
        /// The offending token text.
        token: String,
        /// Explanation of what was expected.
        reason: String,
    },
    /// The token stream parsed but the resulting history is ill-formed.
    BadHistory(HistoryError),
}

impl fmt::Display for NotationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NotationError::BadToken { token, reason } => {
                write!(f, "cannot parse token `{token}`: {reason}")
            }
            NotationError::BadHistory(e) => write!(f, "ill-formed history: {e}"),
        }
    }
}

impl std::error::Error for NotationError {}

impl From<HistoryError> for NotationError {
    fn from(e: HistoryError) -> Self {
        NotationError::BadHistory(e)
    }
}

/// Options controlling how the notation is interpreted.
#[derive(Clone, Copy, Debug, Default)]
pub struct NotationOptions {
    /// When true, trailing digits on item names are interpreted as version
    /// numbers (multi-version histories such as `H1.SI`).
    pub versions: bool,
}

fn bad(token: &str, reason: impl Into<String>) -> NotationError {
    NotationError::BadToken {
        token: token.to_string(),
        reason: reason.into(),
    }
}

fn is_predicate_name(name: &str) -> bool {
    name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// Split `x0` into (`x`, Some(0)) when version parsing is enabled.
fn split_version(name: &str, options: NotationOptions) -> (String, Option<u32>) {
    if !options.versions {
        return (name.to_string(), None);
    }
    let split_at = name
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_ascii_digit())
        .map(|(i, _)| i)
        .last();
    match split_at {
        Some(i) if i > 0 => {
            let (base, digits) = name.split_at(i);
            (base.to_string(), digits.parse::<u32>().ok())
        }
        _ => (name.to_string(), None),
    }
}

fn parse_value(text: &str, token: &str) -> Result<Value, NotationError> {
    text.parse::<i64>()
        .map(Value)
        .map_err(|_| bad(token, format!("`{text}` is not an integer value")))
}

/// Parse the bracket body of a read or write token.
fn parse_target(
    txn: TxnId,
    body: &str,
    is_write: bool,
    cursor: bool,
    token: &str,
    options: NotationOptions,
) -> Result<Op, NotationError> {
    let body = body.trim();

    // `insert y to P`
    if let Some(rest) = body.strip_prefix("insert ") {
        if !is_write {
            return Err(bad(token, "`insert … to …` is only valid in a write"));
        }
        let mut parts = rest.split(" to ");
        let item = parts
            .next()
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| bad(token, "missing item in `insert … to …`"))?;
        let pred = parts
            .next()
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| bad(token, "missing predicate in `insert … to …`"))?;
        return Ok(Op::write(txn.0, item.to_string()).inserting_into(pred.to_string()));
    }

    // `y in P`
    if let Some((item, pred)) = body.split_once(" in ") {
        if !is_write {
            return Err(bad(token, "`… in P` is only valid in a write"));
        }
        return Ok(Op::write(txn.0, item.trim().to_string()).mutating_in(pred.trim().to_string()));
    }

    // `x`, `x=50`, `x0=50`, `P`
    let (name, value) = match body.split_once('=') {
        Some((n, v)) => (n.trim(), Some(parse_value(v.trim(), token)?)),
        None => (body, None),
    };
    if name.is_empty() {
        return Err(bad(token, "empty target"));
    }

    if !is_write && !cursor && is_predicate_name(name) {
        let mut op = Op::predicate_read(txn.0, name.to_string());
        op.value = value;
        return Ok(op);
    }

    let (base, version) = split_version(name, options);
    let mut op = match (is_write, cursor) {
        (false, false) => Op::read(txn.0, base),
        (true, false) => Op::write(txn.0, base),
        (false, true) => Op::cursor_read(txn.0, base),
        (true, true) => Op::cursor_write(txn.0, base),
    };
    op.value = value;
    op.version = version;
    Ok(op)
}

fn parse_token(token: &str, options: NotationOptions) -> Result<Op, NotationError> {
    let token = token.trim();

    // Commit / abort: c1, a2
    if let Some(num) = token
        .strip_prefix('c')
        .filter(|s| s.chars().all(|c| c.is_ascii_digit()))
    {
        if !num.is_empty() {
            let id: u32 = num.parse().map_err(|_| bad(token, "bad transaction id"))?;
            return Ok(Op::commit(id));
        }
    }
    if let Some(num) = token
        .strip_prefix('a')
        .filter(|s| s.chars().all(|c| c.is_ascii_digit()))
    {
        if !num.is_empty() {
            let id: u32 = num.parse().map_err(|_| bad(token, "bad transaction id"))?;
            return Ok(Op::abort(id));
        }
    }

    // Reads / writes, optionally through a cursor: r1[..], w1[..], rc1[..], wc1[..]
    let open = token
        .find('[')
        .ok_or_else(|| bad(token, "expected `[` in read/write token"))?;
    let close = token
        .rfind(']')
        .ok_or_else(|| bad(token, "expected closing `]`"))?;
    if close < open {
        return Err(bad(token, "`]` before `[`"));
    }
    let head = &token[..open];
    let body = &token[open + 1..close];

    let (is_write, cursor, digits) = if let Some(d) = head.strip_prefix("rc") {
        (false, true, d)
    } else if let Some(d) = head.strip_prefix("wc") {
        (true, true, d)
    } else if let Some(d) = head.strip_prefix('r') {
        (false, false, d)
    } else if let Some(d) = head.strip_prefix('w') {
        (true, false, d)
    } else {
        return Err(bad(token, "expected r, w, rc, wc, c, or a prefix"));
    };

    if digits.is_empty() || !digits.chars().all(|c| c.is_ascii_digit()) {
        return Err(bad(
            token,
            "expected a transaction id after the action letter",
        ));
    }
    let txn = TxnId(
        digits
            .parse()
            .map_err(|_| bad(token, "bad transaction id"))?,
    );

    parse_target(txn, body, is_write, cursor, token, options)
}

/// Parse a whitespace-separated sequence of tokens into a [`History`].
pub fn parse_history(text: &str) -> Result<History, NotationError> {
    parse_history_with(text, NotationOptions::default())
}

/// Parse a multi-version history: trailing digits on item names become
/// version annotations (`r1[x0=50]` reads version 0 of `x`).
pub fn parse_mv_history(text: &str) -> Result<History, NotationError> {
    parse_history_with(text, NotationOptions { versions: true })
}

/// Parse with explicit [`NotationOptions`].
pub fn parse_history_with(text: &str, options: NotationOptions) -> Result<History, NotationError> {
    let mut ops = Vec::new();
    for token in tokenize(text) {
        ops.push(parse_token(&token, options)?);
    }
    Ok(History::new(ops)?)
}

/// Split the input into tokens, treating whitespace inside `[...]` as part
/// of the token (so `w2[insert y to P]` is one token).
fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut depth = 0usize;
    for c in text.chars() {
        match c {
            '[' => {
                depth += 1;
                current.push(c);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            c if c.is_whitespace() && depth == 0 => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Format one operation in the shorthand notation.
pub fn format_op(op: &Op) -> String {
    let txn = op.txn.0;
    let annot = |name: &str| -> String {
        let versioned = match op.version {
            Some(v) => format!("{name}{v}"),
            None => name.to_string(),
        };
        match op.value {
            Some(v) => format!("{versioned}={v}"),
            None => versioned,
        }
    };
    match &op.kind {
        OpKind::Read(i) => format!("r{txn}[{}]", annot(i.name())),
        OpKind::Write(i) => {
            if let Some(m) = op.in_predicates.first() {
                match m.effect {
                    PredicateEffect::Insert => {
                        format!("w{txn}[insert {} to {}]", i.name(), m.predicate.name())
                    }
                    PredicateEffect::Mutate => {
                        format!("w{txn}[{} in {}]", i.name(), m.predicate.name())
                    }
                }
            } else {
                format!("w{txn}[{}]", annot(i.name()))
            }
        }
        OpKind::PredicateRead(p) => format!("r{txn}[{}]", p.name()),
        OpKind::CursorRead(i) => format!("rc{txn}[{}]", annot(i.name())),
        OpKind::CursorWrite(i) => format!("wc{txn}[{}]", annot(i.name())),
        OpKind::Commit => format!("c{txn}"),
        OpKind::Abort => format!("a{txn}"),
    }
}

/// Format a full history in the shorthand notation.
pub fn format_history(history: &History) -> String {
    history
        .ops()
        .iter()
        .map(format_op)
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{Item, Predicate};
    use crate::op::OpKind;

    #[test]
    fn parses_simple_reads_writes_and_terminators() {
        let h = parse_history("r1[x] w2[y] c1 a2").unwrap();
        assert_eq!(h.len(), 4);
        assert!(matches!(h.ops()[0].kind, OpKind::Read(_)));
        assert!(matches!(h.ops()[1].kind, OpKind::Write(_)));
        assert!(matches!(h.ops()[2].kind, OpKind::Commit));
        assert!(matches!(h.ops()[3].kind, OpKind::Abort));
        assert_eq!(h.ops()[3].txn, TxnId(2));
    }

    #[test]
    fn parses_values_including_negative() {
        let h = parse_history("r1[x=50] w1[y=-40]").unwrap();
        assert_eq!(h.ops()[0].value, Some(Value(50)));
        assert_eq!(h.ops()[1].value, Some(Value(-40)));
    }

    #[test]
    fn parses_predicate_reads_and_predicate_writes() {
        let h = parse_history("r1[P] w2[insert y to P] w2[z in P] c2 r1[P] c1").unwrap();
        assert_eq!(h.ops()[0].predicate(), Some(&Predicate::new("P")));
        assert!(h.ops()[1].affects_predicate(&Predicate::new("P")));
        assert_eq!(h.ops()[1].item(), Some(&Item::new("y")));
        assert_eq!(h.ops()[1].in_predicates[0].effect, PredicateEffect::Insert);
        assert_eq!(h.ops()[2].in_predicates[0].effect, PredicateEffect::Mutate);
    }

    #[test]
    fn parses_cursor_ops() {
        let h = parse_history("rc1[x=100] w2[x=120] c2 wc1[x=130] c1").unwrap();
        assert!(matches!(h.ops()[0].kind, OpKind::CursorRead(_)));
        assert!(matches!(h.ops()[3].kind, OpKind::CursorWrite(_)));
        assert_eq!(h.ops()[0].value, Some(Value(100)));
    }

    #[test]
    fn parses_mv_versions_only_when_enabled() {
        let sv = parse_history("r1[x0=50]").unwrap();
        assert_eq!(sv.ops()[0].item(), Some(&Item::new("x0")));
        assert_eq!(sv.ops()[0].version, None);

        let mv = parse_mv_history("r1[x0=50] w1[x1=10] c1").unwrap();
        assert_eq!(mv.ops()[0].item(), Some(&Item::new("x")));
        assert_eq!(mv.ops()[0].version, Some(0));
        assert_eq!(mv.ops()[1].version, Some(1));
    }

    #[test]
    fn rejects_garbage_tokens() {
        assert!(parse_history("q1[x]").is_err());
        assert!(parse_history("r[x]").is_err());
        assert!(parse_history("r1 x").is_err());
        assert!(parse_history("r1[x").is_err());
        assert!(parse_history("r1[]").is_err());
        assert!(parse_history("r1[x=abc]").is_err());
        assert!(parse_history("r1[insert y to P]").is_err());
        let err = parse_history("zz").unwrap_err();
        assert!(err.to_string().contains("zz"));
    }

    #[test]
    fn rejects_ill_formed_history() {
        let err = parse_history("c1 r1[x]").unwrap_err();
        assert!(matches!(err, NotationError::BadHistory(_)));
    }

    #[test]
    fn round_trips_paper_histories() {
        let texts = [
            "r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1",
            "r1[x=50] r2[x=50] w2[x=10] r2[y=50] w2[y=90] c2 r1[y=90] c1",
            "r1[P] w2[insert y to P] r2[z] w2[z] c2 r1[z] c1",
            "r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1",
            "rc1[x=100] w2[x=120] c2 wc1[x=130] c1",
        ];
        for text in texts {
            let h = parse_history(text).unwrap();
            assert_eq!(format_history(&h), text, "round trip failed for {text}");
        }
    }

    #[test]
    fn round_trips_mv_history() {
        let text = "r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 r1[y0=50] w1[y1=90] c1";
        let h = parse_mv_history(text).unwrap();
        assert_eq!(format_history(&h), text);
    }

    #[test]
    fn commit_requires_id() {
        assert!(parse_history("c").is_err());
        assert!(parse_history("a").is_err());
    }
}
