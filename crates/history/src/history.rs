//! Single-version histories: linear interleavings of transaction actions.

use crate::item::{Item, Predicate};
use crate::notation;
use crate::op::{Op, OpKind, TxnId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The final outcome of a transaction within a history.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TxnOutcome {
    /// The transaction committed (`c i` appears).
    Committed,
    /// The transaction aborted (`a i` appears).
    Aborted,
    /// The history ends while the transaction is still active.
    Active,
}

/// Errors raised when constructing an ill-formed history.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HistoryError {
    /// An action by a transaction appears after that transaction committed
    /// or aborted.
    ActionAfterTermination {
        /// Offending transaction.
        txn: TxnId,
        /// Index of the offending action in the history.
        index: usize,
    },
    /// A transaction commits or aborts more than once.
    DuplicateTermination {
        /// Offending transaction.
        txn: TxnId,
        /// Index of the second terminator.
        index: usize,
    },
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::ActionAfterTermination { txn, index } => write!(
                f,
                "action at index {index} by {txn} occurs after {txn} terminated"
            ),
            HistoryError::DuplicateTermination { txn, index } => {
                write!(f, "duplicate commit/abort for {txn} at index {index}")
            }
        }
    }
}

impl std::error::Error for HistoryError {}

/// A history: a linear ordering of the actions of a set of transactions
/// (Section 2.1 of the paper).
///
/// Histories are immutable once built; construct them with
/// [`History::new`], [`HistoryBuilder`], or [`History::parse`].
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct History {
    ops: Vec<Op>,
}

impl History {
    /// Build a history from a sequence of operations, validating
    /// well-formedness (no action after termination, at most one
    /// terminator per transaction).
    pub fn new(ops: Vec<Op>) -> Result<Self, HistoryError> {
        let mut terminated: BTreeSet<TxnId> = BTreeSet::new();
        for (index, op) in ops.iter().enumerate() {
            if terminated.contains(&op.txn) {
                if op.kind.is_terminator() {
                    return Err(HistoryError::DuplicateTermination { txn: op.txn, index });
                }
                return Err(HistoryError::ActionAfterTermination { txn: op.txn, index });
            }
            if op.kind.is_terminator() {
                terminated.insert(op.txn);
            }
        }
        Ok(History { ops })
    }

    /// Build a history without validation.  Intended for engine recorders
    /// that guarantee well-formedness by construction.
    pub fn from_ops_unchecked(ops: Vec<Op>) -> Self {
        History { ops }
    }

    /// Parse the paper's shorthand notation, e.g.
    /// `"r1[x=50] w1[x=10] r2[x=10] c2 c1"`.
    pub fn parse(text: &str) -> Result<Self, notation::NotationError> {
        notation::parse_history(text)
    }

    /// The operations of the history, in order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the history contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// All transactions that appear in the history, in id order.
    pub fn transactions(&self) -> Vec<TxnId> {
        let set: BTreeSet<TxnId> = self.ops.iter().map(|op| op.txn).collect();
        set.into_iter().collect()
    }

    /// The outcome of each transaction.
    pub fn outcomes(&self) -> BTreeMap<TxnId, TxnOutcome> {
        let mut map: BTreeMap<TxnId, TxnOutcome> = BTreeMap::new();
        for op in &self.ops {
            let entry = map.entry(op.txn).or_insert(TxnOutcome::Active);
            match op.kind {
                OpKind::Commit => *entry = TxnOutcome::Committed,
                OpKind::Abort => *entry = TxnOutcome::Aborted,
                _ => {}
            }
        }
        map
    }

    /// The outcome of a single transaction (Active if it never appears).
    pub fn outcome(&self, txn: TxnId) -> TxnOutcome {
        self.outcomes()
            .get(&txn)
            .copied()
            .unwrap_or(TxnOutcome::Active)
    }

    /// Transactions that committed.
    pub fn committed(&self) -> Vec<TxnId> {
        self.outcomes()
            .into_iter()
            .filter(|(_, o)| *o == TxnOutcome::Committed)
            .map(|(t, _)| t)
            .collect()
    }

    /// Transactions that aborted.
    pub fn aborted(&self) -> Vec<TxnId> {
        self.outcomes()
            .into_iter()
            .filter(|(_, o)| *o == TxnOutcome::Aborted)
            .map(|(t, _)| t)
            .collect()
    }

    /// True when every transaction in the history has committed or aborted.
    pub fn is_complete(&self) -> bool {
        self.outcomes().values().all(|o| *o != TxnOutcome::Active)
    }

    /// The operations of one transaction, in history order, with their
    /// indices.
    pub fn ops_of(&self, txn: TxnId) -> Vec<(usize, &Op)> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.txn == txn)
            .collect()
    }

    /// Index of the commit/abort of `txn`, if present.
    pub fn termination_index(&self, txn: TxnId) -> Option<usize> {
        self.ops
            .iter()
            .position(|op| op.txn == txn && op.kind.is_terminator())
    }

    /// All data items referenced anywhere in the history.
    pub fn items(&self) -> BTreeSet<Item> {
        self.ops
            .iter()
            .filter_map(|op| op.item().cloned())
            .collect()
    }

    /// All predicates read anywhere in the history.
    pub fn predicates(&self) -> BTreeSet<Predicate> {
        self.ops
            .iter()
            .filter_map(|op| op.predicate().cloned())
            .collect()
    }

    /// Restrict the history to the actions of committed transactions
    /// (the projection used when building the dependency graph,
    /// Section 2.1).
    pub fn committed_projection(&self) -> History {
        let committed: BTreeSet<TxnId> = self.committed().into_iter().collect();
        History {
            ops: self
                .ops
                .iter()
                .filter(|op| committed.contains(&op.txn))
                .cloned()
                .collect(),
        }
    }

    /// A serial history over the same transactions in the given order:
    /// each transaction's actions run back-to-back.
    pub fn serialize_in_order(&self, order: &[TxnId]) -> History {
        let mut ops = Vec::with_capacity(self.ops.len());
        for txn in order {
            ops.extend(self.ops_of(*txn).into_iter().map(|(_, op)| op.clone()));
        }
        History { ops }
    }

    /// True if the history is serial: transactions execute one at a time,
    /// with no interleaving.
    pub fn is_serial(&self) -> bool {
        let mut seen_terminated: BTreeSet<TxnId> = BTreeSet::new();
        let mut current: Option<TxnId> = None;
        for op in &self.ops {
            match current {
                Some(t) if t == op.txn => {
                    if op.kind.is_terminator() {
                        seen_terminated.insert(t);
                        current = None;
                    }
                }
                Some(_) => return false,
                None => {
                    if seen_terminated.contains(&op.txn) {
                        return false;
                    }
                    if op.kind.is_terminator() {
                        seen_terminated.insert(op.txn);
                    } else {
                        current = Some(op.txn);
                    }
                }
            }
        }
        true
    }

    /// Append another history's operations (used by recorders that stitch
    /// phases together).  No validation is performed.
    pub fn concat(&self, other: &History) -> History {
        let mut ops = self.ops.clone();
        ops.extend(other.ops.iter().cloned());
        History { ops }
    }

    /// Render in the paper's shorthand notation.
    pub fn to_notation(&self) -> String {
        notation::format_history(self)
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_notation())
    }
}

impl IntoIterator for History {
    type Item = Op;
    type IntoIter = std::vec::IntoIter<Op>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.into_iter()
    }
}

impl<'a> IntoIterator for &'a History {
    type Item = &'a Op;
    type IntoIter = std::slice::Iter<'a, Op>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

/// Incremental builder for histories, convenient in tests and recorders.
///
/// ```
/// use critique_history::prelude::*;
///
/// let h = HistoryBuilder::new()
///     .read(1, "x")
///     .write(1, "x")
///     .commit(1)
///     .build()
///     .unwrap();
/// assert_eq!(h.len(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct HistoryBuilder {
    ops: Vec<Op>,
}

impl HistoryBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an arbitrary operation.
    pub fn op(mut self, op: Op) -> Self {
        self.ops.push(op);
        self
    }

    /// Append `r txn[item]`.
    pub fn read(self, txn: u32, item: impl Into<Item>) -> Self {
        self.op(Op::read(txn, item))
    }

    /// Append `r txn[item=value]`.
    pub fn read_v(self, txn: u32, item: impl Into<Item>, value: i64) -> Self {
        self.op(Op::read(txn, item).with_value(value))
    }

    /// Append `w txn[item]`.
    pub fn write(self, txn: u32, item: impl Into<Item>) -> Self {
        self.op(Op::write(txn, item))
    }

    /// Append `w txn[item=value]`.
    pub fn write_v(self, txn: u32, item: impl Into<Item>, value: i64) -> Self {
        self.op(Op::write(txn, item).with_value(value))
    }

    /// Append a predicate read `r txn[P]`.
    pub fn predicate_read(self, txn: u32, predicate: impl Into<Predicate>) -> Self {
        self.op(Op::predicate_read(txn, predicate))
    }

    /// Append a write that inserts a new item into `predicate`.
    pub fn insert_into(
        self,
        txn: u32,
        item: impl Into<Item>,
        predicate: impl Into<Predicate>,
    ) -> Self {
        self.op(Op::write(txn, item).inserting_into(predicate))
    }

    /// Append a write that mutates an item already covered by `predicate`.
    pub fn write_in(
        self,
        txn: u32,
        item: impl Into<Item>,
        predicate: impl Into<Predicate>,
    ) -> Self {
        self.op(Op::write(txn, item).mutating_in(predicate))
    }

    /// Append a cursor read `rc txn[item]`.
    pub fn cursor_read(self, txn: u32, item: impl Into<Item>) -> Self {
        self.op(Op::cursor_read(txn, item))
    }

    /// Append a cursor write `wc txn[item]`.
    pub fn cursor_write(self, txn: u32, item: impl Into<Item>) -> Self {
        self.op(Op::cursor_write(txn, item))
    }

    /// Append `c txn`.
    pub fn commit(self, txn: u32) -> Self {
        self.op(Op::commit(txn))
    }

    /// Append `a txn`.
    pub fn abort(self, txn: u32) -> Self {
        self.op(Op::abort(txn))
    }

    /// Finish, validating well-formedness.
    pub fn build(self) -> Result<History, HistoryError> {
        History::new(self.ops)
    }

    /// Finish without validation.
    pub fn build_unchecked(self) -> History {
        History::from_ops_unchecked(self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h1() -> History {
        History::parse("r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1").unwrap()
    }

    #[test]
    fn transactions_and_outcomes() {
        let h = h1();
        assert_eq!(h.transactions(), vec![TxnId(1), TxnId(2)]);
        assert_eq!(h.outcome(TxnId(1)), TxnOutcome::Committed);
        assert_eq!(h.outcome(TxnId(2)), TxnOutcome::Committed);
        assert_eq!(h.outcome(TxnId(9)), TxnOutcome::Active);
        assert!(h.is_complete());
        assert_eq!(h.committed().len(), 2);
        assert!(h.aborted().is_empty());
    }

    #[test]
    fn aborted_and_active_transactions() {
        let h = History::parse("w1[x] r2[x] a1").unwrap();
        assert_eq!(h.outcome(TxnId(1)), TxnOutcome::Aborted);
        assert_eq!(h.outcome(TxnId(2)), TxnOutcome::Active);
        assert!(!h.is_complete());
        assert_eq!(h.aborted(), vec![TxnId(1)]);
    }

    #[test]
    fn rejects_action_after_commit() {
        let err = HistoryBuilder::new()
            .read(1, "x")
            .commit(1)
            .write(1, "y")
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            HistoryError::ActionAfterTermination {
                txn: TxnId(1),
                index: 2
            }
        ));
        assert!(err.to_string().contains("T1"));
    }

    #[test]
    fn rejects_duplicate_commit() {
        let err = HistoryBuilder::new()
            .read(1, "x")
            .commit(1)
            .commit(1)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            HistoryError::DuplicateTermination {
                txn: TxnId(1),
                index: 2
            }
        ));
    }

    #[test]
    fn ops_of_and_termination_index() {
        let h = h1();
        let t1_ops = h.ops_of(TxnId(1));
        assert_eq!(t1_ops.len(), 5);
        assert_eq!(t1_ops[0].0, 0);
        assert_eq!(h.termination_index(TxnId(2)), Some(4));
        assert_eq!(h.termination_index(TxnId(1)), Some(7));
    }

    #[test]
    fn items_and_predicates() {
        let h = History::parse("r1[P] w2[insert y to P] r2[z] w2[z] c2 r1[z] c1").unwrap();
        let items = h.items();
        assert!(items.contains(&Item::new("y")));
        assert!(items.contains(&Item::new("z")));
        assert_eq!(h.predicates().len(), 1);
    }

    #[test]
    fn committed_projection_drops_aborted_and_active() {
        let h = History::parse("w1[x] r2[x] w3[y] a1 c2").unwrap();
        let proj = h.committed_projection();
        assert_eq!(proj.transactions(), vec![TxnId(2)]);
        assert_eq!(proj.len(), 2);
    }

    #[test]
    fn serial_detection() {
        let serial = History::parse("r1[x] w1[y] c1 r2[y] c2").unwrap();
        assert!(serial.is_serial());
        let interleaved = h1();
        assert!(!interleaved.is_serial());
        // Returning to an earlier transaction after it terminated is not serial.
        let weird = History::parse("r1[x] c1 r2[y] c2").unwrap();
        assert!(weird.is_serial());
    }

    #[test]
    fn serialize_in_order_produces_serial_history() {
        let h = h1();
        let serial = h.serialize_in_order(&[TxnId(2), TxnId(1)]);
        assert!(serial.is_serial());
        assert_eq!(serial.len(), h.len());
        assert_eq!(serial.ops()[0].txn, TxnId(2));
    }

    #[test]
    fn concat_appends() {
        let a = History::parse("r1[x]").unwrap();
        let b = History::parse("c1").unwrap();
        let joined = a.concat(&b);
        assert_eq!(joined.len(), 2);
        assert!(joined.is_complete());
    }

    #[test]
    fn display_round_trip() {
        let h = h1();
        let reparsed = History::parse(&h.to_string()).unwrap();
        assert_eq!(h, reparsed);
    }

    #[test]
    fn iteration() {
        let h = History::parse("r1[x] c1").unwrap();
        assert_eq!((&h).into_iter().count(), 2);
        assert_eq!(h.into_iter().count(), 2);
    }
}
