//! Conflicts, dependency graphs, and cycle detection.
//!
//! Two actions in a history *conflict* if they are performed by distinct
//! transactions on the same data item and at least one of them is a write
//! (Section 2.1).  Conflicting actions can also occur on a set of data items
//! covered by a predicate: a predicate read conflicts with any write that
//! inserts, updates, or deletes an item covered by that predicate.
//!
//! The dependency graph has the committed transactions as nodes and an edge
//! T1 → T2 whenever some action of T1 conflicts with and precedes an action
//! of T2.  A history is (conflict-)serializable iff this graph is acyclic.

use crate::history::History;
use crate::op::{Op, OpKind, TxnId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The flavour of a conflict between two operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum ConflictKind {
    /// Write followed by a read of the same item (wr: T2 reads T1's write).
    WriteRead,
    /// Read followed by a write of the same item (rw anti-dependency).
    ReadWrite,
    /// Write followed by a write of the same item (ww).
    WriteWrite,
    /// Predicate read followed by a write affecting the predicate
    /// (predicate rw anti-dependency — the phantom conflict).
    PredicateReadWrite,
    /// Write affecting a predicate followed by a read of that predicate
    /// (predicate wr dependency).
    WritePredicateRead,
}

impl fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConflictKind::WriteRead => "wr",
            ConflictKind::ReadWrite => "rw",
            ConflictKind::WriteWrite => "ww",
            ConflictKind::PredicateReadWrite => "rw(P)",
            ConflictKind::WritePredicateRead => "wr(P)",
        };
        write!(f, "{s}")
    }
}

/// A conflict between two operations at specific positions in a history.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Conflict {
    /// Index of the earlier operation.
    pub first_index: usize,
    /// Index of the later operation.
    pub second_index: usize,
    /// Transaction performing the earlier operation.
    pub first_txn: TxnId,
    /// Transaction performing the later operation.
    pub second_txn: TxnId,
    /// The kind of conflict.
    pub kind: ConflictKind,
    /// Human-readable description of the conflicting target (item or
    /// predicate name).
    pub target: String,
}

/// Decide whether two operations conflict, and how.
///
/// `first` must precede `second` in the history.  Returns `None` when the
/// operations do not conflict (same transaction, disjoint items, both reads,
/// or terminators).
pub fn conflict_between(first: &Op, second: &Op) -> Option<ConflictKind> {
    if first.txn == second.txn {
        return None;
    }
    if first.kind.is_terminator() || second.kind.is_terminator() {
        return None;
    }

    // Item-level conflicts (cursor ops behave as reads/writes of the item).
    if let (Some(a), Some(b)) = (first.item(), second.item()) {
        if a == b {
            match (first.is_write(), second.is_write()) {
                (true, true) => return Some(ConflictKind::WriteWrite),
                (true, false) => return Some(ConflictKind::WriteRead),
                (false, true) => return Some(ConflictKind::ReadWrite),
                (false, false) => {}
            }
        }
    }

    // Predicate read → write affecting the predicate.
    if let OpKind::PredicateRead(p) = &first.kind {
        if second.is_write() && second.affects_predicate(p) {
            return Some(ConflictKind::PredicateReadWrite);
        }
    }
    // Write affecting a predicate → later predicate read.
    if let OpKind::PredicateRead(p) = &second.kind {
        if first.is_write() && first.affects_predicate(p) {
            return Some(ConflictKind::WritePredicateRead);
        }
    }

    None
}

/// An edge of the dependency graph: `from` precedes and conflicts with `to`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Edge {
    /// Source transaction.
    pub from: TxnId,
    /// Destination transaction.
    pub to: TxnId,
    /// All conflicts contributing to this edge.
    pub conflicts: Vec<Conflict>,
}

/// The dependency graph of a history (Section 2.1).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DependencyGraph {
    nodes: BTreeSet<TxnId>,
    edges: BTreeMap<(TxnId, TxnId), Vec<Conflict>>,
}

impl DependencyGraph {
    /// Build the dependency graph over the *committed* transactions of the
    /// history, as the paper defines it.
    pub fn from_history(history: &History) -> Self {
        Self::build(history, true)
    }

    /// Build a dependency graph over *all* transactions (committed, aborted
    /// and still-active).  Useful for analysing phenomena, which — unlike
    /// anomalies — constrain histories before outcomes are known.
    pub fn from_history_all(history: &History) -> Self {
        Self::build(history, false)
    }

    fn build(history: &History, committed_only: bool) -> Self {
        let committed: BTreeSet<TxnId> = history.committed().into_iter().collect();
        let include = |txn: TxnId| !committed_only || committed.contains(&txn);

        let mut nodes: BTreeSet<TxnId> = BTreeSet::new();
        for txn in history.transactions() {
            if include(txn) {
                nodes.insert(txn);
            }
        }

        let ops = history.ops();
        let mut edges: BTreeMap<(TxnId, TxnId), Vec<Conflict>> = BTreeMap::new();
        for i in 0..ops.len() {
            for j in (i + 1)..ops.len() {
                let (a, b) = (&ops[i], &ops[j]);
                if !include(a.txn) || !include(b.txn) {
                    continue;
                }
                if let Some(kind) = conflict_between(a, b) {
                    let target = match kind {
                        ConflictKind::PredicateReadWrite => a
                            .predicate()
                            .map(|p| p.name().to_string())
                            .unwrap_or_default(),
                        ConflictKind::WritePredicateRead => b
                            .predicate()
                            .map(|p| p.name().to_string())
                            .unwrap_or_default(),
                        _ => a.item().map(|i| i.name().to_string()).unwrap_or_default(),
                    };
                    edges.entry((a.txn, b.txn)).or_default().push(Conflict {
                        first_index: i,
                        second_index: j,
                        first_txn: a.txn,
                        second_txn: b.txn,
                        kind,
                        target,
                    });
                }
            }
        }
        DependencyGraph { nodes, edges }
    }

    /// The transactions in the graph.
    pub fn nodes(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.nodes.iter().copied()
    }

    /// The edges of the graph.
    pub fn edges(&self) -> Vec<Edge> {
        self.edges
            .iter()
            .map(|((from, to), conflicts)| Edge {
                from: *from,
                to: *to,
                conflicts: conflicts.clone(),
            })
            .collect()
    }

    /// True if there is an edge `from → to`.
    pub fn has_edge(&self, from: TxnId, to: TxnId) -> bool {
        self.edges.contains_key(&(from, to))
    }

    /// All conflicts on the edge `from → to`.
    pub fn conflicts(&self, from: TxnId, to: TxnId) -> &[Conflict] {
        self.edges
            .get(&(from, to))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Find a cycle, if one exists, returned as a sequence of transactions
    /// `t0 → t1 → … → t0`.
    pub fn find_cycle(&self) -> Option<Vec<TxnId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: BTreeMap<TxnId, Color> =
            self.nodes.iter().map(|t| (*t, Color::White)).collect();
        let succ: BTreeMap<TxnId, Vec<TxnId>> = {
            let mut m: BTreeMap<TxnId, Vec<TxnId>> = BTreeMap::new();
            for (from, to) in self.edges.keys() {
                m.entry(*from).or_default().push(*to);
            }
            m
        };

        fn dfs(
            node: TxnId,
            color: &mut BTreeMap<TxnId, Color>,
            succ: &BTreeMap<TxnId, Vec<TxnId>>,
            stack: &mut Vec<TxnId>,
        ) -> Option<Vec<TxnId>> {
            color.insert(node, Color::Gray);
            stack.push(node);
            if let Some(nexts) = succ.get(&node) {
                for &next in nexts {
                    match color.get(&next).copied().unwrap_or(Color::White) {
                        Color::Gray => {
                            // Found a cycle: slice the stack from `next`.
                            let pos = stack.iter().position(|t| *t == next).unwrap_or(0);
                            let mut cycle = stack[pos..].to_vec();
                            cycle.push(next);
                            return Some(cycle);
                        }
                        Color::White => {
                            if let Some(c) = dfs(next, color, succ, stack) {
                                return Some(c);
                            }
                        }
                        Color::Black => {}
                    }
                }
            }
            stack.pop();
            color.insert(node, Color::Black);
            None
        }

        let nodes: Vec<TxnId> = self.nodes.iter().copied().collect();
        for node in nodes {
            if color.get(&node).copied() == Some(Color::White) {
                let mut stack = Vec::new();
                if let Some(c) = dfs(node, &mut color, &succ, &mut stack) {
                    return Some(c);
                }
            }
        }
        None
    }

    /// True if the graph has no cycle.
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// A topological order of the transactions (an equivalent serial order),
    /// if the graph is acyclic.
    pub fn topological_order(&self) -> Option<Vec<TxnId>> {
        let mut in_degree: BTreeMap<TxnId, usize> = self.nodes.iter().map(|t| (*t, 0)).collect();
        for (_, to) in self.edges.keys() {
            *in_degree.entry(*to).or_insert(0) += 1;
        }
        let mut ready: Vec<TxnId> = in_degree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(t, _)| *t)
            .collect();
        ready.sort();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(node) = ready.pop() {
            order.push(node);
            for ((from, to), _) in self.edges.iter() {
                if *from == node {
                    let d = in_degree.get_mut(to).expect("node present");
                    *d -= 1;
                    if *d == 0 {
                        ready.push(*to);
                    }
                }
            }
            ready.sort();
        }
        if order.len() == self.nodes.len() {
            Some(order)
        } else {
            None
        }
    }

    /// Render the graph in Graphviz DOT format (edges labelled with the
    /// conflict kinds and targets).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph dependencies {\n");
        for node in &self.nodes {
            out.push_str(&format!("  \"{node}\";\n"));
        }
        for ((from, to), conflicts) in &self.edges {
            let label = conflicts
                .iter()
                .map(|c| format!("{}[{}]", c.kind, c.target))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("  \"{from}\" -> \"{to}\" [label=\"{label}\"];\n"));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflicts_require_distinct_transactions_and_a_write() {
        let r1 = Op::read(1u32, "x");
        let r2 = Op::read(2u32, "x");
        let w1 = Op::write(1u32, "x");
        let w2 = Op::write(2u32, "x");
        assert_eq!(conflict_between(&r1, &r2), None);
        assert_eq!(conflict_between(&r1, &w1), None); // same transaction
        assert_eq!(conflict_between(&w1, &r2), Some(ConflictKind::WriteRead));
        assert_eq!(conflict_between(&r1, &w2), Some(ConflictKind::ReadWrite));
        assert_eq!(conflict_between(&w1, &w2), Some(ConflictKind::WriteWrite));
    }

    #[test]
    fn disjoint_items_do_not_conflict() {
        let w1 = Op::write(1u32, "x");
        let w2 = Op::write(2u32, "y");
        assert_eq!(conflict_between(&w1, &w2), None);
    }

    #[test]
    fn cursor_ops_conflict_like_item_ops() {
        let rc1 = Op::cursor_read(1u32, "x");
        let w2 = Op::write(2u32, "x");
        assert_eq!(conflict_between(&rc1, &w2), Some(ConflictKind::ReadWrite));
        let wc1 = Op::cursor_write(1u32, "x");
        assert_eq!(conflict_between(&wc1, &w2), Some(ConflictKind::WriteWrite));
    }

    #[test]
    fn predicate_conflicts() {
        let rp = Op::predicate_read(1u32, "P");
        let ins = Op::write(2u32, "y").inserting_into("P");
        let other = Op::write(2u32, "y").inserting_into("Q");
        assert_eq!(
            conflict_between(&rp, &ins),
            Some(ConflictKind::PredicateReadWrite)
        );
        assert_eq!(
            conflict_between(&ins, &rp),
            Some(ConflictKind::WritePredicateRead)
        );
        assert_eq!(conflict_between(&rp, &other), None);
    }

    #[test]
    fn terminators_never_conflict() {
        let c1 = Op::commit(1u32);
        let w2 = Op::write(2u32, "x");
        assert_eq!(conflict_between(&c1, &w2), None);
        assert_eq!(conflict_between(&w2, &c1), None);
    }

    #[test]
    fn h1_graph_has_cycle() {
        let h =
            History::parse("r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1").unwrap();
        let g = DependencyGraph::from_history(&h);
        assert_eq!(g.node_count(), 2);
        assert!(g.has_edge(TxnId(1), TxnId(2))); // w1[x] → r2[x]
        assert!(g.has_edge(TxnId(2), TxnId(1))); // r2[y] → w1[y]
        assert!(!g.is_acyclic());
        let cycle = g.find_cycle().unwrap();
        assert!(cycle.len() >= 3);
        assert_eq!(cycle.first(), cycle.last());
        assert!(g.topological_order().is_none());
    }

    #[test]
    fn serial_history_graph_is_acyclic_with_topo_order() {
        let h = History::parse("r1[x] w1[x] c1 r2[x] w2[y] c2").unwrap();
        let g = DependencyGraph::from_history(&h);
        assert!(g.is_acyclic());
        assert_eq!(g.topological_order().unwrap(), vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn committed_only_graph_excludes_aborted() {
        let h = History::parse("w1[x] r2[x] a1 c2").unwrap();
        let g = DependencyGraph::from_history(&h);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        let g_all = DependencyGraph::from_history_all(&h);
        assert_eq!(g_all.node_count(), 2);
        assert!(g_all.has_edge(TxnId(1), TxnId(2)));
    }

    #[test]
    fn conflicts_accessor_and_edges() {
        let h = History::parse("w1[x] r2[x] w2[x] c1 c2").unwrap();
        let g = DependencyGraph::from_history(&h);
        let cs = g.conflicts(TxnId(1), TxnId(2));
        assert_eq!(cs.len(), 2); // wr on x and ww on x
        assert!(cs.iter().any(|c| c.kind == ConflictKind::WriteRead));
        assert!(cs.iter().any(|c| c.kind == ConflictKind::WriteWrite));
        assert_eq!(g.edges().len(), 1);
        assert!(g.conflicts(TxnId(2), TxnId(1)).is_empty());
    }

    #[test]
    fn dot_output_contains_nodes_and_labels() {
        let h = History::parse("w1[x] r2[x] c1 c2").unwrap();
        let g = DependencyGraph::from_history(&h);
        let dot = g.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("\"T1\" -> \"T2\""));
        assert!(dot.contains("wr[x]"));
    }

    #[test]
    fn three_txn_cycle_detected() {
        // T1 → T2 → T3 → T1
        let h = History::parse("w1[a] r2[a] w2[b] r3[b] w3[c] r1[c] c1 c2 c3").unwrap();
        let g = DependencyGraph::from_history(&h);
        assert!(!g.is_acyclic());
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() == 4);
    }
}
