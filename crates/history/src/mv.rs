//! Multi-version (MV) histories.
//!
//! In a multi-version system, several versions of a data item may exist at
//! one time and every read must be explicit about which version it observes
//! (Section 2.2 and 4.2 of the paper; \[BHG\] Chapter 5).  The paper writes
//! versions as subscripts: `x0` is the initial version of `x`, `x1` the
//! version installed by transaction 1, and so on — e.g. history `H1.SI`:
//!
//! ```text
//! r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 r1[y0=50] w1[y1=90] c1
//! ```
//!
//! An [`MvHistory`] wraps a [`History`] whose item operations carry version
//! annotations, and exposes the reads-from structure needed for the paper's
//! MV → SV mapping (see [`crate::equivalence`]).

use crate::history::History;
use crate::item::Item;
use crate::notation::{self, NotationError};
use crate::op::{Op, OpKind, TxnId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A specific version of a data item: `x0`, `x1`, …
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct VersionId {
    /// The item.
    pub item: Item,
    /// The version number; by the paper's convention version 0 is the
    /// initial (pre-history) version and version *i* was installed by
    /// transaction *i*.
    pub version: u32,
}

impl fmt::Display for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.item, self.version)
    }
}

/// A read in an MV history together with the version it observed.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MvRead {
    /// The reading transaction.
    pub txn: TxnId,
    /// The version read.
    pub version: VersionId,
    /// Index of the read in the underlying history.
    pub index: usize,
}

/// Errors constructing an MV history.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MvError {
    /// An item read or write is missing a version annotation.
    MissingVersion {
        /// Index of the unannotated operation.
        index: usize,
    },
    /// The underlying notation failed to parse.
    Notation(NotationError),
}

impl fmt::Display for MvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MvError::MissingVersion { index } => {
                write!(f, "operation at index {index} lacks a version annotation")
            }
            MvError::Notation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MvError {}

impl From<NotationError> for MvError {
    fn from(e: NotationError) -> Self {
        MvError::Notation(e)
    }
}

/// A multi-version history.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MvHistory {
    history: History,
}

impl MvHistory {
    /// Wrap an annotated [`History`], checking that every item read and
    /// write carries a version annotation.
    pub fn new(history: History) -> Result<Self, MvError> {
        for (index, op) in history.ops().iter().enumerate() {
            let needs_version = matches!(
                op.kind,
                OpKind::Read(_) | OpKind::Write(_) | OpKind::CursorRead(_) | OpKind::CursorWrite(_)
            );
            if needs_version && op.version.is_none() {
                return Err(MvError::MissingVersion { index });
            }
        }
        Ok(MvHistory { history })
    }

    /// Parse the paper's MV notation, e.g.
    /// `"r1[x0=50] w1[x1=10] r2[x0=50] c2 c1"`.
    pub fn parse(text: &str) -> Result<Self, MvError> {
        Self::new(notation::parse_mv_history(text)?)
    }

    /// The underlying (annotated) history.
    pub fn as_history(&self) -> &History {
        &self.history
    }

    /// The operations of the history.
    pub fn ops(&self) -> &[Op] {
        self.history.ops()
    }

    /// All reads together with the versions they observed.
    pub fn reads(&self) -> Vec<MvRead> {
        self.history
            .ops()
            .iter()
            .enumerate()
            .filter_map(|(index, op)| match (&op.kind, op.version) {
                (OpKind::Read(item) | OpKind::CursorRead(item), Some(version)) => Some(MvRead {
                    txn: op.txn,
                    version: VersionId {
                        item: item.clone(),
                        version,
                    },
                    index,
                }),
                _ => None,
            })
            .collect()
    }

    /// The versions installed by each transaction, in write order.
    pub fn versions_written(&self) -> BTreeMap<TxnId, Vec<VersionId>> {
        let mut map: BTreeMap<TxnId, Vec<VersionId>> = BTreeMap::new();
        for op in self.history.ops() {
            if let (OpKind::Write(item) | OpKind::CursorWrite(item), Some(version)) =
                (&op.kind, op.version)
            {
                map.entry(op.txn).or_default().push(VersionId {
                    item: item.clone(),
                    version,
                });
            }
        }
        map
    }

    /// The transaction that installed a given version, by the convention
    /// that version *i* (for *i* > 0) is installed by transaction *i*.
    /// Returns `None` for the initial version 0.
    pub fn installer(&self, version: &VersionId) -> Option<TxnId> {
        if version.version == 0 {
            None
        } else {
            Some(TxnId(version.version))
        }
    }

    /// Check the paper's reading convention: every version a transaction
    /// reads was either the initial version (0), one of its own writes, or a
    /// version installed by a transaction that committed before the reader's
    /// first action (its start timestamp).  This is the Snapshot Isolation
    /// visibility rule; canonical SI histories satisfy it.
    pub fn obeys_snapshot_visibility(&self) -> bool {
        let ops = self.history.ops();
        // Start index of each transaction.
        let mut start: BTreeMap<TxnId, usize> = BTreeMap::new();
        for (i, op) in ops.iter().enumerate() {
            start.entry(op.txn).or_insert(i);
        }
        // Commit index of each transaction.
        let commit: BTreeMap<TxnId, usize> = self
            .history
            .transactions()
            .into_iter()
            .filter_map(|t| self.history.termination_index(t).map(|i| (t, i)))
            .collect();

        for read in self.reads() {
            if read.version.version == 0 {
                continue;
            }
            let writer = TxnId(read.version.version);
            if writer == read.txn {
                continue; // reads its own write
            }
            let reader_start = start.get(&read.txn).copied().unwrap_or(0);
            match commit.get(&writer) {
                Some(commit_idx) if *commit_idx < reader_start => {}
                _ => return false,
            }
        }
        true
    }

    /// Render in the paper's MV notation.
    pub fn to_notation(&self) -> String {
        notation::format_history(&self.history)
    }
}

impl fmt::Display for MvHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_notation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H1_SI: &str = "r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 r1[y0=50] w1[y1=90] c1";

    #[test]
    fn parses_and_round_trips_h1_si() {
        let mv = MvHistory::parse(H1_SI).unwrap();
        assert_eq!(mv.to_notation(), H1_SI);
        assert_eq!(mv.ops().len(), 8);
    }

    #[test]
    fn rejects_missing_versions() {
        let h = History::parse("r1[x=50] c1").unwrap();
        let err = MvHistory::new(h).unwrap_err();
        assert!(matches!(err, MvError::MissingVersion { index: 0 }));
        assert!(err.to_string().contains("index 0"));
    }

    #[test]
    fn reads_capture_versions() {
        let mv = MvHistory::parse(H1_SI).unwrap();
        let reads = mv.reads();
        assert_eq!(reads.len(), 4);
        assert!(
            reads.iter().all(|r| r.version.version == 0),
            "all reads in H1.SI observe initial versions"
        );
    }

    #[test]
    fn versions_written_by_transaction() {
        let mv = MvHistory::parse(H1_SI).unwrap();
        let written = mv.versions_written();
        assert_eq!(written[&TxnId(1)].len(), 2);
        assert!(!written.contains_key(&TxnId(2)));
    }

    #[test]
    fn installer_convention() {
        let mv = MvHistory::parse(H1_SI).unwrap();
        let v0 = VersionId {
            item: Item::new("x"),
            version: 0,
        };
        let v1 = VersionId {
            item: Item::new("x"),
            version: 1,
        };
        assert_eq!(mv.installer(&v0), None);
        assert_eq!(mv.installer(&v1), Some(TxnId(1)));
        assert_eq!(v1.to_string(), "x1");
    }

    #[test]
    fn h1_si_obeys_snapshot_visibility() {
        let mv = MvHistory::parse(H1_SI).unwrap();
        assert!(mv.obeys_snapshot_visibility());
    }

    #[test]
    fn reading_uncommitted_foreign_version_violates_visibility() {
        // T2 reads x1 (installed by T1) before T1 commits.
        let mv = MvHistory::parse("w1[x1=10] r2[x1=10] c2 c1").unwrap();
        assert!(!mv.obeys_snapshot_visibility());
    }

    #[test]
    fn reading_own_write_is_allowed() {
        let mv = MvHistory::parse("w1[x1=10] r1[x1=10] c1").unwrap();
        assert!(mv.obeys_snapshot_visibility());
    }

    #[test]
    fn reading_version_committed_after_start_violates_visibility() {
        // T2 starts (r2[y0]) before T1 commits, yet reads T1's version of x.
        let mv = MvHistory::parse("r2[y0=1] w1[x1=10] c1 r2[x1=10] c2").unwrap();
        assert!(!mv.obeys_snapshot_visibility());
    }
}
