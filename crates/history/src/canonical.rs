//! The canonical histories used throughout the paper.
//!
//! Each function returns exactly the history printed in the paper (values
//! included), so tests and benchmarks elsewhere in the workspace can refer
//! to "H1", "H5", etc. without re-typing the notation.

use crate::history::History;
use crate::mv::MvHistory;

/// H1 (Section 3): the classical inconsistent-analysis history.  T1
/// transfers $40 from `x` to `y` while T2 reads a total balance of 60.
/// Non-serializable, yet violates none of the strict anomalies A1, A2, A3.
///
/// ```text
/// r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1
/// ```
pub fn h1() -> History {
    History::parse("r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1")
        .expect("H1 is well-formed")
}

/// H2 (Section 3): inconsistent analysis where T1 sees a total balance of
/// 140.  Violates P2 but not A2 (no item is read twice).
///
/// ```text
/// r1[x=50] r2[x=50] w2[x=10] r2[y=50] w2[y=90] c2 r1[y=90] c1
/// ```
pub fn h2() -> History {
    History::parse("r1[x=50] r2[x=50] w2[x=10] r2[y=50] w2[y=90] c2 r1[y=90] c1")
        .expect("H2 is well-formed")
}

/// H3 (Section 3): the phantom history.  T1 reads the predicate of active
/// employees, T2 inserts a new active employee and updates the employee
/// count `z`, then T1 reads `z` and sees a discrepancy.  Violates P3 but not
/// A3 (the predicate is never re-evaluated).
///
/// ```text
/// r1[P] w2[insert y to P] r2[z] w2[z] c2 r1[z] c1
/// ```
pub fn h3() -> History {
    History::parse("r1[P] w2[insert y to P] r2[z] w2[z] c2 r1[z] c1").expect("H3 is well-formed")
}

/// H4 (Section 4.1): the lost-update history.  T2's increment of 20 is
/// overwritten by T1's increment of 30 based on a stale read.
///
/// ```text
/// r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1
/// ```
pub fn h4() -> History {
    History::parse("r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1").expect("H4 is well-formed")
}

/// The cursor-stability variant of H4 (Section 4.1): T1 holds a cursor on
/// `x`, which would block T2's intervening write; shown here as the history
/// that phenomenon P4C forbids.
///
/// ```text
/// rc1[x=100] w2[x=120] c2 wc1[x=130] c1
/// ```
pub fn h4c() -> History {
    History::parse("rc1[x=100] w2[x=120] c2 wc1[x=130] c1").expect("H4C is well-formed")
}

/// H5 (Section 4.2): write skew.  Both transactions read `x` and `y`
/// (constraint: x + y > 0), then T1 writes `y` and T2 writes `x`; both
/// commit and the constraint is violated.  Allowed by Snapshot Isolation.
///
/// ```text
/// r1[x=50] r1[y=50] r2[x=50] r2[y=50] w1[y=-40] w2[x=-40] c1 c2
/// ```
pub fn h5() -> History {
    History::parse("r1[x=50] r1[y=50] r2[x=50] r2[y=50] w1[y=-40] w2[x=-40] c1 c2")
        .expect("H5 is well-formed")
}

/// H1 executed under Snapshot Isolation (Section 4.2) — a multi-version
/// history in which both transactions read initial versions and T1 installs
/// new versions of `x` and `y`.  Its dataflow is serializable.
///
/// ```text
/// r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 r1[y0=50] w1[y1=90] c1
/// ```
pub fn h1_si() -> MvHistory {
    MvHistory::parse("r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 r1[y0=50] w1[y1=90] c1")
        .expect("H1.SI is well-formed")
}

/// The single-valued mapping of [`h1_si`] given in the paper (Section 4.2).
///
/// ```text
/// r1[x=50] r1[y=50] r2[x=50] r2[y=50] c2 w1[x=10] w1[y=90] c1
/// ```
pub fn h1_si_sv() -> History {
    History::parse("r1[x=50] r1[y=50] r2[x=50] r2[y=50] c2 w1[x=10] w1[y=90] c1")
        .expect("H1.SI.SV is well-formed")
}

/// The dirty-write constraint-violation example from Section 3's discussion
/// of P0: T1 writes 1 to both `x` and `y`, T2 writes 2 to both, and the
/// interleaving leaves x=2, y=1, violating the constraint x = y.
///
/// ```text
/// w1[x=1] w2[x=2] w2[y=2] c2 w1[y=1] c1
/// ```
pub fn dirty_write_constraint() -> History {
    History::parse("w1[x=1] w2[x=2] w2[y=2] c2 w1[y=1] c1").expect("well-formed")
}

/// The dirty-write recovery example from Section 3: after `w1[x] w2[x] a1`
/// the system cannot undo T1 by restoring its before-image without wiping
/// out T2's update.
///
/// ```text
/// w1[x] w2[x] a1
/// ```
pub fn dirty_write_recovery() -> History {
    History::parse("w1[x] w2[x] a1").expect("well-formed")
}

/// A minimal dirty-read (A1 strict) history: T2 reads T1's uncommitted
/// write and commits, then T1 aborts.
///
/// ```text
/// w1[x=10] r2[x=10] c2 a1
/// ```
pub fn dirty_read_strict() -> History {
    History::parse("w1[x=10] r2[x=10] c2 a1").expect("well-formed")
}

/// A minimal fuzzy-read (A2 strict) history: T1 rereads `x` after T2's
/// committed update and sees a different value.
///
/// ```text
/// r1[x=50] w2[x=10] c2 r1[x=10] c1
/// ```
pub fn fuzzy_read_strict() -> History {
    History::parse("r1[x=50] w2[x=10] c2 r1[x=10] c1").expect("well-formed")
}

/// A minimal phantom (A3 strict) history: T1 rereads predicate `P` after
/// T2's committed insert and sees a different set.
///
/// ```text
/// r1[P] w2[insert y to P] c2 r1[P] c1
/// ```
pub fn phantom_strict() -> History {
    History::parse("r1[P] w2[insert y to P] c2 r1[P] c1").expect("well-formed")
}

/// A minimal read-skew (A5A) history: T1 reads `x`, T2 updates `x` and `y`
/// consistently and commits, then T1 reads the new `y` — an inconsistent
/// pair.
///
/// ```text
/// r1[x=50] w2[x=10] w2[y=90] c2 r1[y=90] c1
/// ```
pub fn read_skew() -> History {
    History::parse("r1[x=50] w2[x=10] w2[y=90] c2 r1[y=90] c1").expect("well-formed")
}

/// A minimal write-skew (A5B) history in the paper's A5B shape:
/// `r1[x]...r2[y]...w1[y]...w2[x]` with both committing.
///
/// ```text
/// r1[x=50] r2[y=50] w1[y=-40] w2[x=-40] c1 c2
/// ```
pub fn write_skew() -> History {
    History::parse("r1[x=50] r2[y=50] w1[y=-40] w2[x=-40] c1 c2").expect("well-formed")
}

/// All canonical single-version histories, with their paper names.
pub fn all_named() -> Vec<(&'static str, History)> {
    vec![
        ("H1", h1()),
        ("H2", h2()),
        ("H3", h3()),
        ("H4", h4()),
        ("H4C", h4c()),
        ("H5", h5()),
        ("H1.SI.SV", h1_si_sv()),
        ("P0-constraint", dirty_write_constraint()),
        ("P0-recovery", dirty_write_recovery()),
        ("A1", dirty_read_strict()),
        ("A2", fuzzy_read_strict()),
        ("A3", phantom_strict()),
        ("A5A", read_skew()),
        ("A5B", write_skew()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::si_to_single_version;
    use crate::serializability::conflict_serializable;

    #[test]
    fn all_canonical_histories_are_well_formed_and_complete_where_expected() {
        for (name, h) in all_named() {
            assert!(!h.is_empty(), "{name} should not be empty");
            // Re-parse from notation to confirm round-trip stability.
            let reparsed = History::parse(&h.to_notation()).unwrap();
            assert_eq!(h, reparsed, "{name} should round-trip");
        }
    }

    #[test]
    fn the_inconsistent_analysis_histories_are_not_serializable() {
        for (name, h) in [("H1", h1()), ("H2", h2()), ("H3", h3()), ("H5", h5())] {
            assert!(
                !conflict_serializable(&h).is_serializable(),
                "{name} must be non-serializable"
            );
        }
    }

    #[test]
    fn h4_is_not_serializable() {
        assert!(!conflict_serializable(&h4()).is_serializable());
    }

    #[test]
    fn h1_si_maps_to_h1_si_sv() {
        assert_eq!(
            si_to_single_version(&h1_si()).to_notation(),
            h1_si_sv().to_notation()
        );
    }

    #[test]
    fn h1_si_sv_is_serializable() {
        assert!(conflict_serializable(&h1_si_sv()).is_serializable());
    }

    #[test]
    fn h1_totals_show_inconsistent_analysis() {
        // T2's reads in H1 sum to 60, not 100 — the paper's point.
        let h = h1();
        let t2_reads: i64 = h
            .ops()
            .iter()
            .filter(|op| op.txn.0 == 2 && op.is_read())
            .filter_map(|op| op.value.map(|v| v.0))
            .sum();
        assert_eq!(t2_reads, 60);
    }

    #[test]
    fn h2_totals_show_inconsistent_analysis() {
        let h = h2();
        let t1_reads: i64 = h
            .ops()
            .iter()
            .filter(|op| op.txn.0 == 1 && op.is_read())
            .filter_map(|op| op.value.map(|v| v.0))
            .sum();
        assert_eq!(t1_reads, 140);
    }

    #[test]
    fn h5_violates_the_positive_sum_constraint() {
        // Final values: x = -40 (T2), y = -40 (T1); sum is negative.
        let h = h5();
        let last = |item: &str| {
            h.ops()
                .iter()
                .rev()
                .find(|op| op.is_write() && op.item().map(|i| i.name()) == Some(item))
                .and_then(|op| op.value.map(|v| v.0))
                .unwrap()
        };
        assert!(last("x") + last("y") < 0);
    }
}
