//! Crash-point differential matrix: for a grid of seeds and crash
//! points, a workload killed mid-transaction and recovered from its
//! write-ahead directory must replay to a suffix history **byte-identical**
//! to a control run that stopped cleanly at the same transaction boundary
//! — and to the same final state.
//!
//! The per-module unit tests cover single points; this integration test is
//! the acceptance matrix from the issue: several seeds, and for each seed a
//! spread of crash transactions and every operation offset within them
//! (including 0 — crash before the doomed transaction does anything — and
//! `ops_per_txn` — crash after the last operation but before commit).

use critique_storage::GroupCommit;
use critique_workloads::RecoveryWorkload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Environment knob so CI's release-mode leg can widen the matrix:
/// `CRASH_RECOVERY_SEEDS=0,1,2,...` overrides the default seed set.
fn seeds() -> Vec<u64> {
    match std::env::var("CRASH_RECOVERY_SEEDS") {
        Ok(raw) => raw
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                s.trim()
                    .parse()
                    .expect("CRASH_RECOVERY_SEEDS entries must be u64")
            })
            .collect(),
        Err(_) => vec![1, 7, 42],
    }
}

#[test]
fn crash_point_matrix_recovers_byte_identical_histories() {
    for seed in seeds() {
        let spec = RecoveryWorkload {
            accounts: 6,
            txns: 10,
            ops_per_txn: 3,
            seed,
            ..RecoveryWorkload::default()
        };
        // Deterministically sample crash transactions across the run, and
        // exercise every operation offset at each (0..=ops_per_txn covers
        // "nothing written yet" through "written but not committed").
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x5bd1e995));
        let mut crash_txns = vec![0, spec.txns / 2, spec.txns - 1];
        crash_txns.push(rng.gen_range(1..spec.txns - 1));
        for crash_txn in crash_txns {
            for crash_op in 0..=spec.ops_per_txn {
                spec.differential(crash_txn, crash_op).assert_identical();
            }
        }
    }
}

#[test]
fn crash_point_matrix_holds_at_a_random_op_index() {
    // The issue's literal phrasing: kill the store at a *random* op index.
    // The index is drawn from a seeded rng so failures reproduce.
    for seed in seeds() {
        let spec = RecoveryWorkload {
            accounts: 8,
            txns: 12,
            ops_per_txn: 4,
            seed,
            ..RecoveryWorkload::default()
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ffee);
        let crash_txn = rng.gen_range(0..spec.txns);
        let crash_op = rng.gen_range(0..=spec.ops_per_txn);
        spec.differential(crash_txn, crash_op).assert_identical();
    }
}

#[test]
fn crash_point_matrix_holds_on_the_sharded_group_commit_layout() {
    // The composed layout from the issue: partitioned write-ahead log +
    // batched fsync.  The same crash-point grid must hold — recovery
    // merges the shards by commit timestamp and the batcher changes only
    // *when* records become durable, never *which* acked records are.
    for seed in seeds() {
        let spec = RecoveryWorkload {
            accounts: 6,
            txns: 10,
            ops_per_txn: 3,
            seed,
            shards: 4,
            group_commit: GroupCommit::On { window_micros: 50 },
        };
        let mut rng = StdRng::seed_from_u64(seed.rotate_left(17) ^ 0x5ca1ab1e);
        let crash_txn = rng.gen_range(0..spec.txns);
        for crash_op in 0..=spec.ops_per_txn {
            spec.differential(crash_txn, crash_op).assert_identical();
        }
    }
}

#[test]
fn mid_batch_crash_points_recover_exactly_the_durable_prefix() {
    // Kill *inside* a group-commit batch, on both sides of the leader's
    // fsync.  Before it, every commit caught in the batch must vanish
    // wholesale (acknowledged but not yet durable); after it, every one
    // survives.  Either way the replayed suffix is byte-identical to a
    // clean stop at the surviving boundary.
    for seed in seeds() {
        for shards in [1usize, 4] {
            let spec = RecoveryWorkload {
                accounts: 6,
                txns: 10,
                ops_per_txn: 3,
                seed,
                shards,
                group_commit: GroupCommit::On { window_micros: 0 },
            };
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b9) + shards as u64);
            let acked = rng.gen_range(1..spec.txns - 2);
            let in_batch = rng.gen_range(1..=3usize);
            for batch_fsynced in [false, true] {
                spec.differential_mid_batch(acked, in_batch, batch_fsynced)
                    .assert_identical();
            }
        }
    }
}
