//! One executable scenario per phenomenon column of Table 4.
//!
//! Each scenario drives two transactions through the exact interleaving the
//! paper uses to define the phenomenon (H1-H5 and friends) against a
//! [`Database`] at a chosen isolation level, and then decides — from the
//! *observed values and final state*, not from the paper's table — whether
//! the anomalous outcome materialised.
//!
//! When a step is refused with [`TxnError::WouldBlock`] (the locking
//! schedulers under the non-blocking policy), the scenario lets the other
//! transaction finish and then retries the blocked step, which is what a
//! real lock scheduler's wait queue would do; when both transactions are
//! blocked on each other (a deadlock), one of them is aborted.  Snapshot
//! Isolation aborts (First-Committer-Wins) and Read Consistency statement
//! restarts likewise count as "the mechanism prevented the anomaly".

use critique_core::{IsolationLevel, Phenomenon};
use critique_engine::{Database, Transaction, TxnError};
use critique_storage::{Condition, Row, RowId, RowPredicate};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether the anomalous outcome was observed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ScenarioOutcome {
    /// The anomaly materialised (e.g. an update was lost, a constraint was
    /// violated, an inconsistent total was read).
    Anomaly,
    /// The concurrency control prevented the anomaly (by blocking,
    /// aborting, or snapshotting).
    Prevented,
}

impl ScenarioOutcome {
    /// True if the anomaly occurred.
    pub fn is_anomaly(&self) -> bool {
        matches!(self, ScenarioOutcome::Anomaly)
    }
}

impl fmt::Display for ScenarioOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioOutcome::Anomaly => write!(f, "anomaly"),
            ScenarioOutcome::Prevented => write!(f, "prevented"),
        }
    }
}

/// The result of running one scenario at one isolation level.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Which scenario ran.
    pub scenario: AnomalyScenario,
    /// The isolation level it ran at.
    pub level: IsolationLevel,
    /// Whether the anomaly was observed.
    pub outcome: ScenarioOutcome,
    /// Human-readable explanation of what happened.
    pub detail: String,
}

/// The anomaly scenarios, one (or two — a plain and a cursor-protected
/// variant) per column of Table 4.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AnomalyScenario {
    /// P0: two transactions write `x` and `y` in opposite orders
    /// (constraint `x = y`).
    DirtyWrite,
    /// P1/A1: an audit reads while a transfer is uncommitted and later
    /// rolled back (history H1 with an abort).
    DirtyRead,
    /// P4C: the H4C cursor lost update.
    CursorLostUpdate,
    /// P4: the H4 lost update.
    LostUpdate,
    /// P2/A2: a non-repeatable read of a single item.
    FuzzyRead,
    /// P2 with the reader protecting the row with a cursor (Cursor
    /// Stability's "sometimes" case).
    FuzzyReadCursorProtected,
    /// P3/A3: the ANSI phantom — re-reading a predicate after a matching
    /// insert.
    PhantomAnsi,
    /// P3 as a predicate constraint violation: two transactions each insert
    /// a task after checking `SUM(hours) <= 8` (the Section 4.2 example
    /// that Snapshot Isolation does *not* prevent).
    PhantomPredicateConstraint,
    /// A5A: read skew across a committed two-item update (H2).
    ReadSkew,
    /// A5B: write skew violating `x + y > 0` (H5).
    WriteSkew,
    /// A5B with both items protected by cursors (Cursor Stability's
    /// "sometimes" case).
    WriteSkewCursorProtected,
}

impl AnomalyScenario {
    /// Every scenario.
    pub const ALL: [AnomalyScenario; 11] = [
        AnomalyScenario::DirtyWrite,
        AnomalyScenario::DirtyRead,
        AnomalyScenario::CursorLostUpdate,
        AnomalyScenario::LostUpdate,
        AnomalyScenario::FuzzyRead,
        AnomalyScenario::FuzzyReadCursorProtected,
        AnomalyScenario::PhantomAnsi,
        AnomalyScenario::PhantomPredicateConstraint,
        AnomalyScenario::ReadSkew,
        AnomalyScenario::WriteSkew,
        AnomalyScenario::WriteSkewCursorProtected,
    ];

    /// The phenomenon this scenario witnesses.
    pub fn phenomenon(&self) -> Phenomenon {
        match self {
            AnomalyScenario::DirtyWrite => Phenomenon::P0,
            AnomalyScenario::DirtyRead => Phenomenon::P1,
            AnomalyScenario::CursorLostUpdate => Phenomenon::P4C,
            AnomalyScenario::LostUpdate => Phenomenon::P4,
            AnomalyScenario::FuzzyRead | AnomalyScenario::FuzzyReadCursorProtected => {
                Phenomenon::P2
            }
            AnomalyScenario::PhantomAnsi | AnomalyScenario::PhantomPredicateConstraint => {
                Phenomenon::P3
            }
            AnomalyScenario::ReadSkew => Phenomenon::A5A,
            AnomalyScenario::WriteSkew | AnomalyScenario::WriteSkewCursorProtected => {
                Phenomenon::A5B
            }
        }
    }

    /// A short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            AnomalyScenario::DirtyWrite => "dirty write (P0)",
            AnomalyScenario::DirtyRead => "dirty read (P1)",
            AnomalyScenario::CursorLostUpdate => "cursor lost update (P4C)",
            AnomalyScenario::LostUpdate => "lost update (P4)",
            AnomalyScenario::FuzzyRead => "fuzzy read (P2)",
            AnomalyScenario::FuzzyReadCursorProtected => "fuzzy read, cursor protected (P2)",
            AnomalyScenario::PhantomAnsi => "ANSI phantom (P3/A3)",
            AnomalyScenario::PhantomPredicateConstraint => "predicate-constraint phantom (P3)",
            AnomalyScenario::ReadSkew => "read skew (A5A)",
            AnomalyScenario::WriteSkew => "write skew (A5B)",
            AnomalyScenario::WriteSkewCursorProtected => "write skew, cursor protected (A5B)",
        }
    }

    /// Run the scenario against a fresh database at the given level.
    pub fn run(&self, level: IsolationLevel) -> ScenarioResult {
        let outcome = match self {
            AnomalyScenario::DirtyWrite => dirty_write(level),
            AnomalyScenario::DirtyRead => dirty_read(level),
            AnomalyScenario::CursorLostUpdate => cursor_lost_update(level),
            AnomalyScenario::LostUpdate => lost_update(level),
            AnomalyScenario::FuzzyRead => fuzzy_read(level, false),
            AnomalyScenario::FuzzyReadCursorProtected => fuzzy_read(level, true),
            AnomalyScenario::PhantomAnsi => phantom_ansi(level),
            AnomalyScenario::PhantomPredicateConstraint => phantom_constraint(level),
            AnomalyScenario::ReadSkew => read_skew(level),
            AnomalyScenario::WriteSkew => write_skew(level, false),
            AnomalyScenario::WriteSkewCursorProtected => write_skew(level, true),
        };
        ScenarioResult {
            scenario: *self,
            level,
            outcome: outcome.0,
            detail: outcome.1,
        }
    }
}

impl fmt::Display for AnomalyScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

// ---------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------

fn accounts_db(level: IsolationLevel, x0: i64, y0: i64) -> (Database, RowId, RowId) {
    let db = Database::new(level);
    let setup = db.begin();
    let x = setup
        .insert("accounts", Row::new().with("balance", x0))
        .unwrap();
    let y = setup
        .insert("accounts", Row::new().with("balance", y0))
        .unwrap();
    setup.commit().unwrap();
    db.clear_history();
    (db, x, y)
}

fn balance(db: &Database, row: RowId) -> i64 {
    db.read_committed("accounts", row)
        .and_then(|r| r.get_int("balance"))
        .unwrap_or(0)
}

fn set_balance(t: &Transaction, row: RowId, v: i64) -> Result<(), TxnError> {
    t.update("accounts", row, Row::new().with("balance", v))
}

fn read_balance(t: &Transaction, row: RowId) -> Result<Option<i64>, TxnError> {
    Ok(t.read("accounts", row)?.and_then(|r| r.get_int("balance")))
}

/// Is the error a lock conflict under the non-blocking policy?
fn blocked<T>(result: &Result<T, TxnError>) -> bool {
    matches!(result, Err(TxnError::WouldBlock { .. }))
}

// ---------------------------------------------------------------------
// P0 — dirty write.
// ---------------------------------------------------------------------

fn dirty_write(level: IsolationLevel) -> (ScenarioOutcome, String) {
    // Constraint: x = y.  T1 writes 1 to both, T2 writes 2 to both,
    // interleaved as in the paper's Section 3 example.
    let (db, x, y) = accounts_db(level, 0, 0);
    let t1 = db.begin();
    let t2 = db.begin();

    let _ = set_balance(&t1, x, 1);
    let t2_wrote = !blocked(&set_balance(&t2, x, 2));
    if t2_wrote {
        let _ = set_balance(&t2, y, 2);
        let _ = t2.commit();
        let _ = set_balance(&t1, y, 1);
        let _ = t1.commit();
    } else {
        // T2 waits for T1: finish T1 first, then replay T2 serially.
        let _ = set_balance(&t1, y, 1);
        let _ = t1.commit();
        let _ = set_balance(&t2, x, 2);
        let _ = set_balance(&t2, y, 2);
        let _ = t2.commit();
    }
    let (fx, fy) = (balance(&db, x), balance(&db, y));
    if fx != fy {
        (
            ScenarioOutcome::Anomaly,
            format!("constraint x = y violated: x={fx}, y={fy}"),
        )
    } else {
        (
            ScenarioOutcome::Prevented,
            format!("x = y = {fx} preserved"),
        )
    }
}

// ---------------------------------------------------------------------
// P1 — dirty read.
// ---------------------------------------------------------------------

fn dirty_read(level: IsolationLevel) -> (ScenarioOutcome, String) {
    // T1 moves 40 from x to y but rolls back; the audit T2 runs in the
    // middle.  A dirty read shows up as an audited total different from 100.
    let (db, x, y) = accounts_db(level, 50, 50);
    let t1 = db.begin();
    let _ = set_balance(&t1, x, 10);

    let t2 = db.begin();
    let mut seen_x = read_balance(&t2, x);
    if blocked(&seen_x) {
        // The reader waits for the writer; T1 rolls back first.
        t1.abort().unwrap();
        seen_x = read_balance(&t2, x);
    }
    let seen_x = seen_x.unwrap_or(None).unwrap_or(0);
    let seen_y = read_balance(&t2, y).unwrap_or(None).unwrap_or(0);
    let _ = t2.commit();
    if t1.is_active() {
        let _ = set_balance(&t1, y, 90);
        t1.abort().unwrap();
    }
    let total = seen_x + seen_y;
    if total != 100 {
        (
            ScenarioOutcome::Anomaly,
            format!("audit read uncommitted data: total {total} instead of 100"),
        )
    } else {
        (
            ScenarioOutcome::Prevented,
            "audit saw the invariant total 100".to_string(),
        )
    }
}

// ---------------------------------------------------------------------
// P4C / P4 — lost updates.
// ---------------------------------------------------------------------

fn cursor_lost_update(level: IsolationLevel) -> (ScenarioOutcome, String) {
    // H4C: rc1[x=100] w2[x=120] c2 wc1[x=130] c1.
    let (db, x, _) = accounts_db(level, 100, 0);
    let all = RowPredicate::whole_table("accounts");
    let t1 = db.begin();
    let cursor = match t1.open_cursor(&all) {
        Ok(c) => c,
        Err(_) => return (ScenarioOutcome::Prevented, "cursor open blocked".into()),
    };
    let fetched = t1.fetch(cursor).ok().flatten();
    let captured = fetched
        .as_ref()
        .and_then(|(_, row)| row.get_int("balance"))
        .unwrap_or(100);

    let t2 = db.begin();
    let t2_write = set_balance(&t2, x, 120);
    let t2_committed;
    if blocked(&t2_write) {
        // Cursor Stability (and stronger): the writer waits until T1 ends.
        let _ = t1.update_current(cursor, Row::new().with("balance", captured + 30));
        let _ = t1.commit();
        let _ = set_balance(&t2, x, 120);
        t2_committed = t2.commit().is_ok();
    } else {
        t2_committed = t2.commit().is_ok();
        let positioned = t1.update_current(cursor, Row::new().with("balance", captured + 30));
        match positioned {
            Ok(()) => {
                let _ = t1.commit();
            }
            Err(_) => {
                // Stale-cursor restart or block: the anomaly is prevented.
                let _ = t1.commit();
            }
        }
    }
    let final_balance = balance(&db, x);
    if t2_committed && final_balance == captured + 30 {
        (
            ScenarioOutcome::Anomaly,
            format!("T2's committed write of 120 was lost; final balance {final_balance}"),
        )
    } else {
        (
            ScenarioOutcome::Prevented,
            format!("no blind overwrite; final balance {final_balance}"),
        )
    }
}

fn lost_update(level: IsolationLevel) -> (ScenarioOutcome, String) {
    // H4: r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1.
    let (db, x, _) = accounts_db(level, 100, 0);
    let t1 = db.begin();
    let t2 = db.begin();
    let r1 = read_balance(&t1, x).unwrap_or(None).unwrap_or(100);
    let r2 = read_balance(&t2, x).unwrap_or(None).unwrap_or(100);

    let w2 = set_balance(&t2, x, r2 + 20);
    let mut t2_committed = false;
    if blocked(&w2) {
        // T2 waits on T1's long read lock; T1 finishes first.
        let w1 = set_balance(&t1, x, r1 + 30);
        if blocked(&w1) {
            // Mutual block (both hold read locks): deadlock — abort T2.
            t2.abort().unwrap();
            let _ = set_balance(&t1, x, r1 + 30);
            let _ = t1.commit();
        } else {
            let _ = t1.commit();
            let _ = set_balance(&t2, x, r2 + 20);
            t2_committed = t2.commit().is_ok();
        }
    } else {
        t2_committed = t2.commit().is_ok();
        let w1 = set_balance(&t1, x, r1 + 30);
        if !blocked(&w1) {
            let _ = t1.commit();
        } else {
            let _ = t1.abort();
        }
    }
    let final_balance = balance(&db, x);
    if t2_committed && final_balance == r1 + 30 {
        (
            ScenarioOutcome::Anomaly,
            format!("T2's increment lost: final balance {final_balance} reflects only T1"),
        )
    } else {
        (
            ScenarioOutcome::Prevented,
            format!("both increments preserved or conflict resolved; final {final_balance}"),
        )
    }
}

// ---------------------------------------------------------------------
// P2 — fuzzy read (plain and cursor-protected).
// ---------------------------------------------------------------------

fn fuzzy_read(level: IsolationLevel, through_cursor: bool) -> (ScenarioOutcome, String) {
    let (db, x, y) = accounts_db(level, 50, 50);
    let all = RowPredicate::whole_table("accounts");
    let t1 = db.begin();

    // First read of x, optionally holding the row with a cursor.
    let (first, cursor) = if through_cursor {
        let c = match t1.open_cursor(&all) {
            Ok(c) => c,
            Err(_) => return (ScenarioOutcome::Prevented, "cursor open blocked".into()),
        };
        let v = t1
            .fetch(c)
            .ok()
            .flatten()
            .and_then(|(_, row)| row.get_int("balance"))
            .unwrap_or(50);
        (v, Some(c))
    } else {
        (read_balance(&t1, x).unwrap_or(None).unwrap_or(50), None)
    };

    // T2 transfers 40 from x to y and commits.
    let t2 = db.begin();
    let moved = set_balance(&t2, x, 10);
    if blocked(&moved) {
        // The writer waits until T1 commits: reads stayed repeatable.
        let second = if let Some(c) = cursor {
            let _ = c;
            first
        } else {
            read_balance(&t1, x).unwrap_or(None).unwrap_or(first)
        };
        let _ = t1.commit();
        let _ = set_balance(&t2, x, 10);
        let _ = set_balance(&t2, y, 90);
        let _ = t2.commit();
        return if second == first {
            (
                ScenarioOutcome::Prevented,
                format!("both reads returned {first}"),
            )
        } else {
            (
                ScenarioOutcome::Anomaly,
                format!("re-read changed from {first} to {second}"),
            )
        };
    }
    let _ = set_balance(&t2, y, 90);
    let _ = t2.commit();

    // T1 re-reads x.
    let second = read_balance(&t1, x).unwrap_or(None).unwrap_or(first);
    let _ = t1.commit();
    if second != first {
        (
            ScenarioOutcome::Anomaly,
            format!("re-read changed from {first} to {second}"),
        )
    } else {
        (
            ScenarioOutcome::Prevented,
            format!("both reads returned {first}"),
        )
    }
}

// ---------------------------------------------------------------------
// P3 — phantoms.
// ---------------------------------------------------------------------

fn employees_db(level: IsolationLevel) -> (Database, RowPredicate) {
    let db = Database::new(level);
    let setup = db.begin();
    setup
        .insert(
            "employees",
            Row::new().with("active", true).with("value", 1),
        )
        .unwrap();
    setup
        .insert(
            "employees",
            Row::new().with("active", false).with("value", 1),
        )
        .unwrap();
    setup.commit().unwrap();
    db.clear_history();
    (
        db,
        RowPredicate::new("employees", Condition::eq("active", true)),
    )
}

fn phantom_ansi(level: IsolationLevel) -> (ScenarioOutcome, String) {
    let (db, active) = employees_db(level);
    let t1 = db.begin();
    let first = match t1.read_where(&active) {
        Ok(rows) => rows.len(),
        Err(_) => return (ScenarioOutcome::Prevented, "predicate read blocked".into()),
    };

    let t2 = db.begin();
    let insert = t2.insert(
        "employees",
        Row::new().with("active", true).with("value", 1),
    );
    if blocked(&insert) {
        // SERIALIZABLE: the insert waits for the predicate lock.
        let second = t1.read_where(&active).map(|r| r.len()).unwrap_or(first);
        let _ = t1.commit();
        let _ = t2.insert(
            "employees",
            Row::new().with("active", true).with("value", 1),
        );
        let _ = t2.commit();
        return if second == first {
            (
                ScenarioOutcome::Prevented,
                format!("both scans returned {first} rows"),
            )
        } else {
            (
                ScenarioOutcome::Anomaly,
                format!("scan grew from {first} to {second} rows"),
            )
        };
    }
    let _ = t2.commit();
    let second = t1.read_where(&active).map(|r| r.len()).unwrap_or(first);
    let _ = t1.commit();
    if second != first {
        (
            ScenarioOutcome::Anomaly,
            format!("phantom appeared: scan grew from {first} to {second} rows"),
        )
    } else {
        (
            ScenarioOutcome::Prevented,
            format!("both scans returned {first} rows"),
        )
    }
}

fn phantom_constraint(level: IsolationLevel) -> (ScenarioOutcome, String) {
    // Constraint: the tasks matching the predicate may not exceed 8 hours
    // in total.  Both transactions check (sum = 7) and insert a one-hour
    // task (the Section 4.2 scenario Snapshot Isolation does not prevent).
    let db = Database::new(level);
    let setup = db.begin();
    setup
        .insert(
            "tasks",
            Row::new().with("project", "apollo").with("hours", 7),
        )
        .unwrap();
    setup.commit().unwrap();
    db.clear_history();
    let apollo = RowPredicate::new("tasks", Condition::eq("project", "apollo"));

    let t1 = db.begin();
    let t2 = db.begin();
    let sum1 = t1.sum_where(&apollo, "hours").unwrap_or(7);
    let sum2 = t2.sum_where(&apollo, "hours").unwrap_or(7);

    let insert = |t: &Transaction, sum: i64| -> bool {
        if sum + 1 > 8 {
            return false; // the application itself refuses
        }
        let attempt = t.insert(
            "tasks",
            Row::new().with("project", "apollo").with("hours", 1),
        );
        if blocked(&attempt) {
            false
        } else {
            t.commit().is_ok()
        }
    };
    let first_inserted = insert(&t1, sum1);
    let second_inserted = insert(&t2, sum2);
    let _ = (first_inserted, second_inserted);

    let final_sum = db.sum_committed(&apollo, "hours");
    if final_sum > 8 {
        (
            ScenarioOutcome::Anomaly,
            format!("constraint SUM(hours) <= 8 violated: {final_sum}"),
        )
    } else {
        (
            ScenarioOutcome::Prevented,
            format!("constraint holds: SUM(hours) = {final_sum}"),
        )
    }
}

// ---------------------------------------------------------------------
// A5A — read skew.
// ---------------------------------------------------------------------

fn read_skew(level: IsolationLevel) -> (ScenarioOutcome, String) {
    let (db, x, y) = accounts_db(level, 50, 50);
    let t1 = db.begin();
    let seen_x = read_balance(&t1, x).unwrap_or(None).unwrap_or(50);

    let t2 = db.begin();
    let moved = set_balance(&t2, x, 10);
    if blocked(&moved) {
        // REPEATABLE READ and stronger: the transfer waits for the reader.
        let seen_y = read_balance(&t1, y).unwrap_or(None).unwrap_or(50);
        let _ = t1.commit();
        let _ = set_balance(&t2, x, 10);
        let _ = set_balance(&t2, y, 90);
        let _ = t2.commit();
        return if seen_x + seen_y == 100 {
            (
                ScenarioOutcome::Prevented,
                "reader saw a consistent total of 100".into(),
            )
        } else {
            (
                ScenarioOutcome::Anomaly,
                format!("reader saw inconsistent total {}", seen_x + seen_y),
            )
        };
    }
    let _ = set_balance(&t2, y, 90);
    let _ = t2.commit();
    let seen_y = read_balance(&t1, y).unwrap_or(None).unwrap_or(50);
    let _ = t1.commit();
    let total = seen_x + seen_y;
    if total != 100 {
        (
            ScenarioOutcome::Anomaly,
            format!("reader saw old x and new y: total {total}"),
        )
    } else {
        (
            ScenarioOutcome::Prevented,
            "reader saw a consistent total of 100".into(),
        )
    }
}

// ---------------------------------------------------------------------
// A5B — write skew (plain and cursor-protected).
// ---------------------------------------------------------------------

fn write_skew(level: IsolationLevel, through_cursors: bool) -> (ScenarioOutcome, String) {
    // Constraint: x + y > 0 (each starts at 50; each transaction withdraws
    // 90 from one account after checking the combined balance).
    let (db, x, y) = accounts_db(level, 50, 50);
    let t1 = db.begin();
    let t2 = db.begin();

    let read_both = |t: &Transaction| -> Result<i64, TxnError> {
        if through_cursors {
            let all = RowPredicate::whole_table("accounts");
            let cx = t.open_cursor(&all)?;
            let first = t
                .fetch(cx)?
                .and_then(|(_, r)| r.get_int("balance"))
                .unwrap_or(50);
            let cy = t.open_cursor(&all)?;
            t.fetch(cy)?;
            let second = t
                .fetch(cy)?
                .and_then(|(_, r)| r.get_int("balance"))
                .unwrap_or(50);
            Ok(first + second)
        } else {
            let a = t
                .read("accounts", x)?
                .and_then(|r| r.get_int("balance"))
                .unwrap_or(50);
            let b = t
                .read("accounts", y)?
                .and_then(|r| r.get_int("balance"))
                .unwrap_or(50);
            Ok(a + b)
        }
    };

    let sum1 = match read_both(&t1) {
        Ok(s) => s,
        Err(_) => return (ScenarioOutcome::Prevented, "reads blocked".into()),
    };
    let sum2 = match read_both(&t2) {
        Ok(s) => s,
        Err(_) => {
            // T2 cannot even read: finish T1 serially; no skew possible.
            if sum1 - 90 > 0 {
                let _ = set_balance(&t1, y, 50 - 90);
                let _ = t1.commit();
            }
            return (ScenarioOutcome::Prevented, "second reader blocked".into());
        }
    };

    let withdraw = |t: &Transaction, from: RowId, sum: i64| -> bool {
        if sum - 90 <= 0 {
            return false;
        }
        let attempt = set_balance(t, from, 50 - 90);
        if blocked(&attempt) {
            let _ = t.abort();
            false
        } else {
            t.commit().is_ok()
        }
    };
    let w1 = withdraw(&t1, y, sum1);
    let w2 = withdraw(&t2, x, sum2);
    let _ = (w1, w2);

    let final_sum = balance(&db, x) + balance(&db, y);
    if final_sum <= 0 {
        (
            ScenarioOutcome::Anomaly,
            format!("constraint x + y > 0 violated: {final_sum}"),
        )
    } else {
        (
            ScenarioOutcome::Prevented,
            format!("constraint holds: x + y = {final_sum}"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use IsolationLevel::*;
    use ScenarioOutcome::*;

    fn outcome(scenario: AnomalyScenario, level: IsolationLevel) -> ScenarioOutcome {
        scenario.run(level).outcome
    }

    #[test]
    fn dirty_write_only_at_degree0() {
        assert_eq!(outcome(AnomalyScenario::DirtyWrite, Degree0), Anomaly);
        for level in [
            ReadUncommitted,
            ReadCommitted,
            RepeatableRead,
            SnapshotIsolation,
            Serializable,
        ] {
            assert_eq!(
                outcome(AnomalyScenario::DirtyWrite, level),
                Prevented,
                "{level}"
            );
        }
    }

    #[test]
    fn dirty_read_only_below_read_committed() {
        assert_eq!(
            outcome(AnomalyScenario::DirtyRead, ReadUncommitted),
            Anomaly
        );
        for level in [
            ReadCommitted,
            CursorStability,
            RepeatableRead,
            SnapshotIsolation,
            OracleReadConsistency,
            Serializable,
        ] {
            assert_eq!(
                outcome(AnomalyScenario::DirtyRead, level),
                Prevented,
                "{level}"
            );
        }
    }

    #[test]
    fn lost_updates_match_table4() {
        for level in [
            ReadUncommitted,
            ReadCommitted,
            CursorStability,
            OracleReadConsistency,
        ] {
            assert_eq!(
                outcome(AnomalyScenario::LostUpdate, level),
                Anomaly,
                "{level}"
            );
        }
        for level in [RepeatableRead, SnapshotIsolation, Serializable] {
            assert_eq!(
                outcome(AnomalyScenario::LostUpdate, level),
                Prevented,
                "{level}"
            );
        }
    }

    #[test]
    fn cursor_lost_updates_match_table4() {
        for level in [ReadUncommitted, ReadCommitted] {
            assert_eq!(
                outcome(AnomalyScenario::CursorLostUpdate, level),
                Anomaly,
                "{level}"
            );
        }
        for level in [
            CursorStability,
            RepeatableRead,
            SnapshotIsolation,
            OracleReadConsistency,
            Serializable,
        ] {
            assert_eq!(
                outcome(AnomalyScenario::CursorLostUpdate, level),
                Prevented,
                "{level}"
            );
        }
    }

    #[test]
    fn fuzzy_reads_match_table4() {
        for level in [
            ReadUncommitted,
            ReadCommitted,
            CursorStability,
            OracleReadConsistency,
        ] {
            assert_eq!(
                outcome(AnomalyScenario::FuzzyRead, level),
                Anomaly,
                "{level}"
            );
        }
        for level in [RepeatableRead, SnapshotIsolation, Serializable] {
            assert_eq!(
                outcome(AnomalyScenario::FuzzyRead, level),
                Prevented,
                "{level}"
            );
        }
        // The cursor-protected variant is what Cursor Stability prevents.
        assert_eq!(
            outcome(AnomalyScenario::FuzzyReadCursorProtected, CursorStability),
            Prevented
        );
        assert_eq!(
            outcome(AnomalyScenario::FuzzyReadCursorProtected, ReadCommitted),
            Anomaly
        );
    }

    #[test]
    fn ansi_phantoms_match_table4() {
        for level in [
            ReadUncommitted,
            ReadCommitted,
            CursorStability,
            RepeatableRead,
            OracleReadConsistency,
        ] {
            assert_eq!(
                outcome(AnomalyScenario::PhantomAnsi, level),
                Anomaly,
                "{level}"
            );
        }
        for level in [SnapshotIsolation, Serializable] {
            assert_eq!(
                outcome(AnomalyScenario::PhantomAnsi, level),
                Prevented,
                "{level}"
            );
        }
    }

    #[test]
    fn predicate_constraint_phantoms_catch_snapshot_isolation() {
        assert_eq!(
            outcome(
                AnomalyScenario::PhantomPredicateConstraint,
                SnapshotIsolation
            ),
            Anomaly
        );
        assert_eq!(
            outcome(AnomalyScenario::PhantomPredicateConstraint, RepeatableRead),
            Anomaly
        );
        assert_eq!(
            outcome(AnomalyScenario::PhantomPredicateConstraint, Serializable),
            Prevented
        );
    }

    #[test]
    fn read_skew_matches_table4() {
        for level in [
            ReadUncommitted,
            ReadCommitted,
            CursorStability,
            OracleReadConsistency,
        ] {
            assert_eq!(
                outcome(AnomalyScenario::ReadSkew, level),
                Anomaly,
                "{level}"
            );
        }
        for level in [RepeatableRead, SnapshotIsolation, Serializable] {
            assert_eq!(
                outcome(AnomalyScenario::ReadSkew, level),
                Prevented,
                "{level}"
            );
        }
    }

    #[test]
    fn write_skew_matches_table4() {
        for level in [
            ReadUncommitted,
            ReadCommitted,
            CursorStability,
            SnapshotIsolation,
            OracleReadConsistency,
        ] {
            assert_eq!(
                outcome(AnomalyScenario::WriteSkew, level),
                Anomaly,
                "{level}"
            );
        }
        for level in [RepeatableRead, Serializable] {
            assert_eq!(
                outcome(AnomalyScenario::WriteSkew, level),
                Prevented,
                "{level}"
            );
        }
        // Protecting both rows with cursors makes Cursor Stability prevent it.
        assert_eq!(
            outcome(AnomalyScenario::WriteSkewCursorProtected, CursorStability),
            Prevented
        );
        assert_eq!(
            outcome(AnomalyScenario::WriteSkewCursorProtected, ReadCommitted),
            Anomaly
        );
    }

    #[test]
    fn serializable_prevents_every_scenario() {
        for scenario in AnomalyScenario::ALL {
            assert_eq!(outcome(scenario, Serializable), Prevented, "{scenario}");
        }
    }

    #[test]
    fn scenario_metadata_is_consistent() {
        for scenario in AnomalyScenario::ALL {
            assert!(!scenario.name().is_empty());
            let result = scenario.run(IsolationLevel::Serializable);
            assert_eq!(result.scenario, scenario);
            assert_eq!(result.level, IsolationLevel::Serializable);
            assert!(!result.detail.is_empty());
        }
    }
}
