//! Thread-count scaling sweep over [`MixedWorkload`].
//!
//! The sharded substrate exists so that the Section 4.2 throughput claims
//! measure the concurrency-control disciplines rather than three global
//! mutexes.  This module makes that refactor's win *measured, not
//! asserted*: it runs the same workload at 1, 2, 4, 8, … worker threads and
//! reports committed-transaction throughput per point, for the sharded
//! substrate and (optionally) for the `shards = 1` configuration that
//! reproduces the old global-lock layout as a baseline.
//!
//! The sweep is meant to run with non-zero
//! [`MixedWorkload::think_micros`]: with client think time between
//! statements, a single worker is latency-bound, and throughput grows with
//! the worker count exactly as far as the substrate lets transactions
//! overlap — including on a single CPU, where raw parallel speedup is not
//! available but concurrency overlap still is.
//!
//! [`ScalingReport::to_json`] renders one sweep as hand-rolled JSON (the
//! offline build ships a no-op `serde` shim); [`ScalingSuite`] bundles the
//! per-isolation-level sweeps with the contended-handoff comparison
//! ([`HandoffComparison`]: FIFO direct handoff vs the wake-all baseline on
//! a hot-key workload) into the single `BENCH_scaling.json` document.

use crate::mixed::{MixedWorkload, WorkloadStats};
use critique_core::IsolationLevel;
use critique_engine::{
    BackendKind, Durability, FairnessPolicy, GrantPolicy, GroupCommit, ReadPath, UpgradeStrategy,
};

/// One substrate configuration a sweep visits: a storage backend, its
/// shard count, and the label the series carries in reports.
#[derive(Clone, Copy, Debug)]
pub struct SubstrateConfig {
    /// Substrate shard count ([`MixedWorkload::shards`]); honoured by the
    /// sharded chain store, ignored by the single-log backend.
    pub shards: usize,
    /// Storage backend the series runs on.
    pub backend: BackendKind,
    /// Storage read discipline the series runs with
    /// ([`MixedWorkload::read_path`]; only the default backend honours
    /// it).  The read-heavy sweep runs the same workload once per
    /// discipline to measure what the stripe read locks cost.
    pub read_path: ReadPath,
    /// Storage durability the series runs with
    /// ([`MixedWorkload::durability`]; only the log-structured backend
    /// honours it).  The `durable_logstore` sweep runs the same workload
    /// once per mode to measure the fsync tax.
    pub durability: Durability,
    /// Commit fsync scheduling the series runs with
    /// ([`MixedWorkload::group_commit`]; only a durable log-structured
    /// backend honours it).  The `group_commit` sweep runs the same
    /// fsync workload per-commit and batched, single-log and sharded, to
    /// measure the batcher's amortisation.
    pub group_commit: GroupCommit,
    /// Human-readable series label (`"sharded"`, `"logstore"`, …).
    pub label: &'static str,
}

impl SubstrateConfig {
    /// The default-backend configuration at a given shard count.
    pub fn mvstore(shards: usize, label: &'static str) -> Self {
        SubstrateConfig {
            shards,
            backend: BackendKind::MvStore,
            read_path: ReadPath::default(),
            durability: Durability::default(),
            group_commit: GroupCommit::default(),
            label,
        }
    }

    /// The log-structured configuration.
    pub fn logstore(label: &'static str) -> Self {
        SubstrateConfig {
            // `shards` partitions the log store's write-ahead log as well
            // as the lock manager and the history recorder; keep the
            // default so the backend series isolates the *storage*
            // representation, not a sharding difference.
            shards: critique_storage::DEFAULT_SHARDS,
            backend: BackendKind::LogStructured,
            read_path: ReadPath::default(),
            durability: Durability::default(),
            group_commit: GroupCommit::default(),
            label,
        }
    }

    /// This configuration with a different shard count (used by the
    /// `group_commit` sweep's single-log vs partitioned-log legs).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// This configuration with a different storage read discipline (used
    /// by the read-heavy epoch-vs-locked series).
    pub fn with_read_path(mut self, read_path: ReadPath) -> Self {
        self.read_path = read_path;
        self
    }

    /// This configuration with a different storage durability mode (used
    /// by the `durable_logstore` fsync-tax series).
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// This configuration with a different commit fsync scheduling (used
    /// by the `group_commit` batched-vs-per-commit series).
    pub fn with_group_commit(mut self, group_commit: GroupCommit) -> Self {
        self.group_commit = group_commit;
        self
    }
}

/// One measured point of a sweep: the workload run at a worker count.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Worker threads used for this point.
    pub threads: usize,
    /// Aggregate statistics of the best run at this point.
    pub stats: WorkloadStats,
}

impl ScalingPoint {
    /// Committed transactions per second at this point.
    pub fn throughput(&self) -> f64 {
        self.stats.throughput()
    }
}

/// One swept configuration: a label, its substrate, and its points.
#[derive(Clone, Debug)]
pub struct ScalingSeries {
    /// Human-readable label (`"sharded"`, `"single-shard baseline"`,
    /// `"logstore"`, …).
    pub label: String,
    /// Substrate shard count this series ran with.
    pub shards: usize,
    /// Storage backend this series ran on.
    pub backend: BackendKind,
    /// Storage read discipline this series ran with.
    pub read_path: ReadPath,
    /// Storage durability this series ran with.
    pub durability: Durability,
    /// Commit fsync scheduling this series ran with.
    pub group_commit: GroupCommit,
    /// One point per worker count, in sweep order.
    pub points: Vec<ScalingPoint>,
}

impl ScalingSeries {
    /// True when committed-txn throughput strictly increases from each
    /// worker count to the next.
    pub fn monotonic(&self) -> bool {
        self.points
            .windows(2)
            .all(|pair| pair[1].throughput() > pair[0].throughput())
    }
}

/// A full scaling sweep: the base workload, the isolation level, and one
/// series per substrate configuration.
#[derive(Clone, Debug)]
pub struct ScalingReport {
    /// Isolation level the sweep ran at.
    pub level: IsolationLevel,
    /// The base workload (its `threads` field is overridden per point).
    pub workload: MixedWorkload,
    /// Worker counts swept, in order.
    pub thread_counts: Vec<usize>,
    /// One series per substrate configuration.
    pub series: Vec<ScalingSeries>,
}

impl ScalingReport {
    /// Run the sweep.  For every [`SubstrateConfig`] and every worker
    /// count, the workload runs `runs_per_point` times and the run with
    /// the highest committed throughput is kept (best-of-k damps scheduler
    /// noise; each run is itself thousands of transactions).
    pub fn run(
        base: MixedWorkload,
        level: IsolationLevel,
        thread_counts: &[usize],
        configurations: &[SubstrateConfig],
        runs_per_point: usize,
    ) -> Self {
        let runs_per_point = runs_per_point.max(1);
        let series = configurations
            .iter()
            .map(|config| {
                let mut spec = base;
                spec.shards = config.shards.max(1);
                spec.backend = config.backend;
                spec.read_path = config.read_path;
                spec.durability = config.durability;
                spec.group_commit = config.group_commit;
                let points = thread_counts
                    .iter()
                    .map(|&threads| {
                        let spec = spec.with_threads(threads);
                        let stats = (0..runs_per_point)
                            .map(|_| spec.run(level))
                            .max_by(|a, b| {
                                a.throughput()
                                    .partial_cmp(&b.throughput())
                                    .unwrap_or(std::cmp::Ordering::Equal)
                            })
                            .expect("runs_per_point >= 1");
                        ScalingPoint { threads, stats }
                    })
                    .collect();
                ScalingSeries {
                    label: config.label.to_string(),
                    shards: config.shards.max(1),
                    backend: config.backend,
                    read_path: config.read_path,
                    durability: config.durability,
                    group_commit: config.group_commit,
                    points,
                }
            })
            .collect();
        ScalingReport {
            level,
            workload: base,
            thread_counts: thread_counts.to_vec(),
            series,
        }
    }

    /// The series labelled `label`, if present.
    pub fn series_named(&self, label: &str) -> Option<&ScalingSeries> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render the sweep as an aligned text table (one block per series).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "--- scaling sweep at {} (think={}µs, {} accounts, {:.0}% reads) ---\n",
            self.level.name(),
            self.workload.think_micros,
            self.workload.accounts,
            self.workload.read_fraction * 100.0,
        ));
        for series in &self.series {
            out.push_str(&format!(
                "{} (backend={}, shards={}, reads={}, durability={}, group_commit={}){}:\n",
                series.label,
                series.backend,
                series.shards,
                series.read_path,
                series.durability,
                series.group_commit,
                if series.monotonic() {
                    " — monotonic"
                } else {
                    ""
                }
            ));
            for point in &series.points {
                out.push_str(&format!(
                    "  threads={:<2} committed={:<6} abort-rate={:5.1}%  {:9.0} txn/s\n",
                    point.threads,
                    point.stats.committed,
                    point.stats.abort_rate() * 100.0,
                    point.throughput(),
                ));
            }
        }
        out
    }

    /// The sweep's JSON fields (everything but the `"bench"` tag),
    /// indented for embedding at `indent` spaces.
    fn json_fields(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let thread_counts = self
            .thread_counts
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let series = self
            .series
            .iter()
            .map(|series| {
                let points = series
                    .points
                    .iter()
                    .map(|p| {
                        format!(
                            "{pad}      {{\"threads\": {}, \"committed\": {}, \"aborted\": {}, \
                             \"abort_rate\": {:.4}, \"elapsed_ms\": {:.3}, \
                             \"throughput_txn_per_s\": {:.1}}}",
                            p.threads,
                            p.stats.committed,
                            p.stats.aborted(),
                            p.stats.abort_rate(),
                            p.stats.elapsed.as_secs_f64() * 1e3,
                            p.throughput(),
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",\n");
                format!(
                    "{pad}  {{\n{pad}    \"label\": \"{}\",\n{pad}    \"backend\": \"{}\",\n\
                     {pad}    \"shards\": {},\n{pad}    \"read_path\": \"{}\",\n{pad}    \
                     \"durability\": \"{}\",\n{pad}    \"group_commit\": \"{}\",\n{pad}    \
                     \"monotonic_throughput\": {},\n{pad}    \"points\": [\n{}\n{pad}    ]\n{pad}  }}",
                    series.label,
                    series.backend,
                    series.shards,
                    series.read_path,
                    series.durability,
                    series.group_commit,
                    series.monotonic(),
                    points,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{pad}\"level\": \"{}\",\n{pad}\"thread_counts\": [{}],\n{pad}\"workload\": \
             {{\"accounts\": {}, \"read_fraction\": {:.2}, \"ops_per_txn\": {}, \
             \"hot_fraction\": {:.2}, \"txns_per_thread\": {}, \"think_micros\": {}, \
             \"seed\": {}}},\n{pad}\"series\": [\n{}\n{pad}]",
            self.level.name(),
            thread_counts,
            self.workload.accounts,
            self.workload.read_fraction,
            self.workload.ops_per_txn,
            self.workload.hot_fraction,
            self.workload.txns_per_thread,
            self.workload.think_micros,
            self.workload.seed,
            series,
        )
    }

    /// Render the sweep as JSON (hand-rolled — the offline `serde` shim
    /// does not serialise), in the same spirit as the harness report's
    /// `to_json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"scaling_sweep\",\n{}\n}}\n",
            self.json_fields(2)
        )
    }
}

/// One `(grant policy, upgrade strategy, fairness)` cell's measurement in
/// a [`HandoffComparison`].
#[derive(Clone, Copy, Debug)]
pub struct HandoffPoint {
    /// The contended-grant policy measured.
    pub policy: GrantPolicy,
    /// The read-modify-write locking strategy measured.
    pub strategy: UpgradeStrategy,
    /// The lock fast-path fairness policy measured.
    pub fairness: FairnessPolicy,
    /// Worker threads the workload ran with.
    pub threads: usize,
    /// Aggregate statistics of the kept (best-throughput) run.
    pub stats: WorkloadStats,
    /// The *worst* deadlock-victim count seen across every run of this
    /// cell — the cascade evidence.  Best-of-k keeps the fastest run,
    /// which on a bimodal workload is exactly the run that dodged the
    /// cascade; this field keeps the honest record of whether any run
    /// fell into it.
    pub worst_deadlocks: u64,
}

impl HandoffPoint {
    /// Mean wall-clock latency of one attempted transaction, in
    /// milliseconds: every worker loops transactions back-to-back, so
    /// per-transaction latency is worker-seconds divided by attempts.
    pub fn mean_txn_latency_ms(&self) -> f64 {
        let attempts = self.stats.attempted();
        if attempts == 0 {
            return 0.0;
        }
        self.stats.elapsed.as_secs_f64() * 1e3 * self.threads as f64 / attempts as f64
    }
}

/// The contended-handoff comparison: the same hot-key read-modify-write
/// workload run over the full `{grant policy} × {upgrade strategy} ×
/// {fairness}` grid, so the win of handing grants straight to waiters,
/// the death of the S→X upgrade cascade under U locks, *and* the
/// throughput cost of the strict-FIFO fast path are measured, not
/// asserted — this is the record next to the scaling sweeps in
/// `BENCH_scaling.json`.
/// Each cell also keeps the worst deadlock-victim count across its runs:
/// the SharedThenUpgrade/DirectHandoff cell is bimodal (a run either
/// dodges the batch-grant cascade or falls into it), and the UpdateLock
/// cells must show zero victims in *every* run, not just the kept one.
#[derive(Clone, Debug)]
pub struct HandoffComparison {
    /// Isolation level the comparison ran at.
    pub level: IsolationLevel,
    /// The contended workload (its `grant` and `upgrade` fields are
    /// overridden per point).
    pub workload: MixedWorkload,
    /// One point per `(grant policy, upgrade strategy, fairness)` cell.
    pub points: Vec<HandoffPoint>,
}

impl HandoffComparison {
    /// Run the same workload once per `(grant policy, upgrade strategy,
    /// fairness)` cell, keeping the best-of-`runs_per_point` run by
    /// committed throughput (and the worst deadlock count across all
    /// runs).
    pub fn run(base: MixedWorkload, level: IsolationLevel, runs_per_point: usize) -> Self {
        let runs_per_point = runs_per_point.max(1);
        let mut points = Vec::new();
        for policy in [GrantPolicy::DirectHandoff, GrantPolicy::WakeAll] {
            for strategy in [
                UpgradeStrategy::SharedThenUpgrade,
                UpgradeStrategy::UpdateLock,
            ] {
                for fairness in [FairnessPolicy::Barging, FairnessPolicy::QueueFifo] {
                    let spec = base
                        .with_grant(policy)
                        .with_upgrade(strategy)
                        .with_fairness(fairness);
                    let runs: Vec<WorkloadStats> =
                        (0..runs_per_point).map(|_| spec.run(level)).collect();
                    let worst_deadlocks = runs
                        .iter()
                        .map(|r| r.aborted_deadlock)
                        .max()
                        .expect("runs_per_point >= 1");
                    let stats = runs
                        .into_iter()
                        .max_by(|a, b| {
                            a.throughput()
                                .partial_cmp(&b.throughput())
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .expect("runs_per_point >= 1");
                    points.push(HandoffPoint {
                        policy,
                        strategy,
                        fairness,
                        threads: base.threads,
                        stats,
                        worst_deadlocks,
                    });
                }
            }
        }
        HandoffComparison {
            level,
            workload: base,
            points,
        }
    }

    /// The point for one `(policy, strategy, fairness)` cell, if measured.
    pub fn point(
        &self,
        policy: GrantPolicy,
        strategy: UpgradeStrategy,
        fairness: FairnessPolicy,
    ) -> Option<&HandoffPoint> {
        self.points
            .iter()
            .find(|p| p.policy == policy && p.strategy == strategy && p.fairness == fairness)
    }

    /// Render as an aligned text block.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "--- contended handoff at {} ({} threads on {} hot account(s)) ---\n",
            self.level.name(),
            self.workload.threads,
            (self.workload.accounts as f64 * self.workload.hot_fraction).max(1.0) as usize,
        );
        for p in &self.points {
            out.push_str(&format!(
                "  {:<14} {:<20} {:<10} committed={:<6} deadlock-aborts={:<4} \
                 worst-deadlocks={:<4} timeouts={:<4} {:9.0} txn/s  {:8.3} ms/txn\n",
                format!("{:?}", p.policy),
                p.strategy.to_string(),
                format!("{:?}", p.fairness),
                p.stats.committed,
                p.stats.aborted_deadlock,
                p.worst_deadlocks,
                p.stats.aborted_timeout,
                p.stats.throughput(),
                p.mean_txn_latency_ms(),
            ));
        }
        out
    }

    fn json_object(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let points = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "{pad}    {{\"policy\": \"{:?}\", \"strategy\": \"{}\", \
                     \"fairness\": \"{:?}\", \"committed\": {}, \
                     \"aborted_deadlock\": {}, \"worst_deadlocks_across_runs\": {}, \
                     \"aborted_timeout\": {}, \
                     \"elapsed_ms\": {:.3}, \"throughput_txn_per_s\": {:.1}, \
                     \"mean_txn_latency_ms\": {:.4}}}",
                    p.policy,
                    p.strategy,
                    p.fairness,
                    p.stats.committed,
                    p.stats.aborted_deadlock,
                    p.worst_deadlocks,
                    p.stats.aborted_timeout,
                    p.stats.elapsed.as_secs_f64() * 1e3,
                    p.stats.throughput(),
                    p.mean_txn_latency_ms(),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{pad}{{\n{pad}  \"level\": \"{}\",\n{pad}  \"workload\": {{\"accounts\": {}, \
             \"read_fraction\": {:.2}, \"ops_per_txn\": {}, \"hot_fraction\": {:.2}, \
             \"txns_per_thread\": {}, \"threads\": {}, \"seed\": {}}},\n{pad}  \
             \"policies\": [\n{}\n{pad}  ]\n{pad}}}",
            self.level.name(),
            self.workload.accounts,
            self.workload.read_fraction,
            self.workload.ops_per_txn,
            self.workload.hot_fraction,
            self.workload.txns_per_thread,
            self.workload.threads,
            self.workload.seed,
            points,
        )
    }
}

/// One measured cell of a [`RangeComparison`]: a storage backend running
/// the workload at a given range-scan mix.
#[derive(Clone, Copy, Debug)]
pub struct RangePoint {
    /// Storage backend the cell ran on.
    pub backend: BackendKind,
    /// Fraction of operations issued as range scans
    /// ([`MixedWorkload::range_fraction`]; `0.0` is the point-only
    /// baseline).
    pub range_fraction: f64,
    /// Aggregate statistics of the kept (best-throughput) run.
    pub stats: WorkloadStats,
}

/// The point-vs-range comparison: the same mixed workload run with and
/// without a range-scan mix, on both storage backends, so the cost of
/// routing reads through the ordered index and interval predicate locks
/// is recorded next to the scaling sweeps in `BENCH_scaling.json`.
#[derive(Clone, Debug)]
pub struct RangeComparison {
    /// Isolation level the comparison ran at.
    pub level: IsolationLevel,
    /// The base workload (its `backend` and `range_fraction` fields are
    /// overridden per point).
    pub workload: MixedWorkload,
    /// One point per `(backend, range mix)` cell.
    pub points: Vec<RangePoint>,
}

impl RangeComparison {
    /// Run the workload once per `(backend, range_fraction)` cell, keeping
    /// the best-of-`runs_per_point` run by committed throughput.
    pub fn run(
        base: MixedWorkload,
        level: IsolationLevel,
        range_fractions: &[f64],
        runs_per_point: usize,
    ) -> Self {
        let runs_per_point = runs_per_point.max(1);
        let mut points = Vec::new();
        for backend in BackendKind::ALL {
            for &range_fraction in range_fractions {
                let spec = base
                    .with_backend(backend)
                    .with_range_fraction(range_fraction);
                let stats = (0..runs_per_point)
                    .map(|_| spec.run(level))
                    .max_by(|a, b| {
                        a.throughput()
                            .partial_cmp(&b.throughput())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("runs_per_point >= 1");
                points.push(RangePoint {
                    backend,
                    range_fraction,
                    stats,
                });
            }
        }
        RangeComparison {
            level,
            workload: base,
            points,
        }
    }

    /// The point for one `(backend, range mix)` cell, if measured.
    pub fn point(&self, backend: BackendKind, range_fraction: f64) -> Option<&RangePoint> {
        self.points
            .iter()
            .find(|p| p.backend == backend && (p.range_fraction - range_fraction).abs() < 1e-9)
    }

    /// Render as an aligned text block.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "--- point vs range scans at {} ({} accounts, {} threads) ---\n",
            self.level.name(),
            self.workload.accounts,
            self.workload.threads,
        );
        for p in &self.points {
            out.push_str(&format!(
                "  {:<9} range={:>3.0}%  committed={:<6} abort-rate={:5.1}%  {:9.0} txn/s\n",
                p.backend.to_string(),
                p.range_fraction * 100.0,
                p.stats.committed,
                p.stats.abort_rate() * 100.0,
                p.stats.throughput(),
            ));
        }
        out
    }

    fn json_object(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let points = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "{pad}    {{\"backend\": \"{}\", \"range_fraction\": {:.2}, \
                     \"committed\": {}, \"aborted\": {}, \"abort_rate\": {:.4}, \
                     \"elapsed_ms\": {:.3}, \"throughput_txn_per_s\": {:.1}}}",
                    p.backend,
                    p.range_fraction,
                    p.stats.committed,
                    p.stats.aborted(),
                    p.stats.abort_rate(),
                    p.stats.elapsed.as_secs_f64() * 1e3,
                    p.stats.throughput(),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{pad}{{\n{pad}  \"level\": \"{}\",\n{pad}  \"workload\": {{\"accounts\": {}, \
             \"read_fraction\": {:.2}, \"ops_per_txn\": {}, \"hot_fraction\": {:.2}, \
             \"txns_per_thread\": {}, \"threads\": {}, \"seed\": {}}},\n{pad}  \
             \"points\": [\n{}\n{pad}  ]\n{pad}}}",
            self.level.name(),
            self.workload.accounts,
            self.workload.read_fraction,
            self.workload.ops_per_txn,
            self.workload.hot_fraction,
            self.workload.txns_per_thread,
            self.workload.threads,
            self.workload.seed,
            points,
        )
    }
}

/// One measured cell of a [`WatchFanoutComparison`]: the single-writer
/// workload run with a given number of commit-time table watchers
/// attached.
#[derive(Clone, Copy, Debug)]
pub struct WatchFanoutPoint {
    /// Watchers subscribed for this cell ([`MixedWorkload::watchers`]).
    pub watchers: usize,
    /// Aggregate statistics of the kept (best-throughput) run.  Its
    /// `notifications` field is the per-watcher event count the run
    /// asserted identical across every watcher.
    pub stats: WorkloadStats,
}

/// The watcher fan-out comparison: one writer committing against `{1,
/// 100, 10_000}` table watchers, so the cost the commit path pays to fan
/// a change event out to every subscriber — queue pushes of one shared
/// allocation, not deep copies — is recorded next to the scaling sweeps
/// in `BENCH_scaling.json`.  Each run also asserts the delivery contract
/// (identical streams, strict commit-timestamp order) via
/// [`MixedWorkload::run_seeded`].
#[derive(Clone, Debug)]
pub struct WatchFanoutComparison {
    /// Isolation level the comparison ran at.
    pub level: IsolationLevel,
    /// The base workload (its `watchers` field is overridden per point).
    pub workload: MixedWorkload,
    /// One point per watcher count.
    pub points: Vec<WatchFanoutPoint>,
}

impl WatchFanoutComparison {
    /// Run the workload once per watcher count, keeping the
    /// best-of-`runs_per_point` run by committed throughput.
    pub fn run(
        base: MixedWorkload,
        level: IsolationLevel,
        watcher_counts: &[usize],
        runs_per_point: usize,
    ) -> Self {
        let runs_per_point = runs_per_point.max(1);
        let points = watcher_counts
            .iter()
            .map(|&watchers| {
                let spec = base.with_watchers(watchers);
                let stats = (0..runs_per_point)
                    .map(|_| spec.run(level))
                    .max_by(|a, b| {
                        a.throughput()
                            .partial_cmp(&b.throughput())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("runs_per_point >= 1");
                WatchFanoutPoint { watchers, stats }
            })
            .collect();
        WatchFanoutComparison {
            level,
            workload: base,
            points,
        }
    }

    /// The point for one watcher count, if measured.
    pub fn point(&self, watchers: usize) -> Option<&WatchFanoutPoint> {
        self.points.iter().find(|p| p.watchers == watchers)
    }

    /// Render as an aligned text block.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "--- watcher fan-out at {} ({} writer(s), {} accounts) ---\n",
            self.level.name(),
            self.workload.threads,
            self.workload.accounts,
        );
        for p in &self.points {
            out.push_str(&format!(
                "  watchers={:<6} committed={:<6} notifications={:<6} {:9.0} txn/s\n",
                p.watchers,
                p.stats.committed,
                p.stats.notifications,
                p.stats.throughput(),
            ));
        }
        out
    }

    fn json_object(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let points = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "{pad}    {{\"watchers\": {}, \"committed\": {}, \"aborted\": {}, \
                     \"notifications\": {}, \"elapsed_ms\": {:.3}, \
                     \"throughput_txn_per_s\": {:.1}}}",
                    p.watchers,
                    p.stats.committed,
                    p.stats.aborted(),
                    p.stats.notifications,
                    p.stats.elapsed.as_secs_f64() * 1e3,
                    p.stats.throughput(),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{pad}{{\n{pad}  \"level\": \"{}\",\n{pad}  \"workload\": {{\"accounts\": {}, \
             \"read_fraction\": {:.2}, \"ops_per_txn\": {}, \"hot_fraction\": {:.2}, \
             \"txns_per_thread\": {}, \"threads\": {}, \"seed\": {}}},\n{pad}  \
             \"points\": [\n{}\n{pad}  ]\n{pad}}}",
            self.level.name(),
            self.workload.accounts,
            self.workload.read_fraction,
            self.workload.ops_per_txn,
            self.workload.hot_fraction,
            self.workload.txns_per_thread,
            self.workload.threads,
            self.workload.seed,
            points,
        )
    }
}

/// The whole `BENCH_scaling.json` document: one scaling sweep per swept
/// isolation level, the read-heavy epoch-vs-locked sweeps, plus the
/// contended-handoff comparison and the point-vs-range scan comparison.
#[derive(Clone, Debug)]
pub struct ScalingSuite {
    /// One sweep per isolation level, in sweep order.
    pub sweeps: Vec<ScalingReport>,
    /// The read-heavy (95% read) sweeps: one per isolation level, each
    /// with an epoch-path series and a stripe-read-lock baseline series on
    /// the same workload, so what the locks cost on the dominant-read mix
    /// is measured, not asserted.
    pub read_heavy: Vec<ScalingReport>,
    /// The `durable_logstore` sweeps: the log-structured backend run
    /// ephemeral and with fsync'd write-ahead persistence on the same
    /// workload, so the fsync tax on the commit path is measured, not
    /// asserted.
    pub durable: Vec<ScalingReport>,
    /// The `group_commit` sweeps: the fsync'd log-structured backend run
    /// over the `{per-commit, batched} × {single log, partitioned log}`
    /// grid on the same workload, so the batcher's amortisation of the
    /// fsync tax (and what log partitioning adds on top) is measured,
    /// not asserted.
    pub group_commit: Vec<ScalingReport>,
    /// The direct-handoff vs wake-all comparison, if run.
    pub handoff: Option<HandoffComparison>,
    /// The point-vs-range scan comparison, if run.
    pub range: Option<RangeComparison>,
    /// The watcher fan-out comparison, if run.
    pub watch_fanout: Option<WatchFanoutComparison>,
    /// Logical CPUs of the machine the numbers were recorded on — thread
    /// counts above this measure oversubscription, not parallelism, so the
    /// document carries the context.
    pub host_cpus: usize,
}

impl ScalingSuite {
    /// Logical CPUs available to this process (1 when undeterminable) —
    /// what a freshly recorded suite should carry as
    /// [`ScalingSuite::host_cpus`].
    pub fn detect_host_cpus() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The sweep for `level`, if present.
    pub fn sweep_at(&self, level: IsolationLevel) -> Option<&ScalingReport> {
        self.sweeps.iter().find(|s| s.level == level)
    }

    /// The read-heavy sweep for `level`, if present.
    pub fn read_heavy_at(&self, level: IsolationLevel) -> Option<&ScalingReport> {
        self.read_heavy.iter().find(|s| s.level == level)
    }

    /// The `durable_logstore` sweep for `level`, if present.
    pub fn durable_at(&self, level: IsolationLevel) -> Option<&ScalingReport> {
        self.durable.iter().find(|s| s.level == level)
    }

    /// The `group_commit` sweep for `level`, if present.
    pub fn group_commit_at(&self, level: IsolationLevel) -> Option<&ScalingReport> {
        self.group_commit.iter().find(|s| s.level == level)
    }

    /// Render every sweep and the handoff comparison as text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for sweep in &self.sweeps {
            out.push_str(&sweep.to_text());
        }
        for sweep in &self.read_heavy {
            out.push_str(&sweep.to_text());
        }
        for sweep in &self.durable {
            out.push_str(&sweep.to_text());
        }
        for sweep in &self.group_commit {
            out.push_str(&sweep.to_text());
        }
        if let Some(handoff) = &self.handoff {
            out.push_str(&handoff.to_text());
        }
        if let Some(range) = &self.range {
            out.push_str(&range.to_text());
        }
        if let Some(watch_fanout) = &self.watch_fanout {
            out.push_str(&watch_fanout.to_text());
        }
        out
    }

    /// Render the whole suite as the `BENCH_scaling.json` document.
    pub fn to_json(&self) -> String {
        let sweeps = self
            .sweeps
            .iter()
            .map(|s| format!("    {{\n{}\n    }}", s.json_fields(6)))
            .collect::<Vec<_>>()
            .join(",\n");
        let read_heavy = if self.read_heavy.is_empty() {
            String::new()
        } else {
            let body = self
                .read_heavy
                .iter()
                .map(|s| format!("    {{\n{}\n    }}", s.json_fields(6)))
                .collect::<Vec<_>>()
                .join(",\n");
            format!(",\n  \"read_heavy\": [\n{}\n  ]", body)
        };
        let durable = if self.durable.is_empty() {
            String::new()
        } else {
            let body = self
                .durable
                .iter()
                .map(|s| format!("    {{\n{}\n    }}", s.json_fields(6)))
                .collect::<Vec<_>>()
                .join(",\n");
            format!(",\n  \"durable_logstore\": [\n{}\n  ]", body)
        };
        let group_commit = if self.group_commit.is_empty() {
            String::new()
        } else {
            let body = self
                .group_commit
                .iter()
                .map(|s| format!("    {{\n{}\n    }}", s.json_fields(6)))
                .collect::<Vec<_>>()
                .join(",\n");
            format!(",\n  \"group_commit\": [\n{}\n  ]", body)
        };
        let handoff = match &self.handoff {
            Some(h) => format!(",\n  \"contended_handoff\":\n{}", h.json_object(2)),
            None => String::new(),
        };
        let range = match &self.range {
            Some(r) => format!(",\n  \"range_scan\":\n{}", r.json_object(2)),
            None => String::new(),
        };
        let watch_fanout = match &self.watch_fanout {
            Some(w) => format!(",\n  \"watch_fanout\":\n{}", w.json_object(2)),
            None => String::new(),
        };
        format!(
            "{{\n  \"bench\": \"scaling_suite\",\n  \"host_cpus\": {},\n  \
             \"sweeps\": [\n{}\n  ]{}{}{}{}{}{}\n}}\n",
            self.host_cpus, sweeps, read_heavy, durable, group_commit, handoff, range, watch_fanout,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MixedWorkload {
        MixedWorkload {
            accounts: 16,
            read_fraction: 0.6,
            ops_per_txn: 2,
            hot_fraction: 0.1,
            txns_per_thread: 10,
            threads: 1,
            seed: 11,
            think_micros: 0,
            shards: 8,
            grant: GrantPolicy::DirectHandoff,
            backend: BackendKind::MvStore,
            upgrade: UpgradeStrategy::SharedThenUpgrade,
            range_fraction: 0.0,
            read_path: ReadPath::Epoch,
            durability: Durability::Ephemeral,
            group_commit: GroupCommit::Off,
            fairness: FairnessPolicy::Barging,
            watchers: 0,
        }
    }

    #[test]
    fn sweep_runs_every_configuration_and_point() {
        let report = ScalingReport::run(
            tiny(),
            IsolationLevel::ReadCommitted,
            &[1, 2],
            &[
                SubstrateConfig::mvstore(8, "sharded"),
                SubstrateConfig::mvstore(1, "single-shard baseline"),
                SubstrateConfig::logstore("logstore"),
            ],
            1,
        );
        assert_eq!(report.series.len(), 3);
        for series in &report.series {
            assert_eq!(series.points.len(), 2);
            assert_eq!(series.points[0].threads, 1);
            assert_eq!(series.points[1].threads, 2);
            for point in &series.points {
                assert_eq!(
                    point.stats.attempted(),
                    (10 * point.threads) as u64,
                    "{}",
                    series.label
                );
            }
        }
        assert_eq!(report.series_named("sharded").unwrap().shards, 8);
        assert_eq!(
            report.series_named("logstore").unwrap().backend,
            BackendKind::LogStructured
        );
        assert!(report.series_named("missing").is_none());
    }

    #[test]
    fn json_and_text_render_every_point() {
        let report = ScalingReport::run(
            tiny(),
            IsolationLevel::SnapshotIsolation,
            &[1, 2],
            &[SubstrateConfig::mvstore(4, "sharded")],
            1,
        );
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"scaling_sweep\""));
        assert!(json.contains("\"thread_counts\": [1, 2]"));
        assert!(json.contains("\"shards\": 4"));
        assert!(json.contains("\"backend\": \"mvstore\""));
        assert_eq!(json.matches("\"threads\":").count(), 2);
        let text = report.to_text();
        assert!(text.contains("threads=1"));
        assert!(text.contains("threads=2"));
    }

    #[test]
    fn monotonic_detects_order() {
        use std::time::Duration;
        let point = |threads: usize, committed: u64| ScalingPoint {
            threads,
            stats: WorkloadStats {
                committed,
                elapsed: Duration::from_secs(1),
                ..Default::default()
            },
        };
        let rising = ScalingSeries {
            label: "r".into(),
            shards: 2,
            backend: BackendKind::MvStore,
            read_path: ReadPath::Epoch,
            durability: Durability::Ephemeral,
            group_commit: GroupCommit::Off,
            points: vec![point(1, 10), point(2, 20), point(4, 30)],
        };
        assert!(rising.monotonic());
        let sagging = ScalingSeries {
            label: "s".into(),
            shards: 2,
            backend: BackendKind::MvStore,
            read_path: ReadPath::Epoch,
            durability: Durability::Ephemeral,
            group_commit: GroupCommit::Off,
            points: vec![point(1, 10), point(2, 9)],
        };
        assert!(!sagging.monotonic());
    }

    #[test]
    fn handoff_comparison_measures_the_full_policy_strategy_grid() {
        let mut spec = tiny();
        spec.read_fraction = 0.0;
        spec.hot_fraction = 1.0;
        spec.threads = 3;
        let cmp = HandoffComparison::run(spec, IsolationLevel::Serializable, 2);
        assert_eq!(cmp.points.len(), 8);
        let direct = cmp
            .point(
                GrantPolicy::DirectHandoff,
                UpgradeStrategy::SharedThenUpgrade,
                FairnessPolicy::Barging,
            )
            .unwrap();
        let wake = cmp
            .point(
                GrantPolicy::WakeAll,
                UpgradeStrategy::SharedThenUpgrade,
                FairnessPolicy::Barging,
            )
            .unwrap();
        let fifo = cmp
            .point(
                GrantPolicy::DirectHandoff,
                UpgradeStrategy::SharedThenUpgrade,
                FairnessPolicy::QueueFifo,
            )
            .unwrap();
        assert!(direct.stats.attempted() > 0);
        assert!(wake.stats.attempted() > 0);
        assert!(fifo.stats.attempted() > 0);
        assert!(direct.mean_txn_latency_ms() > 0.0);
        // The cascade evidence must be recorded honestly: the worst run is
        // at least as deadlock-ridden as the kept (fastest) one.
        for p in &cmp.points {
            assert!(p.worst_deadlocks >= p.stats.aborted_deadlock);
        }
        // The U-lock legs cannot deadlock on a single hot item, under
        // either grant policy or fairness, in any run.
        for policy in [GrantPolicy::DirectHandoff, GrantPolicy::WakeAll] {
            for fairness in [FairnessPolicy::Barging, FairnessPolicy::QueueFifo] {
                let point = cmp
                    .point(policy, UpgradeStrategy::UpdateLock, fairness)
                    .unwrap();
                assert_eq!(point.worst_deadlocks, 0, "{policy:?}/{fairness:?}");
            }
        }
        let text = cmp.to_text();
        assert!(text.contains("DirectHandoff"));
        assert!(text.contains("WakeAll"));
        assert!(text.contains("update-lock"));
        assert!(text.contains("shared-then-upgrade"));
        assert!(text.contains("Barging"));
        assert!(text.contains("QueueFifo"));
    }

    #[test]
    fn suite_json_embeds_every_sweep_and_the_handoff() {
        let sweeps = vec![
            ScalingReport::run(
                tiny(),
                IsolationLevel::ReadCommitted,
                &[1, 2],
                &[
                    SubstrateConfig::mvstore(4, "sharded"),
                    SubstrateConfig::logstore("logstore"),
                ],
                1,
            ),
            ScalingReport::run(
                tiny(),
                IsolationLevel::SnapshotIsolation,
                &[1, 2],
                &[SubstrateConfig::mvstore(4, "sharded")],
                1,
            ),
        ];
        let handoff = HandoffComparison::run(tiny(), IsolationLevel::Serializable, 1);
        let range = RangeComparison::run(tiny(), IsolationLevel::Serializable, &[0.0, 0.5], 1);
        let mut read_heavy_spec = tiny();
        read_heavy_spec.read_fraction = 0.95;
        let read_heavy = vec![ScalingReport::run(
            read_heavy_spec,
            IsolationLevel::SnapshotIsolation,
            &[1, 2],
            &[
                SubstrateConfig::mvstore(4, "epoch"),
                SubstrateConfig::mvstore(4, "locked baseline").with_read_path(ReadPath::Locked),
            ],
            1,
        )];
        let durable = vec![ScalingReport::run(
            tiny(),
            IsolationLevel::Serializable,
            &[1, 2],
            &[
                SubstrateConfig::logstore("logstore ephemeral"),
                SubstrateConfig::logstore("logstore fsync").with_durability(Durability::Fsync),
            ],
            1,
        )];
        let group_commit = vec![ScalingReport::run(
            tiny(),
            IsolationLevel::Serializable,
            &[1, 2],
            &[
                SubstrateConfig::logstore("fsync per-commit")
                    .with_durability(Durability::Fsync)
                    .with_shards(1),
                SubstrateConfig::logstore("fsync batched sharded")
                    .with_durability(Durability::Fsync)
                    .with_group_commit(GroupCommit::On { window_micros: 50 })
                    .with_shards(4),
            ],
            1,
        )];
        let mut fanout_spec = tiny();
        fanout_spec.read_fraction = 0.0;
        let watch_fanout =
            WatchFanoutComparison::run(fanout_spec, IsolationLevel::Serializable, &[1, 4], 1);
        let suite = ScalingSuite {
            sweeps,
            read_heavy,
            durable,
            group_commit,
            handoff: Some(handoff),
            range: Some(range),
            watch_fanout: Some(watch_fanout),
            host_cpus: ScalingSuite::detect_host_cpus(),
        };
        assert!(suite.sweep_at(IsolationLevel::ReadCommitted).is_some());
        assert!(suite.sweep_at(IsolationLevel::Serializable).is_none());
        assert!(suite
            .read_heavy_at(IsolationLevel::SnapshotIsolation)
            .is_some());
        assert!(suite.durable_at(IsolationLevel::Serializable).is_some());
        assert!(suite
            .group_commit_at(IsolationLevel::Serializable)
            .is_some());
        assert!(suite.host_cpus >= 1);
        let json = suite.to_json();
        assert!(json.contains("\"bench\": \"scaling_suite\""));
        assert!(json.contains("\"host_cpus\""));
        assert!(json.contains("\"read_heavy\""));
        assert!(json.contains("\"read_path\": \"epoch\""));
        assert!(json.contains("\"read_path\": \"locked\""));
        assert!(json.contains("\"read_fraction\": 0.95"));
        assert!(json.contains("\"backend\": \"logstore\""));
        assert!(json.contains("\"level\": \"READ COMMITTED\""));
        assert!(json.contains("\"level\": \"Snapshot Isolation\""));
        assert!(json.contains("\"contended_handoff\""));
        assert!(json.contains("\"mean_txn_latency_ms\""));
        assert!(json.contains("\"strategy\": \"update-lock\""));
        assert!(json.contains("\"fairness\": \"QueueFifo\""));
        assert!(json.contains("\"worst_deadlocks_across_runs\""));
        assert!(json.contains("\"durable_logstore\""));
        assert!(json.contains("\"durability\": \"fsync\""));
        assert!(json.contains("\"group_commit\": [\n"));
        assert!(json.contains("\"group_commit\": \"on\""));
        assert!(json.contains("\"group_commit\": \"off\""));
        assert!(json.contains("\"range_scan\""));
        assert!(json.contains("\"range_fraction\": 0.50"));
        assert!(json.contains("\"watch_fanout\""));
        assert!(json.contains("\"watchers\": 4"));
        assert!(json.contains("\"notifications\""));
        let text = suite.to_text();
        assert!(text.contains("contended handoff"));
        assert!(text.contains("point vs range scans"));
        assert!(text.contains("watcher fan-out"));
    }

    #[test]
    fn watch_fanout_comparison_records_every_count() {
        let mut spec = tiny();
        spec.read_fraction = 0.0;
        let cmp = WatchFanoutComparison::run(spec, IsolationLevel::Serializable, &[1, 8], 1);
        assert_eq!(cmp.points.len(), 2);
        for watchers in [1, 8] {
            let point = cmp
                .point(watchers)
                .unwrap_or_else(|| panic!("missing fan-out point at {watchers}"));
            // A write-only single-writer run: every committed transaction
            // notified every watcher.
            assert_eq!(point.stats.notifications, point.stats.committed);
            assert!(point.stats.committed > 0);
        }
        assert!(cmp.point(2).is_none());
        let text = cmp.to_text();
        assert!(text.contains("watchers=1"));
        assert!(text.contains("watchers=8"));
    }

    #[test]
    fn range_comparison_covers_every_backend_and_mix() {
        let cmp = RangeComparison::run(tiny(), IsolationLevel::Serializable, &[0.0, 0.5], 1);
        assert_eq!(cmp.points.len(), BackendKind::ALL.len() * 2);
        for backend in BackendKind::ALL {
            for fraction in [0.0, 0.5] {
                let point = cmp
                    .point(backend, fraction)
                    .unwrap_or_else(|| panic!("missing {backend} at {fraction}"));
                assert!(point.stats.attempted() > 0, "{backend} at {fraction}");
            }
        }
        let text = cmp.to_text();
        assert!(text.contains("range=  0%"));
        assert!(text.contains("range= 50%"));
    }
}
