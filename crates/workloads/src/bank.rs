//! Bank-account fixtures: the paper's running example.
//!
//! Histories H1, H2, H4, and H5 all play out over two account balances `x`
//! and `y` whose sum is an invariant (100 in H1/H2, "x + y must stay
//! positive" in H5).  [`BankFixture`] seeds that data and provides the
//! transfer / audit transactions used throughout the examples, harness, and
//! benchmarks.

use critique_core::IsolationLevel;
use critique_engine::{Database, TxnError};
use critique_storage::{Row, RowId, RowPredicate};

/// A database with a two-account `accounts` table.
pub struct BankFixture {
    /// The database (shared handle).
    pub db: Database,
    /// First account (the paper's `x`).
    pub x: RowId,
    /// Second account (the paper's `y`).
    pub y: RowId,
}

impl BankFixture {
    /// Seed a fresh database at `level` with `x = y = initial`.
    pub fn new(level: IsolationLevel, initial: i64) -> Self {
        Self::with_database(Database::new(level), initial)
    }

    /// Seed an existing database with `x = y = initial`.
    pub fn with_database(db: Database, initial: i64) -> Self {
        let setup = db.begin();
        let x = setup
            .insert("accounts", Row::new().with("balance", initial))
            .expect("setup insert");
        let y = setup
            .insert("accounts", Row::new().with("balance", initial))
            .expect("setup insert");
        setup.commit().expect("setup commit");
        db.clear_history();
        BankFixture { db, x, y }
    }

    /// The whole-table predicate over `accounts`.
    pub fn all_accounts() -> RowPredicate {
        RowPredicate::whole_table("accounts")
    }

    /// The committed balance of an account.
    pub fn balance(&self, account: RowId) -> i64 {
        self.db
            .read_committed("accounts", account)
            .and_then(|row| row.get_int("balance"))
            .unwrap_or(0)
    }

    /// The committed total balance.
    pub fn total(&self) -> i64 {
        self.db.sum_committed(&Self::all_accounts(), "balance")
    }

    /// Run a complete transfer of `amount` from `x` to `y` in its own
    /// transaction (the paper's T1 in H1).  Returns the commit result.
    pub fn transfer(&self, amount: i64) -> Result<(), TxnError> {
        let t = self.db.begin();
        let from = t
            .read("accounts", self.x)?
            .and_then(|r| r.get_int("balance"))
            .unwrap_or(0);
        t.update(
            "accounts",
            self.x,
            Row::new().with("balance", from - amount),
        )?;
        let to = t
            .read("accounts", self.y)?
            .and_then(|r| r.get_int("balance"))
            .unwrap_or(0);
        t.update("accounts", self.y, Row::new().with("balance", to + amount))?;
        t.commit()
    }

    /// Run an audit transaction that reads both balances and returns the
    /// total it observed (the paper's T2 in H1 — inconsistent analysis
    /// reads a total of 60).
    pub fn audit(&self) -> Result<i64, TxnError> {
        let t = self.db.begin();
        let x = t
            .read("accounts", self.x)?
            .and_then(|r| r.get_int("balance"))
            .unwrap_or(0);
        let y = t
            .read("accounts", self.y)?
            .and_then(|r| r.get_int("balance"))
            .unwrap_or(0);
        t.commit()?;
        Ok(x + y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_seeds_two_accounts() {
        let bank = BankFixture::new(IsolationLevel::Serializable, 50);
        assert_eq!(bank.balance(bank.x), 50);
        assert_eq!(bank.balance(bank.y), 50);
        assert_eq!(bank.total(), 100);
        assert!(bank.db.recorded_history().is_empty());
    }

    #[test]
    fn transfer_preserves_the_total() {
        let bank = BankFixture::new(IsolationLevel::Serializable, 50);
        bank.transfer(40).unwrap();
        assert_eq!(bank.balance(bank.x), 10);
        assert_eq!(bank.balance(bank.y), 90);
        assert_eq!(bank.total(), 100);
    }

    #[test]
    fn audit_on_a_quiescent_database_sees_the_invariant() {
        for level in IsolationLevel::ALL {
            let bank = BankFixture::new(level, 50);
            assert_eq!(bank.audit().unwrap(), 100, "at {level}");
            bank.transfer(25).unwrap();
            assert_eq!(bank.audit().unwrap(), 100, "at {level}");
        }
    }
}
