//! A randomised, multi-threaded mixed workload.
//!
//! Section 4.2 of the paper argues qualitatively about Snapshot Isolation's
//! "optimistic" behaviour: read-only transactions never block and are never
//! blocked, readers do not block updates, but long-running update
//! transactions competing with short high-contention updates are likely to
//! lose First-Committer-Wins races and abort.  [`MixedWorkload`] provides a
//! parameterised workload (read/write mix, contention level, transaction
//! length, thread count) whose [`WorkloadStats`] make those claims
//! measurable; the `si_vs_locking` benchmark sweeps it across isolation
//! levels.

use critique_core::IsolationLevel;
use critique_engine::{
    BackendKind, Database, Durability, EngineConfig, FairnessPolicy, GrantPolicy, GroupCommit,
    ReadPath, TxnError, UpgradeStrategy,
};
use critique_storage::{KeyInterval, Row, RowId, RowPredicate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Parameters of the mixed workload.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MixedWorkload {
    /// Number of rows in the `accounts` table.
    pub accounts: usize,
    /// Fraction of transactions that only read.
    pub read_fraction: f64,
    /// Number of row operations per transaction.
    pub ops_per_txn: usize,
    /// Fraction of accesses directed at a single "hot" row (contention).
    pub hot_fraction: f64,
    /// Transactions issued by each worker thread.
    pub txns_per_thread: usize,
    /// Number of worker threads.
    pub threads: usize,
    /// Random seed (the workload is deterministic given the seed and the
    /// thread interleaving).
    pub seed: u64,
    /// Client "think time" in microseconds before each row operation
    /// (0 = none).  Think time models the gaps real clients leave between
    /// statements; with it, throughput is bounded by how many transactions
    /// the substrate lets *overlap*, which is what the thread-count scaling
    /// sweep measures.
    pub think_micros: u64,
    /// Substrate shard count handed to [`EngineConfig::with_shards`].
    /// `1` reproduces the old global-lock layout as a baseline.
    pub shards: usize,
    /// Contended-grant policy handed to
    /// [`EngineConfig::with_grant_policy`]: FIFO direct handoff, or the
    /// wake-all baseline the handoff benchmark compares against.
    pub grant: GrantPolicy,
    /// Storage backend handed to [`EngineConfig::with_backend`]: the
    /// sharded version-chain store by default, or the log-structured
    /// engine the scaling sweep compares against.
    pub backend: BackendKind,
    /// Read-modify-write locking strategy handed to
    /// [`EngineConfig::with_upgrade_strategy`]: Shared-then-upgrade (the
    /// historical baseline, vulnerable to the batch-grant upgrade
    /// cascade), or update-mode (U) locks taken at the RMW read.  Update
    /// transactions route their reads through
    /// [`critique_engine::Transaction::read_for_update`] either way, so
    /// the strategy is the only variable.
    pub upgrade: UpgradeStrategy,
    /// Fraction of row operations issued as *range scans* over the
    /// ordered `bucket` index instead of point accesses.  Range reads go
    /// through [`critique_engine::Transaction::read_range`] (or the
    /// `FOR UPDATE` variant in update transactions), exercising the
    /// interval predicate locks at the locking levels.  `0.0` keeps the
    /// workload point-only.
    pub range_fraction: f64,
    /// Storage read discipline handed to
    /// [`EngineConfig::with_read_path`]: the epoch-pinned lock-free path
    /// (default), or the stripe-read-lock baseline the read-heavy bench
    /// series measures against.  Only the default backend honours it.
    pub read_path: ReadPath,
    /// Storage durability handed to [`EngineConfig::with_durability`]:
    /// ephemeral (default), or fsync'd write-ahead persistence on the
    /// log-structured backend — the `durable_logstore` bench series
    /// records the fsync tax through this knob.
    pub durability: Durability,
    /// Commit fsync scheduling handed to
    /// [`EngineConfig::with_group_commit`]: one fsync per writing commit
    /// (default), or batched behind a group-commit leader — the
    /// `group_commit` bench series records the amortisation through this
    /// knob.  Only a durable log-structured backend honours it.
    pub group_commit: GroupCommit,
    /// Lock fast-path fairness handed to
    /// [`EngineConfig::with_fairness`]: barging (default), or the
    /// strict-FIFO fast path the handoff grid compares against.
    pub fairness: FairnessPolicy,
    /// Number of commit-time table watchers registered on `accounts`
    /// before the run (`0` = none).  With watchers attached, every
    /// committed writing transaction fans one [`critique_engine::ChangeEvent`]
    /// out to all of them on the commit path — the `watch_fanout` bench
    /// series sweeps this knob — and the run asserts the delivery
    /// contract afterwards: every watcher saw the same number of events,
    /// in strictly increasing commit-timestamp order.
    pub watchers: usize,
}

impl Default for MixedWorkload {
    fn default() -> Self {
        MixedWorkload {
            accounts: 64,
            read_fraction: 0.5,
            ops_per_txn: 4,
            hot_fraction: 0.2,
            txns_per_thread: 200,
            threads: 4,
            seed: 42,
            think_micros: 0,
            shards: critique_storage::DEFAULT_SHARDS,
            grant: GrantPolicy::default(),
            backend: BackendKind::default(),
            upgrade: UpgradeStrategy::default(),
            range_fraction: 0.0,
            read_path: ReadPath::default(),
            durability: Durability::default(),
            group_commit: GroupCommit::default(),
            fairness: FairnessPolicy::default(),
            watchers: 0,
        }
    }
}

/// Aggregate statistics from a workload run.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Transactions that committed.
    pub committed: u64,
    /// Aborts caused by First-Committer-Wins (Snapshot Isolation).
    pub aborted_first_committer: u64,
    /// Aborts caused by deadlock victimhood.
    pub aborted_deadlock: u64,
    /// Aborts caused by lock-wait timeouts.
    pub aborted_timeout: u64,
    /// Reads executed (committed or not).
    pub reads: u64,
    /// Writes executed (committed or not).
    pub writes: u64,
    /// Change notifications each attached watcher received (`0` when the
    /// run had no watchers).  Every watcher of a run sees the same count —
    /// the run asserts it — so one number describes them all.
    pub notifications: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl WorkloadStats {
    /// Total aborted transactions.
    pub fn aborted(&self) -> u64 {
        self.aborted_first_committer + self.aborted_deadlock + self.aborted_timeout
    }

    /// Total attempted transactions.
    pub fn attempted(&self) -> u64 {
        self.committed + self.aborted()
    }

    /// Fraction of attempted transactions that aborted.
    pub fn abort_rate(&self) -> f64 {
        if self.attempted() == 0 {
            0.0
        } else {
            self.aborted() as f64 / self.attempted() as f64
        }
    }

    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            self.committed as f64
        } else {
            self.committed as f64 / secs
        }
    }

    fn merge(&mut self, other: &WorkloadStats) {
        self.committed += other.committed;
        self.aborted_first_committer += other.aborted_first_committer;
        self.aborted_deadlock += other.aborted_deadlock;
        self.aborted_timeout += other.aborted_timeout;
        self.reads += other.reads;
        self.writes += other.writes;
    }
}

impl MixedWorkload {
    /// The read-heavy preset of the scaling series: 95% read-only
    /// transactions over the default table, everything else at the
    /// defaults.  This is the mix where the epoch read path's "no stripe
    /// lock on reads" claim dominates throughput, so it is the workload
    /// the epoch-vs-locked bench series sweeps.
    pub fn read_heavy() -> Self {
        MixedWorkload {
            read_fraction: 0.95,
            ..MixedWorkload::default()
        }
    }

    /// This workload with a different worker count (used by the scaling
    /// sweep).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// This workload with a different contended-grant policy (used by the
    /// handoff comparison).
    pub fn with_grant(mut self, grant: GrantPolicy) -> Self {
        self.grant = grant;
        self
    }

    /// This workload on a different storage backend (used by the
    /// backend-comparison sweep).
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// This workload with a different read-modify-write locking strategy
    /// (used by the handoff comparison's U-lock legs).
    pub fn with_upgrade(mut self, upgrade: UpgradeStrategy) -> Self {
        self.upgrade = upgrade;
        self
    }

    /// This workload with a different range-scan mix (used by the
    /// point-vs-range scaling comparison).
    pub fn with_range_fraction(mut self, range_fraction: f64) -> Self {
        self.range_fraction = range_fraction;
        self
    }

    /// This workload on a different storage read discipline (used by the
    /// read-heavy epoch-vs-locked comparison).
    pub fn with_read_path(mut self, read_path: ReadPath) -> Self {
        self.read_path = read_path;
        self
    }

    /// This workload with a different storage durability mode (used by
    /// the `durable_logstore` fsync-tax comparison).
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// This workload with a different commit fsync scheduling (used by
    /// the `group_commit` batched-vs-per-commit comparison).
    pub fn with_group_commit(mut self, group_commit: GroupCommit) -> Self {
        self.group_commit = group_commit;
        self
    }

    /// This workload with a different lock fast-path fairness policy
    /// (used by the handoff grid's FIFO-vs-barging legs).
    pub fn with_fairness(mut self, fairness: FairnessPolicy) -> Self {
        self.fairness = fairness;
        self
    }

    /// This workload with commit-time table watchers attached (used by
    /// the `watch_fanout` comparison).
    pub fn with_watchers(mut self, watchers: usize) -> Self {
        self.watchers = watchers;
        self
    }

    /// Seed a database for this workload (every account starts at 100) and
    /// return it together with the row ids.
    pub fn seed_database(&self, level: IsolationLevel) -> (Database, Vec<RowId>) {
        let config = EngineConfig::new(level)
            .blocking(200)
            .without_history()
            .with_shards(self.shards)
            .with_grant_policy(self.grant)
            .with_backend(self.backend)
            .with_upgrade_strategy(self.upgrade)
            .with_read_path(self.read_path)
            .with_durability(self.durability)
            .with_group_commit(self.group_commit)
            .with_fairness(self.fairness);
        let db = Database::with_config(config);
        // Every account carries an indexed `bucket` key (its seed ordinal)
        // so range operations have an ordered index to scan.
        db.store().create_table("accounts");
        db.store().create_index("accounts", "bucket");
        let setup = db.begin();
        let ids: Vec<RowId> = (0..self.accounts)
            .map(|i| {
                setup
                    .insert(
                        "accounts",
                        Row::new().with("balance", 100).with("bucket", i as i64),
                    )
                    .expect("seed insert")
            })
            .collect();
        setup.commit().expect("seed commit");
        (db, ids)
    }

    fn pick_account<'a>(&self, rng: &mut StdRng, ids: &'a [RowId]) -> &'a RowId {
        if rng.gen_bool(self.hot_fraction.clamp(0.0, 1.0)) {
            &ids[0]
        } else {
            &ids[rng.gen_range(0..ids.len())]
        }
    }

    fn run_one(&self, db: &Database, ids: &[RowId], rng: &mut StdRng, stats: &mut WorkloadStats) {
        let read_only = rng.gen_bool(self.read_fraction.clamp(0.0, 1.0));
        let txn = db.begin();
        let mut failed: Option<TxnError> = None;
        for _ in 0..self.ops_per_txn {
            if self.think_micros > 0 {
                std::thread::sleep(Duration::from_micros(self.think_micros));
            }
            // A range operation: scan a small bucket window through the
            // ordered index, and in update transactions rewrite the first
            // row it returns (an RMW over the locked interval).
            if self.range_fraction > 0.0 && rng.gen_bool(self.range_fraction.clamp(0.0, 1.0)) {
                let span = (self.accounts / 8).max(1) as i64;
                let lo = rng.gen_range(0..self.accounts) as i64;
                let range = KeyInterval::range(Some(lo), Some(lo + span - 1));
                let scanned = if read_only {
                    txn.read_range("accounts", "bucket", &range)
                } else {
                    txn.read_range_for_update("accounts", "bucket", &range)
                };
                stats.reads += 1;
                match scanned {
                    Ok(rows) => {
                        if !read_only {
                            if let Some((id, row)) = rows.first() {
                                let balance = row.get_int("balance").unwrap_or(100);
                                stats.writes += 1;
                                if let Err(e) = txn.update(
                                    "accounts",
                                    *id,
                                    Row::new().with("balance", balance + 1),
                                ) {
                                    failed = Some(e);
                                    break;
                                }
                            }
                        }
                    }
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
                continue;
            }
            let id = *self.pick_account(rng, ids);
            // An update transaction's read is the RMW pattern: declare the
            // write intent so the configured UpgradeStrategy applies.
            let read = if read_only {
                txn.read("accounts", id)
            } else {
                txn.read_for_update("accounts", id)
            };
            stats.reads += 1;
            let balance = match read {
                Ok(row) => row.and_then(|r| r.get_int("balance")).unwrap_or(100),
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            };
            if !read_only {
                let delta: i64 = if rng.gen_bool(0.5) { 1 } else { -1 };
                stats.writes += 1;
                if let Err(e) =
                    txn.update("accounts", id, Row::new().with("balance", balance + delta))
                {
                    failed = Some(e);
                    break;
                }
            }
        }
        let outcome = match failed {
            None => txn.commit(),
            Some(e) => {
                if txn.is_active() {
                    let _ = txn.abort();
                }
                Err(e)
            }
        };
        match outcome {
            Ok(()) => stats.committed += 1,
            Err(TxnError::FirstCommitterConflict { .. }) => stats.aborted_first_committer += 1,
            Err(TxnError::Deadlock) => stats.aborted_deadlock += 1,
            Err(TxnError::LockTimeout) => stats.aborted_timeout += 1,
            Err(_) => stats.aborted_timeout += 1,
        }
    }

    /// Run the workload against a fresh database at `level`, using real
    /// threads and the blocking lock-wait policy.
    pub fn run(&self, level: IsolationLevel) -> WorkloadStats {
        let (db, ids) = self.seed_database(level);
        self.run_seeded(&db, &ids)
    }

    /// Run the workload's worker threads against an already-seeded
    /// database.  Split out of [`MixedWorkload::run`] so callers that need
    /// to inspect the database afterwards (the epoch read-path tests check
    /// [`Database::mv_read_stats`]) can keep hold of it.
    pub fn run_seeded(&self, db: &Database, ids: &[RowId]) -> WorkloadStats {
        // Fan-out mode: attach the table watchers before any worker
        // commits, so every watcher observes the identical stream.
        let watchers: Vec<_> = (0..self.watchers)
            .map(|_| db.watch_table("accounts"))
            .collect();
        let start = Instant::now();
        let mut totals = WorkloadStats::default();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|worker| {
                    let spec = *self;
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_add(worker as u64));
                        let mut stats = WorkloadStats::default();
                        for _ in 0..spec.txns_per_thread {
                            spec.run_one(db, ids, &mut rng, &mut stats);
                        }
                        stats
                    })
                })
                .collect();
            for handle in handles {
                totals.merge(&handle.join().expect("worker thread"));
            }
        });
        totals.elapsed = start.elapsed();
        // The delivery contract, asserted on every watched run: strictly
        // increasing commit timestamps, one event per notifying commit
        // (never more events than commits), and every watcher fanned the
        // same stream length.
        if let Some((first, rest)) = watchers.split_first() {
            let events = first.drain();
            for pair in events.windows(2) {
                assert!(
                    pair[0].commit_ts < pair[1].commit_ts,
                    "watcher delivery out of commit-timestamp order"
                );
            }
            assert!(
                events.len() as u64 <= totals.committed,
                "more notifications than committed transactions"
            );
            for other in rest {
                assert_eq!(
                    other.pending(),
                    events.len(),
                    "fan-out watchers must all see the same stream"
                );
            }
            totals.notifications = events.len() as u64;
        }
        totals
    }

    /// Run a long read-only "audit" transaction (summing every account)
    /// while `writers` short update transactions run to completion, and
    /// report whether the audit had to wait or abort.  This is the
    /// Section 4.2 claim that SI never blocks read-only transactions.
    pub fn long_reader_probe(&self, level: IsolationLevel) -> (bool, i64) {
        let (db, ids) = self.seed_database(level);
        let all = RowPredicate::whole_table("accounts");
        let expected: i64 = 100 * self.accounts as i64;

        let reader = db.begin();
        // Interleave: read half the table, let writers run, read the rest.
        let mut total = 0i64;
        let mut blocked = false;
        for id in ids.iter().take(self.accounts / 2) {
            match reader.read("accounts", *id) {
                Ok(row) => total += row.and_then(|r| r.get_int("balance")).unwrap_or(0),
                Err(_) => blocked = true,
            }
        }
        for id in ids.iter().skip(self.accounts / 2).take(4) {
            let w = db.begin();
            if let Ok(Some(row)) = w.read("accounts", *id) {
                let b = row.get_int("balance").unwrap_or(100);
                let _ = w.update("accounts", *id, Row::new().with("balance", b + 10));
            }
            let _ = w.commit();
        }
        for id in ids.iter().skip(self.accounts / 2) {
            match reader.read("accounts", *id) {
                Ok(row) => total += row.and_then(|r| r.get_int("balance")).unwrap_or(0),
                Err(_) => blocked = true,
            }
        }
        let _ = reader.commit();
        let _ = all;
        (blocked, total - expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MixedWorkload {
        MixedWorkload {
            accounts: 16,
            read_fraction: 0.5,
            ops_per_txn: 3,
            hot_fraction: 0.3,
            txns_per_thread: 30,
            threads: 3,
            seed: 7,
            think_micros: 0,
            shards: critique_storage::DEFAULT_SHARDS,
            grant: GrantPolicy::DirectHandoff,
            backend: BackendKind::MvStore,
            upgrade: UpgradeStrategy::SharedThenUpgrade,
            range_fraction: 0.0,
            read_path: ReadPath::Epoch,
            durability: Durability::Ephemeral,
            group_commit: GroupCommit::Off,
            fairness: FairnessPolicy::Barging,
            watchers: 0,
        }
    }

    #[test]
    fn workload_completes_on_every_backend() {
        for backend in BackendKind::ALL {
            let stats = small()
                .with_backend(backend)
                .run(IsolationLevel::Serializable);
            assert_eq!(stats.attempted(), 90, "{backend}");
            assert!(stats.committed > 0, "{backend}");
        }
    }

    #[test]
    fn contended_workload_completes_under_both_grant_policies() {
        let mut spec = small();
        spec.read_fraction = 0.0;
        spec.hot_fraction = 1.0;
        for grant in [GrantPolicy::DirectHandoff, GrantPolicy::WakeAll] {
            let stats = spec.with_grant(grant).run(IsolationLevel::Serializable);
            assert_eq!(stats.attempted(), 90, "{grant:?}");
            assert!(stats.committed > 0, "{grant:?}");
        }
    }

    #[test]
    fn durable_logstore_workload_completes() {
        let stats = small()
            .with_backend(BackendKind::LogStructured)
            .with_durability(Durability::Fsync)
            .run(IsolationLevel::Serializable);
        assert_eq!(stats.attempted(), 90);
        assert!(stats.committed > 0);
    }

    #[test]
    fn group_commit_workload_completes_durably() {
        let stats = small()
            .with_backend(BackendKind::LogStructured)
            .with_durability(Durability::Fsync)
            .with_group_commit(GroupCommit::On { window_micros: 100 })
            .run(IsolationLevel::Serializable);
        assert_eq!(stats.attempted(), 90);
        assert!(stats.committed > 0);
    }

    #[test]
    fn contended_workload_completes_under_queue_fifo_fairness() {
        let mut spec = small();
        spec.read_fraction = 0.0;
        spec.hot_fraction = 1.0;
        let stats = spec
            .with_fairness(FairnessPolicy::QueueFifo)
            .run(IsolationLevel::Serializable);
        assert_eq!(stats.attempted(), 90);
        assert!(stats.committed > 0);
    }

    #[test]
    fn update_lock_strategy_removes_deadlocks_from_the_hot_key_workload() {
        // Pure RMW traffic on one hot row: under U locks the would-be
        // upgraders serialise at the read, so no deadlock is possible (a
        // cycle would need either an upgrade collision — impossible, only
        // one U holder at a time — or a second lock, and there is none).
        let mut spec = small();
        spec.read_fraction = 0.0;
        spec.hot_fraction = 1.0;
        for grant in [GrantPolicy::DirectHandoff, GrantPolicy::WakeAll] {
            let stats = spec
                .with_grant(grant)
                .with_upgrade(UpgradeStrategy::UpdateLock)
                .run(IsolationLevel::Serializable);
            assert_eq!(stats.attempted(), 90, "{grant:?}");
            assert_eq!(stats.aborted_deadlock, 0, "{grant:?}");
            assert!(stats.committed > 0, "{grant:?}");
        }
    }

    #[test]
    fn range_mix_completes_on_every_backend_and_level() {
        let spec = small().with_range_fraction(0.4);
        for backend in BackendKind::ALL {
            for level in [
                IsolationLevel::ReadCommitted,
                IsolationLevel::SnapshotIsolation,
                IsolationLevel::Serializable,
            ] {
                let stats = spec.with_backend(backend).run(level);
                assert_eq!(stats.attempted(), 90, "{backend} at {level}");
                assert!(stats.committed > 0, "{backend} at {level}");
            }
        }
    }

    #[test]
    fn workload_completes_at_every_level() {
        for level in [
            IsolationLevel::ReadCommitted,
            IsolationLevel::RepeatableRead,
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::Serializable,
        ] {
            let stats = small().run(level);
            assert_eq!(stats.attempted(), 90, "at {level}");
            assert!(stats.committed > 0, "at {level}");
            assert!(stats.reads > 0);
        }
    }

    #[test]
    fn fanout_watchers_all_observe_the_same_stream() {
        // A single write-only worker with a fleet of watchers: every
        // committed transaction must notify every watcher (the in-run
        // assertions check ordering and stream equality; here we check
        // the count is exact, since with one worker every commit writes).
        let mut spec = small();
        spec.read_fraction = 0.0;
        spec.threads = 1;
        let stats = spec.with_watchers(16).run(IsolationLevel::Serializable);
        assert_eq!(stats.attempted(), 30);
        assert_eq!(stats.notifications, stats.committed);
    }

    #[test]
    fn unwatched_runs_record_zero_notifications() {
        let stats = small().run(IsolationLevel::Serializable);
        assert_eq!(stats.notifications, 0);
    }

    #[test]
    fn snapshot_isolation_aborts_are_first_committer_wins_only() {
        let mut spec = small();
        spec.read_fraction = 0.0;
        spec.hot_fraction = 0.9; // heavy contention on one row
        let stats = spec.run(IsolationLevel::SnapshotIsolation);
        // Snapshot Isolation takes no locks, so the only abort reason is
        // First-Committer-Wins (whether any occur depends on how much the
        // worker threads actually overlap on this machine).
        assert_eq!(stats.aborted_deadlock, 0);
        assert_eq!(stats.aborted_timeout, 0);
        assert_eq!(
            stats.committed + stats.aborted_first_committer,
            stats.attempted()
        );
    }

    #[test]
    fn read_only_workload_never_aborts_under_snapshot_isolation() {
        let mut spec = small();
        spec.read_fraction = 1.0;
        let stats = spec.run(IsolationLevel::SnapshotIsolation);
        assert_eq!(stats.aborted(), 0);
        assert_eq!(stats.committed, stats.attempted());
        assert_eq!(stats.writes, 0);
    }

    #[test]
    fn long_reader_is_never_blocked_under_snapshot_isolation() {
        let (blocked, drift) = small().long_reader_probe(IsolationLevel::SnapshotIsolation);
        assert!(!blocked);
        // The audit sees the snapshot as of its start: no drift.
        assert_eq!(drift, 0);
    }

    #[test]
    fn long_reader_sees_drift_under_read_committed() {
        let (blocked, drift) = small().long_reader_probe(IsolationLevel::ReadCommitted);
        assert!(!blocked);
        // Each committed +10 update that lands in the second half of the
        // scan is visible: the audit total drifts away from the invariant.
        assert!(drift > 0);
    }

    #[test]
    fn read_heavy_preset_is_95_percent_reads() {
        let spec = MixedWorkload::read_heavy();
        assert!((spec.read_fraction - 0.95).abs() < 1e-9);
        assert_eq!(spec.read_path, ReadPath::Epoch);
        assert_eq!(
            spec.with_read_path(ReadPath::Locked).read_path,
            ReadPath::Locked
        );
    }

    #[test]
    fn read_only_run_takes_zero_stripe_locks_on_the_epoch_path() {
        // The tentpole acceptance criterion, at the workload level: a
        // read-only MixedWorkload run on the epoch path must record *zero*
        // read-path stripe-lock acquisitions (seeding writes take stripe
        // write locks, but those are not read-path acquisitions), while
        // pinning an epoch for every read.
        let mut spec = small();
        spec.read_fraction = 1.0;
        for level in [
            IsolationLevel::ReadCommitted,
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::Serializable,
        ] {
            let (db, ids) = spec.seed_database(level);
            let stats = spec.run_seeded(&db, &ids);
            assert_eq!(stats.committed, stats.attempted(), "at {level}");
            let read_stats = db.mv_read_stats().expect("default backend has counters");
            assert_eq!(read_stats.read_lock_acquisitions(), 0, "at {level}");
            assert!(read_stats.read_pins() > 0, "at {level}");
        }
    }

    #[test]
    fn locked_baseline_counts_its_stripe_lock_acquisitions() {
        // Sanity check of the A/B instrument itself: the same read-only
        // run on the locked baseline must show a nonzero acquisition
        // count, or the epoch path's zero would be vacuous.
        let mut spec = small().with_read_path(ReadPath::Locked);
        spec.read_fraction = 1.0;
        let (db, ids) = spec.seed_database(IsolationLevel::SnapshotIsolation);
        let stats = spec.run_seeded(&db, &ids);
        assert!(stats.committed > 0);
        let read_stats = db.mv_read_stats().expect("default backend has counters");
        assert!(read_stats.read_lock_acquisitions() > 0);
        assert!(read_stats.read_pins() > 0);
    }

    #[test]
    fn stats_arithmetic() {
        let stats = WorkloadStats {
            committed: 80,
            aborted_first_committer: 10,
            aborted_deadlock: 5,
            aborted_timeout: 5,
            reads: 300,
            writes: 150,
            notifications: 0,
            elapsed: Duration::from_secs(2),
        };
        assert_eq!(stats.aborted(), 20);
        assert_eq!(stats.attempted(), 100);
        assert!((stats.abort_rate() - 0.2).abs() < 1e-9);
        assert!((stats.throughput() - 40.0).abs() < 1e-9);
    }
}
