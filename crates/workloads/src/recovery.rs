//! Crash-point differential harness over the durable log store.
//!
//! The durable LogStore's contract is that a crash loses nothing
//! committed and leaves nothing half-applied: recovery replays the
//! write-ahead segments, drops the torn tail, and aborts every
//! transaction without a commit record.  This module proves the contract
//! *end to end, through the engine*: a deterministic serial workload is
//! cut at an arbitrary operation index, the store is "killed" mid-flight
//! (the database is leaked, so no destructor tidies anything up), the
//! directory is recovered, and the remainder of the workload replays on a
//! fresh database over the recovered store.  The recorded history of that
//! remainder — in the paper's own notation — must be **byte-identical**
//! to a control run that stopped cleanly at the previous transaction
//! boundary, and so must the final table state.
//!
//! Determinism hinges on two choices mirrored from the storage layer's
//! invariants: rows are inserted only in the seed transaction (so an
//! aborted partial transaction can never burn row ids the control side
//! did not), and both sides resume their timestamp oracle past the
//! recovered store's largest commit timestamp (so the replayed suffix
//! allocates identical timestamps on both sides).

use critique_core::IsolationLevel;
use critique_engine::{BackendKind, Database, EngineConfig};
use critique_storage::{GroupCommit, LogStore, LogStoreConfig, Row, RowId, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::{Path, PathBuf};

/// One deterministic operation of a planned transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlannedOp {
    /// Read one account row.
    Read(RowId),
    /// Overwrite one account's balance with a planned value.
    Update(RowId, i64),
}

/// A deterministic serial workload for the crash-point differential: a
/// seed transaction inserting every account, then `txns` planned
/// transactions of point reads and updates, all derived from `seed`.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryWorkload {
    /// Number of rows inserted by the seed transaction (the only inserts
    /// anywhere — see the module docs).
    pub accounts: usize,
    /// Planned transactions after the seed.
    pub txns: usize,
    /// Operations per planned transaction.
    pub ops_per_txn: usize,
    /// Seed deriving every plan.
    pub seed: u64,
    /// Write-ahead log shards of the durable store under test (`1` is the
    /// single-chain layout; the sharded matrix legs raise it).
    pub shards: usize,
    /// Commit fsync scheduling of the store under test.  The mid-batch
    /// crash points ([`RecoveryWorkload::differential_mid_batch`]) only
    /// make sense under [`GroupCommit::On`].
    pub group_commit: GroupCommit,
}

impl Default for RecoveryWorkload {
    fn default() -> Self {
        RecoveryWorkload {
            accounts: 8,
            txns: 12,
            ops_per_txn: 3,
            seed: 42,
            shards: 1,
            group_commit: GroupCommit::Off,
        }
    }
}

/// The two sides of one crash-point differential, ready to compare.
#[derive(Clone, Debug)]
pub struct DifferentialOutcome {
    /// Transaction index the crash interrupted.
    pub crash_txn: usize,
    /// Operation index within that transaction where the crash hit.
    pub crash_op: usize,
    /// Suffix history of the control run (clean stop at the boundary,
    /// recover, replay `crash_txn..`), in the paper's notation.
    pub control_notation: String,
    /// Suffix history of the crashed run (killed mid-transaction,
    /// recover, replay `crash_txn..`), in the paper's notation.
    pub recovered_notation: String,
    /// Final per-account balances of the control run.
    pub control_state: Vec<(RowId, i64)>,
    /// Final per-account balances of the crashed-then-recovered run.
    pub recovered_state: Vec<(RowId, i64)>,
}

impl DifferentialOutcome {
    /// True when the two suffix histories are byte-identical.
    pub fn histories_identical(&self) -> bool {
        self.control_notation == self.recovered_notation
    }

    /// True when the two final states agree account by account.
    pub fn states_identical(&self) -> bool {
        self.control_state == self.recovered_state
    }

    /// Panic with both transcripts unless the sides agree exactly.
    pub fn assert_identical(&self) {
        assert!(
            self.histories_identical(),
            "crash at txn {} op {}: recovered suffix history diverged\n\
             control:   {}\nrecovered: {}",
            self.crash_txn,
            self.crash_op,
            self.control_notation,
            self.recovered_notation,
        );
        assert!(
            self.states_identical(),
            "crash at txn {} op {}: final state diverged\n\
             control:   {:?}\nrecovered: {:?}",
            self.crash_txn,
            self.crash_op,
            self.control_state,
            self.recovered_state,
        );
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "critique-crash-diff-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

impl RecoveryWorkload {
    /// The engine configuration both sides run: the log-structured
    /// backend, serializable locking, history recording on.  The store is
    /// attached via [`Database::with_store`], so the config's own
    /// durability knob stays at its default.
    fn config() -> EngineConfig {
        EngineConfig::new(IsolationLevel::Serializable).with_backend(BackendKind::LogStructured)
    }

    /// The durable store configuration both sides open: the workload's
    /// shard count and fsync scheduling over the default segmenting.
    fn log_config(&self) -> LogStoreConfig {
        LogStoreConfig {
            shards: self.shards,
            group_commit: self.group_commit,
            ..LogStoreConfig::default()
        }
    }

    /// The deterministic plan of transaction `txn_index`.
    pub fn plan(&self, txn_index: usize) -> Vec<PlannedOp> {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (txn_index as u64 + 1).wrapping_mul(0x9e37));
        (0..self.ops_per_txn)
            .map(|_| {
                let row = RowId(rng.gen_range(0..self.accounts) as u64);
                if rng.gen_bool(0.4) {
                    PlannedOp::Read(row)
                } else {
                    PlannedOp::Update(row, rng.gen_range(0..1_000_i64))
                }
            })
            .collect()
    }

    fn apply(txn: &critique_engine::Transaction, op: PlannedOp) {
        match op {
            PlannedOp::Read(row) => {
                txn.read("accounts", row).expect("serial read");
            }
            PlannedOp::Update(row, value) => {
                txn.update("accounts", row, Row::new().with("balance", value))
                    .expect("serial update");
            }
        }
    }

    fn run_txn(&self, db: &Database, txn_index: usize) {
        let txn = db.begin();
        for op in self.plan(txn_index) {
            Self::apply(&txn, op);
        }
        txn.commit().expect("serial commit");
    }

    /// Open a durable store in `dir`, seed the accounts, and run the
    /// planned transactions `0..prefix_txns`.  With `crash_op`
    /// `Some(j)`, transaction `prefix_txns` then executes its first `j`
    /// operations and the whole database is *leaked* — no commit, no
    /// abort, no destructor — which is as close to `kill -9` as one
    /// process gets: the write-ahead file holds a commit-less suffix and
    /// nothing in memory survives to tidy it.
    fn run_prefix(&self, dir: &Path, prefix_txns: usize, crash_op: Option<usize>) {
        let store = LogStore::open_durable(dir, self.log_config()).expect("open durable store");
        let db = Database::with_store(Self::config(), Box::new(store));
        db.store().create_table("accounts");
        db.store().create_index("accounts", "bucket");
        let seed_txn = db.begin();
        for i in 0..self.accounts {
            seed_txn
                .insert(
                    "accounts",
                    Row::new().with("balance", 100).with("bucket", i as i64),
                )
                .expect("seed insert");
        }
        seed_txn.commit().expect("seed commit");
        for k in 0..prefix_txns {
            self.run_txn(&db, k);
        }
        if let Some(crash_op) = crash_op {
            let doomed = db.begin();
            for &op in self.plan(prefix_txns).iter().take(crash_op) {
                Self::apply(&doomed, op);
            }
            // The crash: leak the in-flight transaction and the database.
            std::mem::forget(doomed);
            std::mem::forget(db);
        }
    }

    /// Open a durable store in `dir`, seed the accounts, run transactions
    /// `0..acked` to durable acknowledgement, then catch the next
    /// `in_batch` transactions **inside one group-commit batch**: commit
    /// flushes are suspended, so the engine acknowledges them while their
    /// commit records sit in the batch queue, covered by no fsync.  With
    /// `batch_fsynced` the batch is released (one fsync covers it) before
    /// the crash; without, the crash lands between the enqueue and the
    /// leader's fsync.  The crash itself leaks the database and then
    /// plays the power loss the leak alone cannot: every open write-ahead
    /// file is truncated to its last-fsynced length, dropping whatever
    /// the OS had buffered past the durable horizon.
    fn run_prefix_mid_batch(&self, dir: &Path, acked: usize, in_batch: usize, batch_fsynced: bool) {
        let store = LogStore::open_durable(dir, self.log_config()).expect("open durable store");
        let db = Database::with_store(Self::config(), Box::new(store));
        db.store().create_table("accounts");
        db.store().create_index("accounts", "bucket");
        let seed_txn = db.begin();
        for i in 0..self.accounts {
            seed_txn
                .insert(
                    "accounts",
                    Row::new().with("balance", 100).with("bucket", i as i64),
                )
                .expect("seed insert");
        }
        seed_txn.commit().expect("seed commit");
        for k in 0..acked {
            self.run_txn(&db, k);
        }
        let tails = {
            let log = db
                .store()
                .as_any()
                .downcast_ref::<LogStore>()
                .expect("mid-batch crashes need the log-structured backend");
            log.suspend_commit_flushes();
            for k in acked..acked + in_batch {
                self.run_txn(&db, k);
            }
            if batch_fsynced {
                log.flush_held_commits();
            }
            log.durable_file_tails()
        };
        std::mem::forget(db);
        for (path, synced) in tails {
            let file = fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .expect("reopen write-ahead file for the power cut");
            file.set_len(synced)
                .expect("truncate to the durable prefix");
            file.sync_all().expect("sync the truncation");
        }
    }

    /// Recover `dir` and replay transactions `from_txn..` on a fresh
    /// database over the recovered store, returning the suffix history
    /// notation and the final per-account state.
    fn run_suffix(&self, dir: &Path, from_txn: usize) -> (String, Vec<(RowId, i64)>) {
        let store = LogStore::recover(dir).expect("recover durable store");
        let resume = store.last_commit_ts().unwrap_or(Timestamp(0));
        let db = Database::with_store(Self::config(), Box::new(store));
        db.advance_clock_past(resume);
        for k in from_txn..self.txns {
            self.run_txn(&db, k);
        }
        let notation = db.recorded_history().to_notation();
        let state = (0..self.accounts)
            .map(|i| {
                let id = RowId(i as u64);
                let balance = db
                    .read_committed("accounts", id)
                    .and_then(|row| row.get_int("balance"))
                    .expect("seeded account");
                (id, balance)
            })
            .collect();
        (notation, state)
    }

    /// Run one crash-point differential: crash mid-transaction at
    /// (`crash_txn`, `crash_op`), recover, replay the remainder, and
    /// return it next to a control run that stopped cleanly at the
    /// `crash_txn` boundary and went through the same recovery.
    pub fn differential(&self, crash_txn: usize, crash_op: usize) -> DifferentialOutcome {
        let crash_txn = crash_txn.min(self.txns.saturating_sub(1));
        let crash_op = crash_op.min(self.ops_per_txn);

        let control_dir = scratch_dir("control");
        self.run_prefix(&control_dir, crash_txn, None);
        let (control_notation, control_state) = self.run_suffix(&control_dir, crash_txn);
        let _ = fs::remove_dir_all(&control_dir);

        let crashed_dir = scratch_dir("crashed");
        self.run_prefix(&crashed_dir, crash_txn, Some(crash_op));
        let (recovered_notation, recovered_state) = self.run_suffix(&crashed_dir, crash_txn);
        let _ = fs::remove_dir_all(&crashed_dir);

        DifferentialOutcome {
            crash_txn,
            crash_op,
            control_notation,
            recovered_notation,
            control_state,
            recovered_state,
        }
    }

    /// Run one mid-batch crash-point differential: transactions
    /// `0..acked` reach durable acknowledgement, the next `in_batch`
    /// transactions are caught inside one group-commit batch, and the
    /// power cut lands either before (`batch_fsynced == false`) or after
    /// (`true`) the batch leader's fsync.  The recovered prefix must be
    /// *exactly* the durably-acknowledged commits: without the batch
    /// fsync the caught transactions vanish wholesale (their engine-level
    /// acknowledgement was never durable), with it they all survive —
    /// and either way the replayed suffix is byte-identical to a control
    /// run that stopped cleanly at the surviving boundary.
    ///
    /// In the outcome, `crash_txn` is the first replayed transaction
    /// (the surviving boundary) and `crash_op` the number of commits the
    /// torn batch lost.
    pub fn differential_mid_batch(
        &self,
        acked: usize,
        in_batch: usize,
        batch_fsynced: bool,
    ) -> DifferentialOutcome {
        assert!(
            matches!(self.group_commit, GroupCommit::On { .. }),
            "mid-batch crash points require GroupCommit::On"
        );
        let acked = acked.min(self.txns.saturating_sub(1));
        let in_batch = in_batch.min(self.txns - acked);
        let surviving = acked + if batch_fsynced { in_batch } else { 0 };

        let control_dir = scratch_dir("mid-batch-control");
        self.run_prefix(&control_dir, surviving, None);
        let (control_notation, control_state) = self.run_suffix(&control_dir, surviving);
        let _ = fs::remove_dir_all(&control_dir);

        let crashed_dir = scratch_dir("mid-batch-crashed");
        self.run_prefix_mid_batch(&crashed_dir, acked, in_batch, batch_fsynced);
        let (recovered_notation, recovered_state) = self.run_suffix(&crashed_dir, surviving);
        let _ = fs::remove_dir_all(&crashed_dir);

        DifferentialOutcome {
            crash_txn: surviving,
            crash_op: if batch_fsynced { 0 } else { in_batch },
            control_notation,
            recovered_notation,
            control_state,
            recovered_state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_insert_free() {
        let spec = RecoveryWorkload::default();
        for k in 0..spec.txns {
            assert_eq!(spec.plan(k), spec.plan(k), "txn {k}");
            assert_eq!(spec.plan(k).len(), spec.ops_per_txn, "txn {k}");
        }
        // Adjacent plans differ (the rng actually varies by index).
        assert_ne!(spec.plan(0), spec.plan(1));
    }

    #[test]
    fn differential_is_identical_at_a_mid_workload_crash() {
        let spec = RecoveryWorkload {
            accounts: 6,
            txns: 8,
            ops_per_txn: 3,
            seed: 7,
            ..RecoveryWorkload::default()
        };
        let outcome = spec.differential(4, 2);
        assert!(!outcome.control_notation.is_empty());
        outcome.assert_identical();
    }

    #[test]
    fn differential_is_identical_when_the_crash_hits_before_any_op() {
        let spec = RecoveryWorkload {
            accounts: 4,
            txns: 5,
            ops_per_txn: 2,
            seed: 3,
            ..RecoveryWorkload::default()
        };
        spec.differential(0, 0).assert_identical();
    }

    #[test]
    fn torn_batch_loses_exactly_the_unfsynced_commits() {
        let spec = RecoveryWorkload {
            accounts: 6,
            txns: 8,
            ops_per_txn: 3,
            seed: 11,
            group_commit: GroupCommit::On { window_micros: 0 },
            ..RecoveryWorkload::default()
        };
        // Three commits caught in a batch the leader never fsyncs: the
        // recovered prefix must be exactly the four acked transactions.
        let outcome = spec.differential_mid_batch(4, 3, false);
        assert_eq!(outcome.crash_txn, 4);
        assert_eq!(outcome.crash_op, 3);
        outcome.assert_identical();
    }

    #[test]
    fn fsynced_batch_survives_the_crash_wholesale() {
        let spec = RecoveryWorkload {
            accounts: 6,
            txns: 8,
            ops_per_txn: 3,
            seed: 11,
            shards: 4,
            group_commit: GroupCommit::On { window_micros: 0 },
        };
        // The same batch, but the leader's single fsync lands before the
        // power cut: all seven commits survive recovery.
        let outcome = spec.differential_mid_batch(4, 3, true);
        assert_eq!(outcome.crash_txn, 7);
        outcome.assert_identical();
    }
}
