//! # critique-workloads
//!
//! Executable versions of the situations the paper uses to motivate and
//! differentiate isolation levels:
//!
//! * [`scenarios`] — one deterministic two-transaction interleaving per
//!   phenomenon column of Table 4 (dirty write, dirty read, cursor lost
//!   update, lost update, fuzzy read, ANSI phantom, predicate-constraint
//!   phantom, read skew, write skew).  Each runs against a
//!   [`critique_engine::Database`] at any isolation level and reports
//!   whether the anomalous *outcome* actually materialised — these are the
//!   rows/columns the harness uses to regenerate Table 4.
//! * [`bank`] — the H1/H2 bank-transfer fixtures (inconsistent analysis)
//!   and helpers shared by examples and benchmarks.
//! * [`mixed`] — a randomised multi-threaded workload (configurable
//!   read/write mix, contention, transaction length, and client think
//!   time) with throughput and abort statistics, used by the
//!   Snapshot-Isolation-vs-locking benchmarks that back the qualitative
//!   claims of Section 4.2.
//! * [`scaling`] — a thread-count scaling sweep over the mixed workload
//!   comparing the sharded substrate against the single-shard (global
//!   lock) baseline, rendered as text and as the hand-rolled JSON behind
//!   `BENCH_scaling.json`.
//! * [`recovery`] — the crash-point differential harness over the durable
//!   log store: kill a seeded workload mid-transaction, recover the
//!   write-ahead directory, replay the remainder, and require the suffix
//!   history to be byte-identical to an uncrashed control run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod bank;
pub mod mixed;
pub mod recovery;
pub mod scaling;
pub mod scenarios;

pub use crate::bank::BankFixture;
pub use crate::mixed::{MixedWorkload, WorkloadStats};
pub use crate::recovery::{DifferentialOutcome, PlannedOp, RecoveryWorkload};
pub use crate::scaling::{
    HandoffComparison, HandoffPoint, RangeComparison, RangePoint, ScalingPoint, ScalingReport,
    ScalingSeries, ScalingSuite, SubstrateConfig, WatchFanoutComparison, WatchFanoutPoint,
};
pub use crate::scenarios::{AnomalyScenario, ScenarioOutcome, ScenarioResult};

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::bank::BankFixture;
    pub use crate::mixed::{MixedWorkload, WorkloadStats};
    pub use crate::recovery::{DifferentialOutcome, PlannedOp, RecoveryWorkload};
    pub use crate::scaling::{
        HandoffComparison, HandoffPoint, RangeComparison, RangePoint, ScalingPoint, ScalingReport,
        ScalingSeries, ScalingSuite, SubstrateConfig, WatchFanoutComparison, WatchFanoutPoint,
    };
    pub use crate::scenarios::{AnomalyScenario, ScenarioOutcome, ScenarioResult};
}
