//! Read-only snapshot views of the committed state at a timestamp.
//!
//! Snapshots are the read mechanism of Snapshot Isolation ("each
//! transaction reads data from a snapshot of the committed data as of the
//! time the transaction started", Section 4.2) and also power the paper's
//! "time travel" observation: a transaction may run with a very old
//! timestamp and take a historical perspective of the database without
//! blocking or being blocked by writers.
//!
//! "Without blocking" is literal on the default backend: every snapshot
//! read funnels into [`crate::store::MvStore`]'s epoch-pinned read path,
//! which pins an epoch ([`crate::ebr::Ebr`]) and traverses the atomic
//! version chains without touching any write stripe lock.

use crate::backend::StorageBackend;
use crate::predicate::RowPredicate;
use crate::row::{Row, RowId};
use crate::timestamp::Timestamp;

/// A read-only view of the committed database state as of a timestamp.
///
/// Snapshots are backend-agnostic: they hold any [`StorageBackend`] and
/// answer every read through its `*_committed_as_of` surface.
#[derive(Clone, Copy)]
pub struct Snapshot<'a> {
    store: &'a dyn StorageBackend,
    ts: Timestamp,
}

impl<'a> Snapshot<'a> {
    /// Create a snapshot of `store` as of `ts`.
    pub fn new(store: &'a dyn StorageBackend, ts: Timestamp) -> Self {
        Snapshot { store, ts }
    }

    /// The snapshot's timestamp.
    pub fn timestamp(&self) -> Timestamp {
        self.ts
    }

    /// Read a row as of the snapshot.
    pub fn get(&self, table: &str, id: RowId) -> Option<Row> {
        self.store.get_committed_as_of(table, id, self.ts)
    }

    /// Scan the rows satisfying a predicate as of the snapshot.
    pub fn scan(&self, predicate: &RowPredicate) -> Vec<(RowId, Row)> {
        self.store.scan_committed_as_of(predicate, self.ts)
    }

    /// Sum an integer column over the rows satisfying a predicate —
    /// convenience for the constraint checks in the workloads (total bank
    /// balance, total task hours, employee counts).
    pub fn sum(&self, predicate: &RowPredicate, column: &str) -> i64 {
        self.scan(predicate)
            .iter()
            .filter_map(|(_, row)| row.get_int(column))
            .sum()
    }

    /// Count the rows satisfying a predicate as of the snapshot.
    pub fn count(&self, predicate: &RowPredicate) -> usize {
        self.scan(predicate).len()
    }
}

impl std::fmt::Debug for Snapshot<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot").field("ts", &self.ts).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Condition, RowPredicate};
    use crate::store::MvStore;
    use crate::timestamp::TxnToken;

    fn seeded_store() -> MvStore {
        let store = MvStore::new();
        store.insert(
            "accounts",
            TxnToken(1),
            Row::new().with("balance", 50).with("owner", "x"),
        );
        store.insert(
            "accounts",
            TxnToken(1),
            Row::new().with("balance", 50).with("owner", "y"),
        );
        store.commit(TxnToken(1), Timestamp(1));
        store
    }

    #[test]
    fn snapshot_reads_are_frozen_in_time() {
        let store = seeded_store();
        let all = RowPredicate::whole_table("accounts");
        let snap1 = store.snapshot(Timestamp(1));
        assert_eq!(snap1.count(&all), 2);
        assert_eq!(snap1.sum(&all, "balance"), 100);

        // A later transfer does not change what the old snapshot sees.
        let ids = store.row_ids("accounts");
        store
            .update(
                "accounts",
                TxnToken(2),
                ids[0],
                Row::new().with("balance", 10).with("owner", "x"),
            )
            .unwrap();
        store
            .update(
                "accounts",
                TxnToken(2),
                ids[1],
                Row::new().with("balance", 90).with("owner", "y"),
            )
            .unwrap();
        store.commit(TxnToken(2), Timestamp(5));

        assert_eq!(snap1.sum(&all, "balance"), 100);
        assert_eq!(
            snap1.get("accounts", ids[0]).unwrap().get_int("balance"),
            Some(50)
        );
        let snap5 = store.snapshot(Timestamp(5));
        assert_eq!(snap5.sum(&all, "balance"), 100);
        assert_eq!(
            snap5.get("accounts", ids[0]).unwrap().get_int("balance"),
            Some(10)
        );
    }

    #[test]
    fn snapshot_before_any_commit_is_empty() {
        let store = seeded_store();
        let snap0 = store.snapshot(Timestamp(0));
        let all = RowPredicate::whole_table("accounts");
        assert_eq!(snap0.count(&all), 0);
        assert_eq!(snap0.sum(&all, "balance"), 0);
        assert!(snap0.get("accounts", RowId(0)).is_none());
        assert_eq!(snap0.timestamp(), Timestamp(0));
    }

    #[test]
    fn snapshot_scan_respects_predicates() {
        let store = seeded_store();
        let snap = store.snapshot(Timestamp(1));
        let owner_x = RowPredicate::new("accounts", Condition::eq("owner", "x"));
        assert_eq!(snap.count(&owner_x), 1);
        assert_eq!(snap.scan(&owner_x)[0].1.get_text("owner"), Some("x"));
    }
}
