//! Rows and row identifiers.

use crate::value::ColumnValue;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a row within a table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct RowId(pub u64);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A row: an ordered map of column name → value.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Row {
    columns: BTreeMap<String, ColumnValue>,
}

impl Row {
    /// An empty row.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style column assignment.
    pub fn with(mut self, column: &str, value: impl Into<ColumnValue>) -> Self {
        self.columns.insert(column.to_string(), value.into());
        self
    }

    /// Set a column in place.
    pub fn set(&mut self, column: &str, value: impl Into<ColumnValue>) {
        self.columns.insert(column.to_string(), value.into());
    }

    /// Get a column value.
    pub fn get(&self, column: &str) -> Option<&ColumnValue> {
        self.columns.get(column)
    }

    /// Get an integer column.
    pub fn get_int(&self, column: &str) -> Option<i64> {
        self.get(column).and_then(ColumnValue::as_int)
    }

    /// Get a text column.
    pub fn get_text(&self, column: &str) -> Option<&str> {
        self.get(column).and_then(ColumnValue::as_text)
    }

    /// Get a boolean column.
    pub fn get_bool(&self, column: &str) -> Option<bool> {
        self.get(column).and_then(ColumnValue::as_bool)
    }

    /// Column names in order.
    pub fn columns(&self) -> impl Iterator<Item = (&str, &ColumnValue)> {
        self.columns.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Merge another row's columns into this one (the other wins on
    /// conflicts) — the semantics of an UPDATE statement's SET list.
    pub fn updated_with(&self, changes: &Row) -> Row {
        let mut merged = self.clone();
        for (k, v) in &changes.columns {
            merged.columns.insert(k.clone(), v.clone());
        }
        merged
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let row = Row::new()
            .with("balance", 50)
            .with("owner", "alice")
            .with("active", true);
        assert_eq!(row.get_int("balance"), Some(50));
        assert_eq!(row.get_text("owner"), Some("alice"));
        assert_eq!(row.get_bool("active"), Some(true));
        assert_eq!(row.get("missing"), None);
        assert_eq!(row.len(), 3);
        assert!(!row.is_empty());
    }

    #[test]
    fn set_overwrites() {
        let mut row = Row::new().with("x", 1);
        row.set("x", 2);
        assert_eq!(row.get_int("x"), Some(2));
    }

    #[test]
    fn updated_with_merges() {
        let base = Row::new().with("balance", 100).with("owner", "bob");
        let changes = Row::new().with("balance", 70);
        let merged = base.updated_with(&changes);
        assert_eq!(merged.get_int("balance"), Some(70));
        assert_eq!(merged.get_text("owner"), Some("bob"));
        // Original unchanged.
        assert_eq!(base.get_int("balance"), Some(100));
    }

    #[test]
    fn display_lists_columns() {
        let row = Row::new().with("a", 1).with("b", "x");
        let text = row.to_string();
        assert!(text.contains("a: 1"));
        assert!(text.contains("b: 'x'"));
        assert_eq!(RowId(7).to_string(), "#7");
    }
}
