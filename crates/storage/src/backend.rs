//! The storage-backend abstraction: isolation levels are properties of
//! *histories*, not of any particular storage engine.
//!
//! The paper's Table 3/4 verdicts are statements about which operation
//! interleavings an isolation discipline admits.  Nothing in that argument
//! cares whether versions live in in-memory chains ([`MvStore`]) or in an
//! append-only log ([`crate::logstore::LogStore`]) — so the engine layer
//! talks to storage exclusively through [`StorageBackend`], and the
//! conformance exerciser replays the same seed matrix against every
//! implementation to prove the verdicts are backend-independent.
//!
//! The trait is the exact surface the schedulers consume:
//!
//! * **writes** install uncommitted versions (`insert` / `update` /
//!   `delete`) and are tracked per transaction (`writes_of`);
//! * **reads** pick a version by visibility rule — dirty (`*_latest_any`),
//!   committed (`*_latest_committed`), historical (`*_committed_as_of`),
//!   or Snapshot Isolation (`*_visible`: own uncommitted write first, else
//!   the committed state as of the start timestamp);
//! * **termination** stamps (`commit`) or discards (`abort`) a
//!   transaction's versions;
//! * **validation** asks the First-Committer-Wins and first-writer-wins
//!   questions of Sections 4.2/4.3 (`first_committer_conflict`,
//!   `has_foreign_uncommitted_on_writes`).
//!
//! Implementations must keep the *semantics* of these methods identical —
//! the differential property test (`tests/backend_equivalence.rs`) replays
//! random op sequences against every pair of backends and requires
//! bit-identical answers from every read surface.
//!
//! # Adding a third backend
//!
//! Implement [`StorageBackend`], add a [`BackendKind`] variant wiring its
//! constructor, and the engine, the workloads, the scaling bench, and the
//! conformance exerciser pick it up through configuration; extend the
//! differential test's backend list so equivalence is enforced from the
//! first commit.

use crate::logstore::{LogStore, LogStoreConfig};
use crate::predicate::{KeyInterval, RowPredicate};
use crate::row::{Row, RowId};
use crate::snapshot::Snapshot;
use crate::store::{MvReadStats, MvStore, ReadPath, StorageError, TableName, WriteKind};
use crate::timestamp::{Timestamp, TxnToken};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// Which version of each row a scan reads: the visibility rules of the
/// point reads, lifted into a parameter so the range scan needs a single
/// entry point instead of one method per rule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScanView {
    /// The most recent version regardless of commit state (a dirty read).
    LatestAny,
    /// The most recent committed version.
    LatestCommitted,
    /// The committed state as of a timestamp.
    CommittedAsOf(Timestamp),
    /// Snapshot Isolation visibility: the reader's own uncommitted write
    /// first, otherwise the state committed as of its start timestamp.
    Visible {
        /// The reading transaction.
        reader: TxnToken,
        /// The reader's start timestamp.
        start_ts: Timestamp,
    },
}

/// Sort a scan result into the pinned, backend-independent order:
/// ascending row id — or, when the table carries an ordered secondary
/// index, ascending `(index key, row id)` with unkeyed rows (missing or
/// non-integer values in the indexed column) after every keyed row.  Both
/// backends route every `scan_*` result through this one function, so the
/// differential tests can require order-identical output.
pub(crate) fn sort_scan_output(indexed_column: Option<&str>, rows: &mut [(RowId, Row)]) {
    match indexed_column {
        None => rows.sort_unstable_by_key(|(id, _)| *id),
        Some(column) => rows.sort_unstable_by(|(ia, ra), (ib, rb)| {
            let ka = ra.get_int(column);
            let kb = rb.get_int(column);
            (ka.is_none(), ka, *ia).cmp(&(kb.is_none(), kb, *ib))
        }),
    }
}

/// The storage surface the isolation schedulers run against.
///
/// All methods take `&self`: a backend is internally synchronised and
/// shared between worker threads.  The trait is object-safe — the engine
/// holds a `Box<dyn StorageBackend>` chosen at configuration time.
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// Short stable name of this backend (`"mvstore"`, `"logstore"`, …) —
    /// used in bench labels and test diagnostics.
    fn backend_name(&self) -> &'static str;

    // ------------------------------------------------------------------
    // Tables.
    // ------------------------------------------------------------------

    /// Create a table if it does not already exist.
    fn create_table(&self, table: &str);

    /// All table names, in ascending order.
    fn tables(&self) -> Vec<TableName>;

    /// All row ids ever allocated in a table (whatever their visibility),
    /// in ascending order.
    fn row_ids(&self, table: &str) -> Vec<RowId>;

    // ------------------------------------------------------------------
    // Writes.
    // ------------------------------------------------------------------

    /// Insert a new row as an uncommitted version by `writer`, returning
    /// its id.  The table is created on demand; ids are allocated
    /// per-table, sequentially from 0.
    fn insert(&self, table: &str, writer: TxnToken, row: Row) -> RowId;

    /// Install a new uncommitted version of an existing row.
    fn update(
        &self,
        table: &str,
        writer: TxnToken,
        id: RowId,
        row: Row,
    ) -> Result<(), StorageError>;

    /// Install an uncommitted tombstone for an existing row.
    fn delete(&self, table: &str, writer: TxnToken, id: RowId) -> Result<(), StorageError>;

    // ------------------------------------------------------------------
    // Point reads.
    // ------------------------------------------------------------------

    /// The most recent version regardless of commit state (a dirty read).
    fn get_latest_any(&self, table: &str, id: RowId) -> Option<Row>;

    /// The most recent committed version.
    fn get_latest_committed(&self, table: &str, id: RowId) -> Option<Row>;

    /// The version committed as of `ts`.
    fn get_committed_as_of(&self, table: &str, id: RowId, ts: Timestamp) -> Option<Row>;

    /// Snapshot Isolation visibility: `reader`'s own uncommitted write if
    /// any, otherwise the version committed as of `start_ts`.
    fn get_visible(
        &self,
        table: &str,
        id: RowId,
        reader: TxnToken,
        start_ts: Timestamp,
    ) -> Option<Row>;

    // ------------------------------------------------------------------
    // Predicate scans.  Result order is pinned and backend-independent:
    // ascending row id, or — when the table carries an ordered secondary
    // index — ascending (index key, row id) with unkeyed rows last.
    // ------------------------------------------------------------------

    /// Scan the rows satisfying `predicate`, dirty reads included.
    fn scan_latest_any(&self, predicate: &RowPredicate) -> Vec<(RowId, Row)>;

    /// Scan the rows satisfying `predicate` in the latest committed state.
    fn scan_latest_committed(&self, predicate: &RowPredicate) -> Vec<(RowId, Row)>;

    /// Scan the committed state as of `ts`.
    fn scan_committed_as_of(&self, predicate: &RowPredicate, ts: Timestamp) -> Vec<(RowId, Row)>;

    /// Scan with Snapshot Isolation visibility.
    fn scan_visible(
        &self,
        predicate: &RowPredicate,
        reader: TxnToken,
        start_ts: Timestamp,
    ) -> Vec<(RowId, Row)>;

    // ------------------------------------------------------------------
    // Ordered secondary indexes and range scans.
    // ------------------------------------------------------------------

    /// Register an ordered secondary index over the integer values of
    /// `column` in `table`, creating the table on demand and backfilling
    /// every live version already stored.  A table carries at most one
    /// index; re-registering the same column is a no-op.  Call during
    /// setup, before concurrent traffic — maintenance afterwards is part
    /// of every write path.
    fn create_index(&self, table: &str, column: &str);

    /// The indexed column of `table`, if an index has been registered.
    fn indexed_column(&self, table: &str) -> Option<String>;

    /// Scan the rows whose `column` value is an integer inside `range`,
    /// each viewed through `view`.  Result order is pinned: ascending
    /// `(key, row id)`, identical across backends.  Rows lacking an
    /// integer value in `column` are never returned — a range addresses
    /// the integer key space.  When the registered index covers `column`
    /// it prunes the candidate set; otherwise the scan falls back to a
    /// full pass with identical results.
    fn scan_range(
        &self,
        table: &str,
        column: &str,
        range: &KeyInterval,
        view: ScanView,
    ) -> Vec<(RowId, Row)>;

    // ------------------------------------------------------------------
    // Transaction bookkeeping and validation.
    // ------------------------------------------------------------------

    /// The rows written so far by an in-flight transaction, in write order.
    fn writes_of(&self, writer: TxnToken) -> Vec<(TableName, RowId, WriteKind)>;

    /// The First-Committer-Wins check (Section 4.2): the first of
    /// `writer`'s written rows also written by a transaction that committed
    /// after `start_ts`, if any.
    fn first_committer_conflict(
        &self,
        writer: TxnToken,
        start_ts: Timestamp,
    ) -> Option<(TableName, RowId)>;

    /// True if any row written by `writer` currently has an uncommitted
    /// version installed by a *different* transaction.
    fn has_foreign_uncommitted_on_writes(&self, writer: TxnToken) -> bool;

    /// Commit all of `writer`'s versions at timestamp `ts`.
    fn commit(&self, writer: TxnToken, ts: Timestamp);

    /// Make `writer`'s commit durable, if the backend defers durability
    /// out of [`StorageBackend::commit`].  The engine calls this *after*
    /// releasing its commit-sequence lock, so a group-committing backend
    /// can park the caller behind one batched fsync without stalling
    /// other committers' timestamp allocation.  Default: no-op (in-memory
    /// backends, and durable ones that fsync inside `commit`).
    fn flush_commit(&self, _writer: TxnToken) {}

    /// Roll back all of `writer`'s uncommitted versions.
    fn abort(&self, writer: TxnToken);

    // ------------------------------------------------------------------
    // Snapshots and metrics.
    // ------------------------------------------------------------------

    /// A read-only snapshot view of the committed state as of `ts`.
    fn snapshot(&self, ts: Timestamp) -> Snapshot<'_>;

    /// Number of rows whose latest committed version exists (not deleted).
    fn committed_row_count(&self, table: &str) -> usize;

    /// Total number of live (non-aborted) versions the backend holds.
    fn version_count(&self) -> usize;

    /// Downcast hook: recovery and bench harnesses reach concrete-type
    /// surfaces (fsync counters, crash-point hooks) through the trait
    /// object the engine hands out.
    fn as_any(&self) -> &dyn Any;
}

/// [`MvStore`] is the reference implementation: the trait methods delegate
/// to its inherent methods one-for-one, so the sharded version-chain store
/// keeps its concrete API for direct users (tests, benches) while the
/// engine consumes it through the trait.
impl StorageBackend for MvStore {
    fn backend_name(&self) -> &'static str {
        "mvstore"
    }

    fn create_table(&self, table: &str) {
        MvStore::create_table(self, table)
    }

    fn tables(&self) -> Vec<TableName> {
        MvStore::tables(self)
    }

    fn row_ids(&self, table: &str) -> Vec<RowId> {
        MvStore::row_ids(self, table)
    }

    fn insert(&self, table: &str, writer: TxnToken, row: Row) -> RowId {
        MvStore::insert(self, table, writer, row)
    }

    fn update(
        &self,
        table: &str,
        writer: TxnToken,
        id: RowId,
        row: Row,
    ) -> Result<(), StorageError> {
        MvStore::update(self, table, writer, id, row)
    }

    fn delete(&self, table: &str, writer: TxnToken, id: RowId) -> Result<(), StorageError> {
        MvStore::delete(self, table, writer, id)
    }

    fn get_latest_any(&self, table: &str, id: RowId) -> Option<Row> {
        MvStore::get_latest_any(self, table, id)
    }

    fn get_latest_committed(&self, table: &str, id: RowId) -> Option<Row> {
        MvStore::get_latest_committed(self, table, id)
    }

    fn get_committed_as_of(&self, table: &str, id: RowId, ts: Timestamp) -> Option<Row> {
        MvStore::get_committed_as_of(self, table, id, ts)
    }

    fn get_visible(
        &self,
        table: &str,
        id: RowId,
        reader: TxnToken,
        start_ts: Timestamp,
    ) -> Option<Row> {
        MvStore::get_visible(self, table, id, reader, start_ts)
    }

    fn scan_latest_any(&self, predicate: &RowPredicate) -> Vec<(RowId, Row)> {
        MvStore::scan_latest_any(self, predicate)
    }

    fn scan_latest_committed(&self, predicate: &RowPredicate) -> Vec<(RowId, Row)> {
        MvStore::scan_latest_committed(self, predicate)
    }

    fn scan_committed_as_of(&self, predicate: &RowPredicate, ts: Timestamp) -> Vec<(RowId, Row)> {
        MvStore::scan_committed_as_of(self, predicate, ts)
    }

    fn scan_visible(
        &self,
        predicate: &RowPredicate,
        reader: TxnToken,
        start_ts: Timestamp,
    ) -> Vec<(RowId, Row)> {
        MvStore::scan_visible(self, predicate, reader, start_ts)
    }

    fn create_index(&self, table: &str, column: &str) {
        MvStore::create_index(self, table, column)
    }

    fn indexed_column(&self, table: &str) -> Option<String> {
        MvStore::indexed_column(self, table)
    }

    fn scan_range(
        &self,
        table: &str,
        column: &str,
        range: &KeyInterval,
        view: ScanView,
    ) -> Vec<(RowId, Row)> {
        MvStore::scan_range(self, table, column, range, view)
    }

    fn writes_of(&self, writer: TxnToken) -> Vec<(TableName, RowId, WriteKind)> {
        MvStore::writes_of(self, writer)
    }

    fn first_committer_conflict(
        &self,
        writer: TxnToken,
        start_ts: Timestamp,
    ) -> Option<(TableName, RowId)> {
        MvStore::first_committer_conflict(self, writer, start_ts)
    }

    fn has_foreign_uncommitted_on_writes(&self, writer: TxnToken) -> bool {
        MvStore::has_foreign_uncommitted_on_writes(self, writer)
    }

    fn commit(&self, writer: TxnToken, ts: Timestamp) {
        MvStore::commit(self, writer, ts)
    }

    fn abort(&self, writer: TxnToken) {
        MvStore::abort(self, writer)
    }

    fn snapshot(&self, ts: Timestamp) -> Snapshot<'_> {
        MvStore::snapshot(self, ts)
    }

    fn committed_row_count(&self, table: &str) -> usize {
        MvStore::committed_row_count(self, table)
    }

    fn version_count(&self) -> usize {
        MvStore::version_count(self)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Which storage engine a database instance runs on.
///
/// This is the configuration-level selector the engine, the workloads, the
/// scaling bench, and the conformance exerciser thread through: everything
/// above the [`StorageBackend`] trait is backend-agnostic, and this enum is
/// the single place a concrete constructor is named.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum BackendKind {
    /// The sharded in-memory version-chain store ([`MvStore`]) — the
    /// reference backend and the default.
    #[default]
    MvStore,
    /// The append-only log-structured store ([`LogStore`]): versioned
    /// records in log segments behind a per-table hash index, with
    /// watermark-triggered compaction.
    LogStructured,
}

/// Whether a backend persists committed state across a process kill.
///
/// Only the log-structured backend has a durable representation (a
/// directory of fsync'd write-ahead segment files — see
/// [`LogStore::open_durable`]); [`MvStore`] is an in-memory engine and
/// ignores the knob.  The default stays [`Durability::Ephemeral`] so
/// every existing workload, test, and bench keeps its semantics; the
/// `durable_logstore` bench series records what the fsync tax costs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum Durability {
    /// Everything lives in memory and dies with the process.
    #[default]
    Ephemeral,
    /// Mutations are framed into write-ahead files, fsync'd at every
    /// commit boundary and segment seal, and recoverable with
    /// [`LogStore::recover`].
    Fsync,
}

impl Durability {
    /// Short stable label (`"ephemeral"` / `"fsync"`), used by bench
    /// series metadata.
    pub fn label(self) -> &'static str {
        match self {
            Durability::Ephemeral => "ephemeral",
            Durability::Fsync => "fsync",
        }
    }
}

impl fmt::Display for Durability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How `Durability::Fsync` commits reach disk: one fsync per commit, or
/// batched behind a group-commit leader.
///
/// With group commit on, [`StorageBackend::commit`] only appends the
/// commit record; the following [`StorageBackend::flush_commit`] parks
/// the committer until a leader — the first committer in, after waiting
/// out `window_micros` for followers to enqueue — issues **one** fsync
/// covering the whole batch.  Ephemeral stores and [`MvStore`] ignore
/// the knob.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum GroupCommit {
    /// Every writing commit issues its own fsync before acknowledging.
    #[default]
    Off,
    /// Commit records are batched: a leader fsyncs once for every commit
    /// enqueued so far, after holding the window open for followers.
    On {
        /// How long the leader holds the batch open before flushing, in
        /// microseconds (0 = flush immediately; concurrent committers
        /// that arrive while the leader is busy still batch).
        window_micros: u64,
    },
}

impl GroupCommit {
    /// Short stable label (`"off"` / `"on"`), used by bench series
    /// metadata.
    pub fn label(self) -> &'static str {
        match self {
            GroupCommit::Off => "off",
            GroupCommit::On { .. } => "on",
        }
    }
}

impl fmt::Display for GroupCommit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl BackendKind {
    /// Every selectable backend, in default-first order (the conformance
    /// exerciser and the differential tests iterate this).
    pub const ALL: [BackendKind; 2] = [BackendKind::MvStore, BackendKind::LogStructured];

    /// Short stable label (`"mvstore"` / `"logstore"`), matching
    /// [`StorageBackend::backend_name`] of the constructed engine.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::MvStore => "mvstore",
            BackendKind::LogStructured => "logstore",
        }
    }

    /// Construct the backend.  `shards` is the substrate shard count —
    /// honoured by both [`MvStore`] (version-chain stripes) and
    /// [`LogStore`] (hash-partitioned log shards).
    pub fn build(self, shards: usize) -> Box<dyn StorageBackend> {
        self.build_with_stats(shards, ReadPath::default()).0
    }

    /// Construct the backend with an explicit read path, handing back the
    /// read-path counters when the backend has them.  [`MvStore`] honours
    /// `read_path` and exposes its [`MvReadStats`]; the log-structured
    /// store has no epoch read path, so it returns `None` and ignores the
    /// knob.  The [`StorageBackend`] trait itself is untouched — stats
    /// are a construction-time side channel, not a scheduler-visible
    /// surface.
    pub fn build_with_stats(
        self,
        shards: usize,
        read_path: ReadPath,
    ) -> (Box<dyn StorageBackend>, Option<Arc<MvReadStats>>) {
        self.build_durable_with_stats(shards, read_path, Durability::default(), GroupCommit::Off)
    }

    /// Construct the backend with explicit durability and group-commit
    /// modes on top of [`BackendKind::build_with_stats`]'s contract.
    /// Only the log-structured store persists: [`Durability::Fsync`]
    /// roots it in a process-private temp directory of write-ahead files
    /// that is removed when the store drops
    /// ([`LogStore::open_durable_temp`]), and `group_commit` batches its
    /// commit fsyncs.  [`MvStore`] has no durable representation and
    /// ignores both knobs — the conformance matrix's verdicts never
    /// depend on them.
    pub fn build_durable_with_stats(
        self,
        shards: usize,
        read_path: ReadPath,
        durability: Durability,
        group_commit: GroupCommit,
    ) -> (Box<dyn StorageBackend>, Option<Arc<MvReadStats>>) {
        match self {
            BackendKind::MvStore => {
                let store = MvStore::with_read_path(shards, read_path);
                let stats = store.read_stats();
                (Box::new(store), Some(stats))
            }
            BackendKind::LogStructured => {
                let config = LogStoreConfig {
                    shards,
                    group_commit,
                    ..LogStoreConfig::default()
                };
                let store = match durability {
                    Durability::Ephemeral => LogStore::with_config(config),
                    Durability::Fsync => LogStore::open_durable_temp(config).unwrap_or_else(|e| {
                        panic!("opening a durable log store in the temp directory failed: {e}")
                    }),
                };
                (Box::new(store), None)
            }
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kinds_build_their_engines() {
        for kind in BackendKind::ALL {
            let backend = kind.build(4);
            assert_eq!(backend.backend_name(), kind.label());
            assert_eq!(kind.to_string(), kind.label());
            let id = backend.insert("t", TxnToken(1), Row::new().with("v", 1));
            backend.commit(TxnToken(1), Timestamp(1));
            assert_eq!(
                backend.get_latest_committed("t", id).unwrap().get_int("v"),
                Some(1),
                "{kind}"
            );
        }
        assert_eq!(BackendKind::default(), BackendKind::MvStore);
    }

    #[test]
    fn stats_side_channel_is_mvstore_only() {
        // The chain store hands out its read-path counters; the log store
        // has no epoch read path, so the side channel stays empty and the
        // StorageBackend trait itself stays untouched either way.
        let (backend, stats) = BackendKind::MvStore.build_with_stats(4, ReadPath::Locked);
        let stats = stats.expect("mvstore exposes read stats");
        assert_eq!(stats.read_lock_acquisitions(), 0);
        let id = backend.insert("t", TxnToken(1), Row::new().with("v", 1));
        backend.commit(TxnToken(1), Timestamp(1));
        let _ = backend.get_latest_committed("t", id);
        assert!(stats.read_lock_acquisitions() > 0, "locked path counts");

        let (_, stats) = BackendKind::LogStructured.build_with_stats(4, ReadPath::Epoch);
        assert!(stats.is_none(), "log store has no read-path counters");
    }

    #[test]
    fn trait_object_round_trip_through_every_surface() {
        let store: Box<dyn StorageBackend> = Box::new(MvStore::new());
        let id = store.insert("accounts", TxnToken(1), Row::new().with("balance", 50));
        assert_eq!(store.writes_of(TxnToken(1)).len(), 1);
        store.commit(TxnToken(1), Timestamp(1));
        assert_eq!(store.tables(), vec!["accounts".to_string()]);
        assert_eq!(store.row_ids("accounts"), vec![id]);
        assert_eq!(store.committed_row_count("accounts"), 1);
        assert_eq!(store.version_count(), 1);
        let snap = store.snapshot(Timestamp(1));
        assert_eq!(
            snap.get("accounts", id).unwrap().get_int("balance"),
            Some(50)
        );
        store
            .update("accounts", TxnToken(2), id, Row::new().with("balance", 10))
            .unwrap();
        assert!(!store.has_foreign_uncommitted_on_writes(TxnToken(2)));
        store
            .update("accounts", TxnToken(3), id, Row::new().with("balance", 20))
            .unwrap();
        assert!(store.has_foreign_uncommitted_on_writes(TxnToken(2)));
        store.abort(TxnToken(3));
        store.abort(TxnToken(2));
        assert!(store.writes_of(TxnToken(2)).is_empty());
        assert!(store
            .first_committer_conflict(TxnToken(3), Timestamp(0))
            .is_none());
    }
}
