//! The multi-version store: tables of row version chains with an
//! epoch-pinned, lock-free read path.
//!
//! The store used to be a single `RwLock` around every table, then a set
//! of hash-partitioned shards each behind its own `RwLock`.  Sharding
//! removed the global chokepoint, but readers of a shard still serialised
//! against writers of the *same* shard — even though version chains are
//! append-mostly and visibility is decided purely by timestamps.  This
//! layout removes the read-side locks entirely:
//!
//! * a **table registry** is a grow-only lock-free list mapping each
//!   interned table name (`Arc<str>`) to its metadata; lookups walk it
//!   without locks, inserts serialise on one small mutex.  Row ids are
//!   allocated from a per-table atomic counter;
//! * each table owns a **chain directory** (`ChainDir`) — a jagged array
//!   of chunks installed by CAS and never moved, so a row id addresses a
//!   stable `RowSlot` holding the row's atomic version chain
//!   ([`ChainHead`]).  Readers resolve table → slot → chain with atomic
//!   loads only;
//! * **writers** still serialise per row through striped write locks
//!   (hash of `(table, row id)`), but publish every mutation with release
//!   stores: a new version is fully built before the head pointer moves,
//!   a commit stamp flips atomically, an abort splices nodes out and hands
//!   them to the epoch domain ([`Ebr`]) instead of freeing them;
//! * **readers** pin an epoch ([`Ebr::pin`]) for the duration of one
//!   operation and traverse chains through the pin — no stripe lock, no
//!   reference counting, wait-free in the common case.  Retired nodes are
//!   reclaimed only after every pinned epoch has advanced past them;
//! * the ordered secondary index per table is a sorted lock-free linked
//!   list (`OrderedIndex`) read under the same pins and mutated only
//!   under a per-table mutex, ordered *inside* the stripe lock;
//! * the per-transaction **write sets** live in their own partitions keyed
//!   by `TxnToken`, unchanged from the sharded layout.
//!
//! Two always-compiled counters ([`MvReadStats`]) make the core claims
//! assertable: `read_lock_acquisitions` stays zero on the epoch path
//! ("reads take no lock"), and the EBR domain's `reclaimed_while_pinned`
//! stays zero ("no use-after-free").  [`ReadPath::Locked`] keeps the old
//! discipline — stripe read-locks on every read — as the measurable A/B
//! baseline for the `read_heavy` bench series.
//!
//! Bookkeeping surfaces (`version_count`, `committed_row_count`,
//! `row_ids`, `tables`) are lock-free in **both** modes: they are
//! final-state metrics, not visibility reads, so the locked baseline does
//! not need to tax them.

use crate::backend::{sort_scan_output, ScanView};
use crate::ebr::{Ebr, Guard, ReclamationStats};
use crate::predicate::{KeyInterval, RowPredicate};
use crate::row::{Row, RowId};
use crate::timestamp::{Timestamp, TxnToken};
use crate::version::ChainHead;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A table name.
pub type TableName = String;

/// Default number of write stripes (and write-set partitions).
pub const DEFAULT_SHARDS: usize = 16;

/// Which discipline point reads, scans and range scans use.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum ReadPath {
    /// Lock-free reads: pin an epoch, traverse atomic chains, never touch
    /// the write stripes.  The default.
    #[default]
    Epoch,
    /// The pre-epoch baseline: every row read additionally takes its
    /// stripe's read lock (and counts the acquisition), so the bench
    /// series can measure exactly what the locks cost.  Reclamation is
    /// still epoch-based — the lock is pure overhead, which is the point.
    Locked,
}

impl fmt::Display for ReadPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReadPath::Epoch => "epoch",
            ReadPath::Locked => "locked",
        })
    }
}

/// Always-compiled read-path counters, one set per store instance (never
/// global statics, so parallel tests cannot observe each other).  The
/// `epoch_stress` CI leg asserts them in release mode.
#[derive(Debug, Default)]
pub struct MvReadStats {
    read_lock_acquisitions: AtomicU64,
    read_pins: AtomicU64,
}

impl MvReadStats {
    /// Stripe read-locks taken by the read path so far.  Structurally zero
    /// under [`ReadPath::Epoch`] — the "reads take no lock" invariant.
    pub fn read_lock_acquisitions(&self) -> u64 {
        self.read_lock_acquisitions.load(Ordering::Relaxed)
    }

    /// Epoch pins taken by read operations so far (both read paths pin —
    /// reclamation is always epoch-based).
    pub fn read_pins(&self) -> u64 {
        self.read_pins.load(Ordering::Relaxed)
    }
}

/// The kind of write a transaction performed on a row — used by the engine
/// to decide whether the write inserts into or mutates within a predicate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum WriteKind {
    /// A new row was created.
    Insert,
    /// An existing row's contents were replaced.
    Update,
    /// The row was deleted (tombstone installed).
    Delete,
}

/// Errors returned by the store.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StorageError {
    /// The referenced table does not exist.
    NoSuchTable(TableName),
    /// The referenced row does not exist in the table.
    NoSuchRow(TableName, RowId),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            StorageError::NoSuchRow(t, id) => write!(f, "no such row: {t}{id}"),
        }
    }
}

impl std::error::Error for StorageError {}

// ---------------------------------------------------------------------------
// Chain directory: row id → stable slot, through atomic loads only.
// ---------------------------------------------------------------------------

/// Slots per chunk 0; chunk `k` holds `64 << k` slots.
const BASE_CHUNK: u64 = 64;

/// Number of chunk pointers: `64 * (2^26 - 1)` ≈ 4.3 billion rows.
const SPINE: usize = 26;

/// One row's storage: its atomic version chain plus a "born" bit.
///
/// `born` records that the row id was handed out by [`MvStore::insert`];
/// it is set under the stripe lock and never cleared, so a row whose only
/// insert aborted still *exists* (its id appears in `row_ids`, updates
/// against it succeed) even though its chain is empty — exactly the
/// semantics the old map-of-chains layout had, which the log-structured
/// backend equivalence suite pins down.  Reads ignore the bit: an empty
/// chain answers `None` by itself.
#[derive(Default)]
struct RowSlot {
    born: AtomicBool,
    chain: ChainHead,
}

/// A jagged, grow-only directory of `RowSlot`s indexed by row id.
///
/// Chunk `k` (of `64 << k` slots, covering ids `64·(2^k − 1) ..`) is
/// allocated on first touch and installed with a CAS; chunks are never
/// moved or freed until the directory drops, so a `&RowSlot` obtained from
/// any load stays valid for the store's lifetime — that stability is what
/// lets readers hold slot references without pins or locks.
struct ChainDir {
    chunks: [AtomicPtr<RowSlot>; SPINE],
}

impl ChainDir {
    fn new() -> Self {
        ChainDir {
            chunks: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
        }
    }

    fn chunk_len(k: usize) -> usize {
        (BASE_CHUNK as usize) << k
    }

    /// Map a row id to its (chunk, offset) address.
    fn locate(id: u64) -> (usize, usize) {
        let bucket = id / BASE_CHUNK + 1;
        let k = (63 - bucket.leading_zeros()) as usize;
        let offset = (id - BASE_CHUNK * ((1u64 << k) - 1)) as usize;
        (k, offset)
    }

    /// The slot for `id`, if its chunk has been allocated.
    fn slot(&self, id: RowId) -> Option<&RowSlot> {
        let (k, offset) = Self::locate(id.0);
        if k >= SPINE {
            return None;
        }
        let chunk = self.chunks[k].load(Ordering::Acquire);
        if chunk.is_null() {
            return None;
        }
        // SAFETY: a non-null chunk pointer was published by `ensure_slot`'s
        // CAS over a fully initialised `Box<[RowSlot]>` of `chunk_len(k)`
        // slots and is never freed before `Drop` (&mut); `locate` keeps
        // `offset < chunk_len(k)` by construction.
        #[allow(unsafe_code)]
        Some(unsafe { &*chunk.add(offset) })
    }

    /// The slot for `id`, allocating its chunk if needed.
    fn ensure_slot(&self, id: RowId) -> &RowSlot {
        let (k, offset) = Self::locate(id.0);
        assert!(
            k < SPINE,
            "row id {} exceeds the chain directory capacity",
            id.0
        );
        let mut chunk = self.chunks[k].load(Ordering::Acquire);
        if chunk.is_null() {
            let fresh: Box<[RowSlot]> = (0..Self::chunk_len(k))
                .map(|_| RowSlot::default())
                .collect();
            let fresh = Box::into_raw(fresh) as *mut RowSlot;
            match self.chunks[k].compare_exchange(
                ptr::null_mut(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => chunk = fresh,
                Err(existing) => {
                    // SAFETY: `fresh` lost the race and was never published;
                    // this thread still uniquely owns the allocation, whose
                    // length is `chunk_len(k)` by construction.
                    #[allow(unsafe_code)]
                    unsafe {
                        drop(Box::from_raw(ptr::slice_from_raw_parts_mut(
                            fresh,
                            Self::chunk_len(k),
                        )));
                    }
                    chunk = existing;
                }
            }
        }
        // SAFETY: same publication/stability argument as `slot`.
        #[allow(unsafe_code)]
        unsafe {
            &*chunk.add(offset)
        }
    }

    /// Visit every allocated slot with id below `upto`, ascending.
    fn for_each_slot(&self, upto: u64, mut f: impl FnMut(u64, &RowSlot)) {
        let mut base = 0u64;
        for k in 0..SPINE {
            if base >= upto {
                break;
            }
            let len = Self::chunk_len(k) as u64;
            let chunk = self.chunks[k].load(Ordering::Acquire);
            if !chunk.is_null() {
                let count = len.min(upto - base);
                for i in 0..count {
                    // SAFETY: published chunk of `chunk_len(k)` slots (see
                    // `slot`); `i < len` bounds the offset.
                    #[allow(unsafe_code)]
                    let slot = unsafe { &*chunk.add(i as usize) };
                    f(base + i, slot);
                }
            }
            base += len;
        }
    }
}

impl Drop for ChainDir {
    fn drop(&mut self) {
        for k in 0..SPINE {
            let chunk = *self.chunks[k].get_mut();
            if !chunk.is_null() {
                // SAFETY: `&mut self` proves no reader holds a slot; each
                // published chunk is a `Box<[RowSlot]>` of `chunk_len(k)`
                // slots, freed exactly once here.
                #[allow(unsafe_code)]
                unsafe {
                    drop(Box::from_raw(ptr::slice_from_raw_parts_mut(
                        chunk,
                        Self::chunk_len(k),
                    )));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Ordered secondary index: a sorted lock-free linked list.
// ---------------------------------------------------------------------------

/// One `(key, row id)` entry with a refcount: two versions of one row may
/// carry the same key, and an abort must not over-remove.
struct IndexNode {
    key: i64,
    id: RowId,
    refs: AtomicUsize,
    next: AtomicPtr<IndexNode>,
}

/// A table's ordered secondary index: a singly-linked list sorted by
/// `(key, row id)`, read lock-free under an epoch pin and mutated only
/// under its `write` mutex (acquired inside the row's stripe lock — the
/// lock order is always stripe → index).
///
/// The index covers every *live* version, committed or not, so it is a
/// superset of any one visibility view; range scans re-filter the picked
/// version precisely, making staleness towards "too many candidates"
/// harmless.  Unlinked nodes go to the EBR domain, never freed in place.
struct OrderedIndex {
    head: AtomicPtr<IndexNode>,
    write: Mutex<()>,
}

impl OrderedIndex {
    fn new() -> Self {
        OrderedIndex {
            head: AtomicPtr::new(ptr::null_mut()),
            write: Mutex::new(()),
        }
    }

    /// Add one reference to `(key, id)`, splicing a new node in sorted
    /// position if absent.  The node is fully built before the release
    /// store publishes it.
    fn add(&self, key: i64, id: RowId) {
        let _write = self.write.lock();
        let mut link: &AtomicPtr<IndexNode> = &self.head;
        loop {
            let cur = link.load(Ordering::Acquire);
            if !cur.is_null() {
                // SAFETY: reachable under the index write mutex; nodes are
                // unlinked and retired only by other holders of this mutex.
                #[allow(unsafe_code)]
                let node = unsafe { &*cur };
                if (node.key, node.id) < (key, id) {
                    link = &node.next;
                    continue;
                }
                if (node.key, node.id) == (key, id) {
                    node.refs.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            let fresh = Box::into_raw(Box::new(IndexNode {
                key,
                id,
                refs: AtomicUsize::new(1),
                next: AtomicPtr::new(cur),
            }));
            link.store(fresh, Ordering::Release);
            return;
        }
    }

    /// Drop one reference to `(key, id)`; the last reference unlinks the
    /// node and retires it to the EBR domain (an in-flight reader may
    /// still be standing on it).
    fn remove(&self, key: i64, id: RowId, ebr: &Ebr) {
        let _write = self.write.lock();
        let mut link: &AtomicPtr<IndexNode> = &self.head;
        loop {
            let cur = link.load(Ordering::Acquire);
            if cur.is_null() {
                return;
            }
            // SAFETY: reachable under the index write mutex (see `add`).
            #[allow(unsafe_code)]
            let node = unsafe { &*cur };
            if (node.key, node.id) == (key, id) {
                if node.refs.fetch_sub(1, Ordering::Relaxed) == 1 {
                    link.store(node.next.load(Ordering::Acquire), Ordering::Release);
                    ebr.retire(cur);
                }
                return;
            }
            if (node.key, node.id) > (key, id) {
                return;
            }
            link = &node.next;
        }
    }

    /// Unlink every entry and retire it (index rebuild).
    fn clear(&self, ebr: &Ebr) {
        let _write = self.write.lock();
        let mut cur = self.head.swap(ptr::null_mut(), Ordering::AcqRel);
        while !cur.is_null() {
            // SAFETY: unlinked in one swap under the write mutex; this
            // thread is the only one that can retire these nodes.  `next`
            // is read *before* retiring — retire may free immediately when
            // nothing is pinned.
            #[allow(unsafe_code)]
            let next = unsafe { (*cur).next.load(Ordering::Acquire) };
            ebr.retire(cur);
            cur = next;
        }
    }

    /// Visit every entry with `lo <= key <= hi`, ascending `(key, id)`,
    /// lock-free under the caller's pin.
    fn for_each_in_range(
        &self,
        lo: i64,
        hi: i64,
        _proof: &Guard<'_>,
        mut f: impl FnMut(i64, RowId),
    ) {
        let mut cur = self.head.load(Ordering::Acquire) as *const IndexNode;
        while !cur.is_null() {
            // SAFETY: non-null index pointers reference nodes published
            // with a release store and freed only through epoch
            // reclamation; the caller's pin (`_proof`) keeps every
            // reachable node alive for the walk.
            #[allow(unsafe_code)]
            let node = unsafe { &*cur };
            if node.key > hi {
                return;
            }
            if node.key >= lo {
                f(node.key, node.id);
            }
            cur = node.next.load(Ordering::Acquire);
        }
    }
}

impl Drop for OrderedIndex {
    fn drop(&mut self) {
        // `&mut self` proves no reader: retired nodes were unlinked first
        // and belong to the EBR domain, so everything reachable here is
        // owned by the list and freed exactly once.
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive access (see above).
            #[allow(unsafe_code)]
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next.load(Ordering::Acquire);
        }
    }
}

// ---------------------------------------------------------------------------
// Table registry: a grow-only lock-free list of interned tables.
// ---------------------------------------------------------------------------

/// Per-table metadata: the interned name, the atomic row-id allocator, the
/// chain directory and the ordered index.  Row ids are handed out by
/// `fetch_add`, so concurrent inserters into the same table get distinct,
/// gap-free ids without any lock.
struct TableMeta {
    name: Arc<str>,
    next_row_id: AtomicU64,
    /// Column the table's ordered secondary index covers, if one has been
    /// registered: a `Box<Arc<str>>` behind an atomic pointer (`Arc<str>`
    /// is a fat pointer, so it is boxed to fit), read with one acquire
    /// load per scan — no lock, no per-read `Arc` clone.
    indexed_column: AtomicPtr<Arc<str>>,
    chains: ChainDir,
    index: OrderedIndex,
}

impl TableMeta {
    fn new(table: &str) -> Self {
        TableMeta {
            name: Arc::from(table),
            next_row_id: AtomicU64::new(0),
            indexed_column: AtomicPtr::new(ptr::null_mut()),
            chains: ChainDir::new(),
            index: OrderedIndex::new(),
        }
    }

    /// The indexed column, borrowed for the caller's pin — resolved once
    /// per scan call instead of a lock + `Arc` clone per call.
    fn indexed_column_ref<'g>(&self, _proof: &'g Guard<'_>) -> Option<&'g str> {
        let ptr = self.indexed_column.load(Ordering::Acquire);
        if ptr.is_null() {
            None
        } else {
            // SAFETY: a non-null pointer was published by
            // `set_indexed_column` over a fully built `Box<Arc<str>>`;
            // replacement retires the old box through the EBR domain, so
            // the caller's pin keeps this one alive.
            #[allow(unsafe_code)]
            Some(unsafe { &**ptr })
        }
    }

    /// Publish `column` as the indexed column, retiring the previous one.
    fn set_indexed_column(&self, column: &str, ebr: &Ebr) {
        let fresh = Box::into_raw(Box::new(Arc::<str>::from(column)));
        let old = self.indexed_column.swap(fresh, Ordering::AcqRel);
        if !old.is_null() {
            ebr.retire(old);
        }
    }
}

impl Drop for TableMeta {
    fn drop(&mut self) {
        let ptr = *self.indexed_column.get_mut();
        if !ptr.is_null() {
            // SAFETY: exclusive access; the box was published by
            // `set_indexed_column` and never freed (replacements retire
            // the *old* pointer, not this one).
            #[allow(unsafe_code)]
            unsafe {
                drop(Box::from_raw(ptr));
            }
        }
    }
}

/// One registry entry.  `next` is written once, before publication.
struct RegistryNode {
    meta: TableMeta,
    next: *const RegistryNode,
}

/// Interned table names → metadata: a grow-only lock-free singly-linked
/// list.  Lookups walk it with acquire loads; inserts serialise on the
/// `insert` mutex.  Nodes are never unlinked (tables are never dropped),
/// so a `&TableMeta` borrowed from `&self` stays valid for the store's
/// lifetime — readers resolve a table without pinning, locking, or
/// touching an `Arc` refcount.
struct Registry {
    head: AtomicPtr<RegistryNode>,
    insert: Mutex<()>,
}

impl Registry {
    fn new() -> Self {
        Registry {
            head: AtomicPtr::new(ptr::null_mut()),
            insert: Mutex::new(()),
        }
    }

    fn lookup(&self, table: &str) -> Option<&TableMeta> {
        let mut cur = self.head.load(Ordering::Acquire) as *const RegistryNode;
        while !cur.is_null() {
            // SAFETY: non-null registry pointers reference nodes published
            // with a release store and freed only in `Drop` (&mut), so the
            // `&self` borrow keeps them alive.
            #[allow(unsafe_code)]
            let node = unsafe { &*cur };
            if &*node.meta.name == table {
                return Some(&node.meta);
            }
            cur = node.next;
        }
        None
    }

    /// Look up the metadata for a table, creating it on first use.
    fn intern(&self, table: &str) -> &TableMeta {
        if let Some(meta) = self.lookup(table) {
            return meta;
        }
        let _insert = self.insert.lock();
        if let Some(meta) = self.lookup(table) {
            return meta;
        }
        let node = Box::into_raw(Box::new(RegistryNode {
            meta: TableMeta::new(table),
            next: self.head.load(Ordering::Acquire),
        }));
        self.head.store(node, Ordering::Release);
        // SAFETY: just published, freed only in `Drop` (see `lookup`).
        #[allow(unsafe_code)]
        unsafe {
            &(*node).meta
        }
    }

    fn for_each(&self, mut f: impl FnMut(&TableMeta)) {
        let mut cur = self.head.load(Ordering::Acquire) as *const RegistryNode;
        while !cur.is_null() {
            // SAFETY: same liveness argument as `lookup`.
            #[allow(unsafe_code)]
            let node = unsafe { &*cur };
            f(&node.meta);
            cur = node.next;
        }
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: `&mut self` proves no outstanding `&TableMeta`
            // borrows; each published node is freed exactly once.
            #[allow(unsafe_code)]
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next as *mut RegistryNode;
        }
    }
}

// ---------------------------------------------------------------------------
// The store.
// ---------------------------------------------------------------------------

/// One write performed by an in-flight transaction.  The table name is a
/// clone of the interned `Arc<str>` — recording a write allocates no new
/// `String`.
type OwnedWrite = (Arc<str>, RowId, WriteKind);

type WriteSet = BTreeMap<TxnToken, Vec<OwnedWrite>>;

/// Resolve one visibility rule against a chain under the caller's pin —
/// the four point reads and every scan funnel through this single match.
fn read_view<'g>(
    chain: &ChainHead,
    view: ScanView,
    proof: &'g Guard<'_>,
) -> Option<&'g crate::version::VersionNode> {
    match view {
        ScanView::LatestAny => chain.latest_any(proof),
        ScanView::LatestCommitted => chain.latest_committed(proof),
        ScanView::CommittedAsOf(ts) => chain.committed_as_of(ts, proof),
        ScanView::Visible { reader, start_ts } => chain.visible_for(reader, start_ts, proof),
    }
}

/// An in-memory multi-version row store with an epoch-pinned lock-free
/// read path.
///
/// All methods take `&self`; writers serialise per row on striped write
/// locks, readers pin an epoch and take no lock at all (see the module
/// docs).  The store can be shared between threads — the threaded
/// benchmark drivers rely on this — and operations on different rows
/// never contend.
pub struct MvStore {
    registry: Registry,
    /// Write stripes: `(table, row id)` hashes to the stripe whose write
    /// lock serialises mutations of that row.  Readers touch these only
    /// under [`ReadPath::Locked`].
    stripes: Box<[RwLock<()>]>,
    write_sets: Box<[Mutex<WriteSet>]>,
    ebr: Ebr,
    read_path: ReadPath,
    stats: Arc<MvReadStats>,
}

impl Default for MvStore {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

fn chain_hash(table: &str, id: RowId) -> u64 {
    let mut hasher = DefaultHasher::new();
    table.hash(&mut hasher);
    id.0.hash(&mut hasher);
    hasher.finish()
}

impl MvStore {
    /// An empty store with [`DEFAULT_SHARDS`] write stripes and the
    /// default (epoch) read path.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store with an explicit stripe count (clamped to at least
    /// 1) and the default (epoch) read path.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_read_path(shards, ReadPath::default())
    }

    /// An empty store with an explicit stripe count and read path.
    pub fn with_read_path(shards: usize, read_path: ReadPath) -> Self {
        let shards = shards.max(1);
        MvStore {
            registry: Registry::new(),
            stripes: (0..shards).map(|_| RwLock::new(())).collect(),
            write_sets: (0..shards).map(|_| Mutex::new(WriteSet::new())).collect(),
            ebr: Ebr::new(),
            read_path,
            stats: Arc::new(MvReadStats::default()),
        }
    }

    /// Number of write stripes the store is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.stripes.len()
    }

    /// The read discipline this store was built with.
    pub fn read_path(&self) -> ReadPath {
        self.read_path
    }

    /// Shared handle to the read-path counters.
    pub fn read_stats(&self) -> Arc<MvReadStats> {
        Arc::clone(&self.stats)
    }

    /// Snapshot of the epoch domain's reclamation counters.
    pub fn reclamation_stats(&self) -> ReclamationStats {
        self.ebr.stats()
    }

    /// Attempt an epoch advance and reclaim whatever grace periods have
    /// elapsed — lets quiescent callers (tests, shutdown) drain garbage.
    pub fn flush_reclamation(&self) {
        self.ebr.flush();
    }

    fn stripe_for(&self, table: &str, id: RowId) -> &RwLock<()> {
        &self.stripes[(chain_hash(table, id) % self.stripes.len() as u64) as usize]
    }

    fn write_set_for(&self, writer: TxnToken) -> &Mutex<WriteSet> {
        &self.write_sets[(writer.0 % self.write_sets.len() as u64) as usize]
    }

    /// Run one row read under the configured discipline: a no-op wrapper
    /// on the epoch path, a counted stripe read-lock on the baseline.
    fn with_read_discipline<R>(&self, table: &str, id: RowId, f: impl FnOnce() -> R) -> R {
        match self.read_path {
            ReadPath::Epoch => f(),
            ReadPath::Locked => {
                let _read = self.stripe_for(table, id).read();
                self.stats
                    .read_lock_acquisitions
                    .fetch_add(1, Ordering::Relaxed);
                f()
            }
        }
    }

    /// The indexed column of `table`, if an index has been registered.
    pub fn indexed_column(&self, table: &str) -> Option<String> {
        let guard = self.ebr.pin();
        self.registry
            .lookup(table)
            .and_then(|meta| meta.indexed_column_ref(&guard).map(|c| c.to_string()))
    }

    /// Register an ordered secondary index over the integer values of
    /// `column`, creating the table on demand and backfilling the keys of
    /// every live version already stored.  Setup-time API: concurrent
    /// writers racing the backfill may be missed — register indexes
    /// before traffic starts.
    pub fn create_index(&self, table: &str, column: &str) {
        let meta = self.registry.intern(table);
        let guard = self.ebr.pin();
        if meta.indexed_column_ref(&guard) == Some(column) {
            return;
        }
        meta.set_indexed_column(column, &self.ebr);
        meta.index.clear(&self.ebr);
        let upto = meta.next_row_id.load(Ordering::Acquire);
        let mut keys = Vec::new();
        meta.chains.for_each_slot(upto, |id, slot| {
            keys.clear();
            slot.chain.collect_int_keys(column, &guard, &mut keys);
            for &key in &keys {
                meta.index.add(key, RowId(id));
            }
        });
    }

    fn record_write(&self, writer: TxnToken, write: OwnedWrite) {
        self.write_set_for(writer)
            .lock()
            .entry(writer)
            .or_default()
            .push(write);
    }

    /// Create a table if it does not already exist.
    pub fn create_table(&self, table: &str) {
        self.registry.intern(table);
    }

    /// All table names, in ascending order.
    pub fn tables(&self) -> Vec<TableName> {
        let mut names = Vec::new();
        self.registry
            .for_each(|meta| names.push(meta.name.to_string()));
        names.sort_unstable();
        names
    }

    /// All row ids currently allocated in a table (whatever their
    /// visibility), in ascending order.
    pub fn row_ids(&self, table: &str) -> Vec<RowId> {
        let Some(meta) = self.registry.lookup(table) else {
            return Vec::new();
        };
        let mut ids = Vec::new();
        let upto = meta.next_row_id.load(Ordering::Acquire);
        meta.chains.for_each_slot(upto, |id, slot| {
            if slot.born.load(Ordering::Acquire) {
                ids.push(RowId(id));
            }
        });
        ids
    }

    /// Insert a new row as an uncommitted version by `writer`, returning
    /// its id.  The table is created on demand.
    pub fn insert(&self, table: &str, writer: TxnToken, row: Row) -> RowId {
        let meta = self.registry.intern(table);
        let key = {
            let guard = self.ebr.pin();
            meta.indexed_column_ref(&guard)
                .and_then(|col| row.get_int(col))
        };
        // Relaxed is enough: the id only needs to be unique, and the
        // stripe lock below orders the slot's publication.
        let id = RowId(meta.next_row_id.fetch_add(1, Ordering::Relaxed));
        {
            let _stripe = self.stripe_for(table, id).write();
            let slot = meta.chains.ensure_slot(id);
            slot.born.store(true, Ordering::Release);
            // Index before chain publication: the index stays a superset
            // of every chain view, so a concurrent range probe can never
            // miss a key whose version it would pick.
            if let Some(key) = key {
                meta.index.add(key, id);
            }
            slot.chain.install(writer, Some(row));
        }
        self.record_write(writer, (Arc::clone(&meta.name), id, WriteKind::Insert));
        id
    }

    /// Install a new uncommitted version of an existing row.
    pub fn update(
        &self,
        table: &str,
        writer: TxnToken,
        id: RowId,
        row: Row,
    ) -> Result<(), StorageError> {
        self.write_version(table, writer, id, Some(row), WriteKind::Update)
    }

    /// Install an uncommitted tombstone for an existing row.
    pub fn delete(&self, table: &str, writer: TxnToken, id: RowId) -> Result<(), StorageError> {
        self.write_version(table, writer, id, None, WriteKind::Delete)
    }

    fn write_version(
        &self,
        table: &str,
        writer: TxnToken,
        id: RowId,
        row: Option<Row>,
        kind: WriteKind,
    ) -> Result<(), StorageError> {
        let meta = self
            .registry
            .lookup(table)
            .ok_or_else(|| StorageError::NoSuchTable(table.to_string()))?;
        let key = {
            let guard = self.ebr.pin();
            meta.indexed_column_ref(&guard)
                .and_then(|col| row.as_ref().and_then(|r| r.get_int(col)))
        };
        {
            let _stripe = self.stripe_for(table, id).write();
            let slot = meta
                .chains
                .slot(id)
                .filter(|slot| slot.born.load(Ordering::Acquire))
                .ok_or_else(|| StorageError::NoSuchRow(table.to_string(), id))?;
            if let Some(key) = key {
                meta.index.add(key, id);
            }
            slot.chain.install(writer, row);
        }
        self.record_write(writer, (Arc::clone(&meta.name), id, kind));
        Ok(())
    }

    /// One point read: pin, resolve table → slot, apply the visibility
    /// rule under the read discipline.
    fn point_read(&self, table: &str, id: RowId, view: ScanView) -> Option<Row> {
        let guard = self.ebr.pin();
        self.stats.read_pins.fetch_add(1, Ordering::Relaxed);
        let meta = self.registry.lookup(table)?;
        let slot = meta.chains.slot(id)?;
        self.with_read_discipline(table, id, || {
            read_view(&slot.chain, view, &guard).and_then(|v| v.row().cloned())
        })
    }

    /// Read the most recent version regardless of commit state (a dirty
    /// read).  Returns `None` if the row does not exist or its latest
    /// version is a tombstone.
    pub fn get_latest_any(&self, table: &str, id: RowId) -> Option<Row> {
        self.point_read(table, id, ScanView::LatestAny)
    }

    /// Read the most recent committed version.
    pub fn get_latest_committed(&self, table: &str, id: RowId) -> Option<Row> {
        self.point_read(table, id, ScanView::LatestCommitted)
    }

    /// Read the version committed as of `ts`.
    pub fn get_committed_as_of(&self, table: &str, id: RowId, ts: Timestamp) -> Option<Row> {
        self.point_read(table, id, ScanView::CommittedAsOf(ts))
    }

    /// Read with Snapshot Isolation visibility: `reader`'s own uncommitted
    /// write if any, otherwise the version committed as of `start_ts`.
    pub fn get_visible(
        &self,
        table: &str,
        id: RowId,
        reader: TxnToken,
        start_ts: Timestamp,
    ) -> Option<Row> {
        self.point_read(table, id, ScanView::Visible { reader, start_ts })
    }

    /// Walk the table's chain directory once, collect the matching rows,
    /// and merge into the pinned scan order (see [`sort_scan_output`]):
    /// ascending row id, or ascending (index key, row id) once the table
    /// carries an index.  The indexed-column handle is resolved once per
    /// call — one acquire load, shared by the sort — instead of a lock
    /// acquisition per call.
    fn scan(&self, predicate: &RowPredicate, view: ScanView) -> Vec<(RowId, Row)> {
        let guard = self.ebr.pin();
        self.stats.read_pins.fetch_add(1, Ordering::Relaxed);
        let Some(meta) = self.registry.lookup(predicate.table.as_str()) else {
            return Vec::new();
        };
        let indexed = meta.indexed_column_ref(&guard);
        let mut rows: Vec<(RowId, Row)> = Vec::new();
        let upto = meta.next_row_id.load(Ordering::Acquire);
        meta.chains.for_each_slot(upto, |id, slot| {
            let picked = self.with_read_discipline(&predicate.table, RowId(id), || {
                read_view(&slot.chain, view, &guard).and_then(|v| v.row().cloned())
            });
            if let Some(row) = picked {
                if predicate.matches(&predicate.table, &row) {
                    rows.push((RowId(id), row));
                }
            }
        });
        sort_scan_output(indexed, &mut rows);
        rows
    }

    /// Range scan over the integer key space of `column`: the rows whose
    /// picked version holds an `Int` value inside `range`, in ascending
    /// `(key, row id)` order.  When the table's ordered index covers
    /// `column` the candidate set comes from a lock-free index range walk
    /// (the index covers every live version, so it can only
    /// over-approximate — the picked version is always re-filtered
    /// precisely); otherwise the scan falls back to a full pass with
    /// identical results.
    pub fn scan_range(
        &self,
        table: &str,
        column: &str,
        range: &KeyInterval,
        view: ScanView,
    ) -> Vec<(RowId, Row)> {
        if range.is_int_empty() {
            return Vec::new();
        }
        let guard = self.ebr.pin();
        self.stats.read_pins.fetch_add(1, Ordering::Relaxed);
        let Some(meta) = self.registry.lookup(table) else {
            return Vec::new();
        };
        let pick = |id: RowId, slot: &RowSlot| -> Option<(i64, RowId, Row)> {
            let row = self.with_read_discipline(table, id, || {
                read_view(&slot.chain, view, &guard).and_then(|v| v.row().cloned())
            })?;
            let key = row.get_int(column).filter(|&key| range.contains(key))?;
            Some((key, id, row))
        };
        let mut rows: Vec<(i64, RowId, Row)> = Vec::new();
        if meta.indexed_column_ref(&guard) == Some(column) {
            let lo = range.lo().unwrap_or(i64::MIN);
            let hi = range.hi().unwrap_or(i64::MAX);
            let mut visited = HashSet::new();
            meta.index.for_each_in_range(lo, hi, &guard, |_, id| {
                // One row may carry several in-range keys across its
                // versions; visit it once.
                if !visited.insert(id) {
                    return;
                }
                if let Some(hit) = meta.chains.slot(id).and_then(|slot| pick(id, slot)) {
                    rows.push(hit);
                }
            });
        } else {
            let upto = meta.next_row_id.load(Ordering::Acquire);
            meta.chains.for_each_slot(upto, |id, slot| {
                if let Some(hit) = pick(RowId(id), slot) {
                    rows.push(hit);
                }
            });
        }
        rows.sort_unstable_by_key(|(key, id, _)| (*key, *id));
        rows.into_iter().map(|(_, id, row)| (id, row)).collect()
    }

    /// Scan the rows satisfying `predicate` in the latest committed state.
    pub fn scan_latest_committed(&self, predicate: &RowPredicate) -> Vec<(RowId, Row)> {
        self.scan(predicate, ScanView::LatestCommitted)
    }

    /// Scan the rows satisfying `predicate`, dirty reads included.
    pub fn scan_latest_any(&self, predicate: &RowPredicate) -> Vec<(RowId, Row)> {
        self.scan(predicate, ScanView::LatestAny)
    }

    /// Scan with Snapshot Isolation visibility.
    pub fn scan_visible(
        &self,
        predicate: &RowPredicate,
        reader: TxnToken,
        start_ts: Timestamp,
    ) -> Vec<(RowId, Row)> {
        self.scan(predicate, ScanView::Visible { reader, start_ts })
    }

    /// Scan the committed state as of `ts`.
    pub fn scan_committed_as_of(
        &self,
        predicate: &RowPredicate,
        ts: Timestamp,
    ) -> Vec<(RowId, Row)> {
        self.scan(predicate, ScanView::CommittedAsOf(ts))
    }

    /// The rows written so far by an in-flight transaction, in write order.
    pub fn writes_of(&self, writer: TxnToken) -> Vec<(TableName, RowId, WriteKind)> {
        self.write_set_for(writer)
            .lock()
            .get(&writer)
            .map(|writes| {
                writes
                    .iter()
                    .map(|(table, id, kind)| (table.to_string(), *id, *kind))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Snapshot of a transaction's write set with the interned names.
    fn owned_writes_of(&self, writer: TxnToken) -> Vec<OwnedWrite> {
        self.write_set_for(writer)
            .lock()
            .get(&writer)
            .cloned()
            .unwrap_or_default()
    }

    /// The First-Committer-Wins check (Section 4.2): returns the first of
    /// `writer`'s written rows that was also written by a transaction that
    /// committed after `start_ts`, if any.  A non-`None` result means
    /// `writer` must abort rather than commit.
    pub fn first_committer_conflict(
        &self,
        writer: TxnToken,
        start_ts: Timestamp,
    ) -> Option<(TableName, RowId)> {
        let guard = self.ebr.pin();
        for (table, id, _) in self.owned_writes_of(writer) {
            let conflict = self
                .registry
                .lookup(&table)
                .and_then(|meta| meta.chains.slot(id))
                .unwrap_or_else(|| {
                    panic!(
                        "first_committer_conflict({writer}): write set names {table}{id} but its \
                         version chain is gone — chains must outlive every write-set reference"
                    )
                })
                .chain
                .committed_after(start_ts, writer, &guard);
            if conflict {
                return Some((table.to_string(), id));
            }
        }
        None
    }

    /// True if any row written by `writer` currently has an uncommitted
    /// version installed by a *different* transaction (used by
    /// first-writer-wins style schedulers).
    pub fn has_foreign_uncommitted_on_writes(&self, writer: TxnToken) -> bool {
        let guard = self.ebr.pin();
        self.owned_writes_of(writer).iter().any(|(table, id, _)| {
            self.registry
                .lookup(table)
                .and_then(|meta| meta.chains.slot(*id))
                .unwrap_or_else(|| {
                    panic!(
                        "has_foreign_uncommitted_on_writes({writer}): write set names \
                         {table}{id} but its version chain is gone — chains must outlive \
                         every write-set reference"
                    )
                })
                .chain
                .has_foreign_uncommitted(writer, &guard)
        })
    }

    /// Group a write set by stripe index so commit/abort lock each stripe
    /// exactly once, in ascending order.
    fn writes_by_stripe(&self, writes: &[OwnedWrite]) -> BTreeMap<usize, Vec<(Arc<str>, RowId)>> {
        let mut by_stripe: BTreeMap<usize, Vec<(Arc<str>, RowId)>> = BTreeMap::new();
        for (table, id, _) in writes {
            let idx = (chain_hash(table, *id) % self.stripes.len() as u64) as usize;
            by_stripe
                .entry(idx)
                .or_default()
                .push((Arc::clone(table), *id));
        }
        by_stripe
    }

    /// Commit all of `writer`'s versions at timestamp `ts`.
    pub fn commit(&self, writer: TxnToken, ts: Timestamp) {
        let writes = self
            .write_set_for(writer)
            .lock()
            .remove(&writer)
            .unwrap_or_default();
        for (idx, rows) in self.writes_by_stripe(&writes) {
            let _stripe = self.stripes[idx].write();
            for (table, id) in rows {
                self.registry
                    .lookup(&table)
                    .and_then(|meta| meta.chains.slot(id))
                    .unwrap_or_else(|| {
                        panic!(
                            "commit({writer} at {ts}): write set names {table}{id} but stripe \
                             {idx} has no version chain for it — every recorded write must \
                             have installed a version"
                        )
                    })
                    .chain
                    .commit(writer, ts);
            }
        }
    }

    /// Roll back all of `writer`'s uncommitted versions (before images
    /// become current again).  Unlinked versions are retired to the epoch
    /// domain — an in-flight lock-free reader may still be traversing
    /// them — and their index keys are rolled out *after* the unlink, so
    /// the index never under-covers the chain.
    pub fn abort(&self, writer: TxnToken) {
        let writes = self
            .write_set_for(writer)
            .lock()
            .remove(&writer)
            .unwrap_or_default();
        let guard = self.ebr.pin();
        for (idx, rows) in self.writes_by_stripe(&writes) {
            let _stripe = self.stripes[idx].write();
            for (table, id) in rows {
                let meta = self.registry.lookup(&table).unwrap_or_else(|| {
                    panic!(
                        "abort({writer}): write set names {table}{id} but stripe {idx} has \
                         no version chain for it — rollback would silently leak the \
                         uncommitted version"
                    )
                });
                let slot = meta.chains.slot(id).unwrap_or_else(|| {
                    panic!(
                        "abort({writer}): write set names {table}{id} but stripe {idx} has \
                         no version chain for it — rollback would silently leak the \
                         uncommitted version"
                    )
                });
                let removed = slot.chain.abort(writer);
                let indexed = meta.indexed_column_ref(&guard);
                for version in removed {
                    if let Some(col) = indexed {
                        if let Some(key) = version.row().and_then(|r| r.get_int(col)) {
                            meta.index.remove(key, id, &self.ebr);
                        }
                    }
                    version.retire(&self.ebr);
                }
            }
        }
    }

    /// A read-only snapshot view of the committed state as of `ts`.
    pub fn snapshot(&self, ts: Timestamp) -> crate::snapshot::Snapshot<'_> {
        crate::snapshot::Snapshot::new(self, ts)
    }

    /// Number of rows whose latest committed version exists (i.e. not
    /// deleted) in `table`.
    pub fn committed_row_count(&self, table: &str) -> usize {
        let guard = self.ebr.pin();
        let Some(meta) = self.registry.lookup(table) else {
            return 0;
        };
        let mut count = 0;
        let upto = meta.next_row_id.load(Ordering::Acquire);
        meta.chains.for_each_slot(upto, |_, slot| {
            if slot
                .chain
                .latest_committed(&guard)
                .map(|v| !v.is_tombstone())
                .unwrap_or(false)
            {
                count += 1;
            }
        });
        count
    }

    /// Total number of live (linked) versions across all chains (storage
    /// footprint metric used by the benches).  Retired versions are
    /// excluded by construction — they are unreachable from every head.
    pub fn version_count(&self) -> usize {
        let guard = self.ebr.pin();
        let mut total = 0;
        self.registry.for_each(|meta| {
            let upto = meta.next_row_id.load(Ordering::Acquire);
            meta.chains.for_each_slot(upto, |_, slot| {
                total += slot.chain.len(&guard);
            });
        });
        total
    }
}

impl fmt::Debug for MvStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MvStore")
            .field("stripes", &self.stripes.len())
            .field("read_path", &self.read_path)
            .field("tables", &self.tables())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Condition, RowPredicate};

    fn balance_row(v: i64) -> Row {
        Row::new().with("balance", v)
    }

    #[test]
    fn insert_commit_read_cycle() {
        let store = MvStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(50));
        assert!(store.get_latest_committed("accounts", id).is_none());
        assert_eq!(
            store
                .get_latest_any("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(50)
        );
        store.commit(TxnToken(1), Timestamp(1));
        assert_eq!(
            store
                .get_latest_committed("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(50)
        );
    }

    #[test]
    fn update_requires_existing_row() {
        let store = MvStore::new();
        store.create_table("accounts");
        let err = store
            .update("accounts", TxnToken(1), RowId(99), balance_row(1))
            .unwrap_err();
        assert!(matches!(err, StorageError::NoSuchRow(_, _)));
        let err = store
            .update("missing", TxnToken(1), RowId(0), balance_row(1))
            .unwrap_err();
        assert!(matches!(err, StorageError::NoSuchTable(_)));
    }

    #[test]
    fn abort_restores_before_image() {
        let store = MvStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(100));
        store.commit(TxnToken(1), Timestamp(1));
        store
            .update("accounts", TxnToken(2), id, balance_row(999))
            .unwrap();
        assert_eq!(
            store
                .get_latest_any("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(999)
        );
        store.abort(TxnToken(2));
        assert_eq!(
            store
                .get_latest_any("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(100)
        );
        assert!(store.writes_of(TxnToken(2)).is_empty());
    }

    #[test]
    fn snapshot_reads_ignore_later_commits() {
        let store = MvStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(50));
        store.commit(TxnToken(1), Timestamp(1));
        store
            .update("accounts", TxnToken(2), id, balance_row(10))
            .unwrap();
        store.commit(TxnToken(2), Timestamp(5));

        assert_eq!(
            store
                .get_committed_as_of("accounts", id, Timestamp(1))
                .unwrap()
                .get_int("balance"),
            Some(50)
        );
        assert_eq!(
            store
                .get_committed_as_of("accounts", id, Timestamp(5))
                .unwrap()
                .get_int("balance"),
            Some(10)
        );
        assert_eq!(
            store
                .get_visible("accounts", id, TxnToken(9), Timestamp(2))
                .unwrap()
                .get_int("balance"),
            Some(50)
        );
    }

    #[test]
    fn deleted_rows_disappear_from_committed_reads() {
        let store = MvStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(50));
        store.commit(TxnToken(1), Timestamp(1));
        store.delete("accounts", TxnToken(2), id).unwrap();
        store.commit(TxnToken(2), Timestamp(2));
        assert!(store.get_latest_committed("accounts", id).is_none());
        assert_eq!(store.committed_row_count("accounts"), 0);
        // Time travel still sees it.
        assert!(store
            .get_committed_as_of("accounts", id, Timestamp(1))
            .is_some());
    }

    #[test]
    fn predicate_scans_respect_visibility() {
        let store = MvStore::new();
        let active = RowPredicate::new("employees", Condition::eq("active", true));
        let e1 = store.insert("employees", TxnToken(1), Row::new().with("active", true));
        store.insert("employees", TxnToken(1), Row::new().with("active", false));
        store.commit(TxnToken(1), Timestamp(1));

        // T2 inserts a new active employee but has not committed.
        store.insert("employees", TxnToken(2), Row::new().with("active", true));

        let committed = store.scan_latest_committed(&active);
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].0, e1);

        let dirty = store.scan_latest_any(&active);
        assert_eq!(dirty.len(), 2);

        let si_view = store.scan_visible(&active, TxnToken(3), Timestamp(1));
        assert_eq!(si_view.len(), 1);
        let own_view = store.scan_visible(&active, TxnToken(2), Timestamp(1));
        assert_eq!(own_view.len(), 2);

        store.commit(TxnToken(2), Timestamp(2));
        assert_eq!(store.scan_committed_as_of(&active, Timestamp(1)).len(), 1);
        assert_eq!(store.scan_committed_as_of(&active, Timestamp(2)).len(), 2);
    }

    #[test]
    fn first_committer_conflict_detection() {
        let store = MvStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(100));
        store.commit(TxnToken(1), Timestamp(1));

        // T2 and T3 both start at ts 1 and write the same row.
        store
            .update("accounts", TxnToken(2), id, balance_row(120))
            .unwrap();
        store
            .update("accounts", TxnToken(3), id, balance_row(130))
            .unwrap();
        // T2 commits first.
        store.commit(TxnToken(2), Timestamp(2));
        // T3 must now fail the first-committer-wins check.
        let conflict = store.first_committer_conflict(TxnToken(3), Timestamp(1));
        assert_eq!(conflict, Some(("accounts".to_string(), id)));
        // A transaction with no writes has no conflict.
        assert!(store
            .first_committer_conflict(TxnToken(9), Timestamp(0))
            .is_none());
    }

    #[test]
    fn foreign_uncommitted_write_detection() {
        let store = MvStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(100));
        store.commit(TxnToken(1), Timestamp(1));
        store
            .update("accounts", TxnToken(2), id, balance_row(120))
            .unwrap();
        store
            .update("accounts", TxnToken(3), id, balance_row(130))
            .unwrap();
        assert!(store.has_foreign_uncommitted_on_writes(TxnToken(2)));
        assert!(store.has_foreign_uncommitted_on_writes(TxnToken(3)));
        store.abort(TxnToken(2));
        assert!(!store.has_foreign_uncommitted_on_writes(TxnToken(3)));
    }

    #[test]
    fn bookkeeping_counters() {
        let store = MvStore::new();
        assert_eq!(store.version_count(), 0);
        let id = store.insert("t", TxnToken(1), balance_row(1));
        store.commit(TxnToken(1), Timestamp(1));
        store.update("t", TxnToken(2), id, balance_row(2)).unwrap();
        store.commit(TxnToken(2), Timestamp(2));
        assert_eq!(store.version_count(), 2);
        assert_eq!(store.committed_row_count("t"), 1);
        assert_eq!(store.tables(), vec!["t".to_string()]);
        assert_eq!(store.row_ids("t"), vec![id]);
        assert!(store.row_ids("missing").is_empty());
    }

    #[test]
    fn row_ids_are_sequential_and_sorted_across_shards() {
        // With several stripes the writes scatter, but id allocation is a
        // per-table counter and row_ids() must come back sorted and
        // gap-free exactly like the single-map store.
        for shards in [1, 2, 7, 16] {
            let store = MvStore::with_shards(shards);
            assert_eq!(store.shard_count(), shards);
            let ids: Vec<RowId> = (0..40)
                .map(|_| store.insert("t", TxnToken(1), balance_row(0)))
                .collect();
            assert_eq!(ids, (0..40).map(RowId).collect::<Vec<_>>());
            assert_eq!(store.row_ids("t"), ids);
        }
    }

    #[test]
    fn row_id_allocation_is_per_table() {
        let store = MvStore::new();
        let a0 = store.insert("a", TxnToken(1), balance_row(0));
        let b0 = store.insert("b", TxnToken(1), balance_row(0));
        let a1 = store.insert("a", TxnToken(1), balance_row(0));
        assert_eq!((a0, b0, a1), (RowId(0), RowId(0), RowId(1)));
    }

    #[test]
    fn scans_merge_shards_in_row_id_order() {
        let store = MvStore::with_shards(4);
        for i in 0..32 {
            store.insert("t", TxnToken(1), balance_row(i));
        }
        store.commit(TxnToken(1), Timestamp(1));
        let all = RowPredicate::whole_table("t");
        let rows = store.scan_latest_committed(&all);
        assert_eq!(rows.len(), 32);
        for (i, (id, row)) in rows.iter().enumerate() {
            assert_eq!(*id, RowId(i as u64));
            assert_eq!(row.get_int("balance"), Some(i as i64));
        }
    }

    #[test]
    fn ordered_index_backfills_and_tracks_writes() {
        let store = MvStore::with_shards(4);
        // Rows exist before the index: create_index must backfill.
        let a = store.insert("t", TxnToken(1), balance_row(30));
        let b = store.insert("t", TxnToken(1), balance_row(10));
        store.commit(TxnToken(1), Timestamp(1));
        store.create_index("t", "balance");
        assert_eq!(store.indexed_column("t").as_deref(), Some("balance"));
        // Re-registering the same column is a no-op.
        store.create_index("t", "balance");

        let all = store.scan_range(
            "t",
            "balance",
            &KeyInterval::everything(),
            ScanView::LatestCommitted,
        );
        assert_eq!(
            all.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![b, a],
            "ascending (key, row id) order"
        );
        let low = store.scan_range(
            "t",
            "balance",
            &KeyInterval::at_most(15),
            ScanView::LatestCommitted,
        );
        assert_eq!(low.iter().map(|(id, _)| *id).collect::<Vec<_>>(), vec![b]);

        // Maintained through update/abort: an aborted rewrite of `a`'s key
        // must leave the index where it was.
        store.update("t", TxnToken(2), a, balance_row(5)).unwrap();
        let dirty = store.scan_range(
            "t",
            "balance",
            &KeyInterval::at_most(15),
            ScanView::LatestAny,
        );
        assert_eq!(
            dirty.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![a, b]
        );
        store.abort(TxnToken(2));
        let after = store.scan_range(
            "t",
            "balance",
            &KeyInterval::at_most(15),
            ScanView::LatestAny,
        );
        assert_eq!(after.iter().map(|(id, _)| *id).collect::<Vec<_>>(), vec![b]);

        // Plain scans over an indexed table come back in key order too,
        // with unkeyed rows after every keyed one.
        let c = store.insert("t", TxnToken(3), Row::new().with("owner", "x"));
        store.commit(TxnToken(3), Timestamp(2));
        let pred = RowPredicate::whole_table("t");
        let scanned = store.scan_latest_committed(&pred);
        assert_eq!(
            scanned.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![b, a, c]
        );
    }

    #[test]
    fn scan_range_views_and_fallback_agree() {
        let store = MvStore::with_shards(4);
        store.create_index("t", "balance");
        let ids: Vec<RowId> = (0..6)
            .map(|i| store.insert("t", TxnToken(1), balance_row(i * 10)))
            .collect();
        store.commit(TxnToken(1), Timestamp(1));
        store
            .update("t", TxnToken(2), ids[0], balance_row(25))
            .unwrap();

        let mid = store.scan_range(
            "t",
            "balance",
            &KeyInterval::range(Some(10), Some(30)),
            ScanView::LatestCommitted,
        );
        assert_eq!(
            mid.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![ids[1], ids[2], ids[3]]
        );
        // The dirty view sees ids[0]'s uncommitted key move into range.
        let dirty = store.scan_range(
            "t",
            "balance",
            &KeyInterval::range(Some(10), Some(30)),
            ScanView::LatestAny,
        );
        assert_eq!(
            dirty.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![ids[1], ids[2], ids[0], ids[3]]
        );
        // SI visibility: the writer sees its own move, others do not.
        let writer_view = store.scan_range(
            "t",
            "balance",
            &KeyInterval::range(Some(10), Some(30)),
            ScanView::Visible {
                reader: TxnToken(2),
                start_ts: Timestamp(1),
            },
        );
        assert_eq!(writer_view.len(), 4);
        let other_view = store.scan_range(
            "t",
            "balance",
            &KeyInterval::range(Some(10), Some(30)),
            ScanView::Visible {
                reader: TxnToken(9),
                start_ts: Timestamp(1),
            },
        );
        assert_eq!(other_view.len(), 3);
        store.abort(TxnToken(2));

        // An unindexed column takes the full-pass fallback with the same
        // contract; an empty interval is empty either way.
        assert!(store
            .scan_range("t", "balance", &KeyInterval::empty(), ScanView::LatestAny)
            .is_empty());
        let fallback = store.scan_range(
            "t",
            "missing",
            &KeyInterval::everything(),
            ScanView::LatestAny,
        );
        assert!(fallback.is_empty());
    }

    #[test]
    fn single_shard_store_still_works() {
        let store = MvStore::with_shards(0); // clamped to 1
        assert_eq!(store.shard_count(), 1);
        let id = store.insert("t", TxnToken(1), balance_row(5));
        store.commit(TxnToken(1), Timestamp(1));
        assert_eq!(
            store
                .get_latest_committed("t", id)
                .unwrap()
                .get_int("balance"),
            Some(5)
        );
    }

    #[test]
    fn epoch_reads_take_no_stripe_locks() {
        let epoch = MvStore::new();
        let locked = MvStore::with_read_path(DEFAULT_SHARDS, ReadPath::Locked);
        assert_eq!(epoch.read_path(), ReadPath::Epoch);
        assert_eq!(locked.read_path(), ReadPath::Locked);
        for store in [&epoch, &locked] {
            store.create_index("t", "balance");
            let id = store.insert("t", TxnToken(1), balance_row(7));
            store.commit(TxnToken(1), Timestamp(1));
            assert_eq!(
                store
                    .get_latest_committed("t", id)
                    .unwrap()
                    .get_int("balance"),
                Some(7)
            );
            let pred = RowPredicate::whole_table("t");
            assert_eq!(store.scan_latest_committed(&pred).len(), 1);
            assert_eq!(
                store
                    .scan_range(
                        "t",
                        "balance",
                        &KeyInterval::everything(),
                        ScanView::LatestCommitted,
                    )
                    .len(),
                1
            );
        }
        let stats = epoch.read_stats();
        assert!(stats.read_pins() > 0, "epoch reads pin");
        assert_eq!(
            stats.read_lock_acquisitions(),
            0,
            "the epoch read path must never take a stripe lock"
        );
        let stats = locked.read_stats();
        assert!(
            stats.read_lock_acquisitions() > 0,
            "the locked baseline counts every stripe read-lock"
        );
    }

    #[test]
    fn aborted_versions_are_retired_not_leaked() {
        let store = MvStore::new();
        let id = store.insert("t", TxnToken(1), balance_row(1));
        store.commit(TxnToken(1), Timestamp(1));
        for i in 0..10 {
            store.update("t", TxnToken(2), id, balance_row(i)).unwrap();
        }
        store.abort(TxnToken(2));
        for _ in 0..4 {
            store.flush_reclamation();
        }
        let stats = store.reclamation_stats();
        assert_eq!(stats.retired, 10, "every unlinked version was retired");
        assert_eq!(stats.reclaimed, 10, "and reclaimed once quiescent");
        assert_eq!(stats.reclaimed_while_pinned, 0);
        assert_eq!(store.version_count(), 1);
    }
}
