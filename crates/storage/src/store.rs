//! The multi-version store: tables of row version chains.

use crate::predicate::RowPredicate;
use crate::row::{Row, RowId};
use crate::timestamp::{Timestamp, TxnToken};
use crate::version::VersionChain;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A table name.
pub type TableName = String;

/// The kind of write a transaction performed on a row — used by the engine
/// to decide whether the write inserts into or mutates within a predicate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum WriteKind {
    /// A new row was created.
    Insert,
    /// An existing row's contents were replaced.
    Update,
    /// The row was deleted (tombstone installed).
    Delete,
}

/// Errors returned by the store.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StorageError {
    /// The referenced table does not exist.
    NoSuchTable(TableName),
    /// The referenced row does not exist in the table.
    NoSuchRow(TableName, RowId),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            StorageError::NoSuchRow(t, id) => write!(f, "no such row: {t}{id}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[derive(Default)]
struct TableData {
    next_row_id: u64,
    rows: BTreeMap<RowId, VersionChain>,
}

#[derive(Default)]
struct Inner {
    tables: BTreeMap<TableName, TableData>,
    /// Rows written by each in-flight transaction, in write order.
    writes: BTreeMap<TxnToken, Vec<(TableName, RowId, WriteKind)>>,
}

/// An in-memory multi-version row store.
///
/// All methods take `&self`; the store is internally synchronised with a
/// read-write lock, so it can be shared between threads (the threaded
/// benchmark drivers rely on this).
#[derive(Default)]
pub struct MvStore {
    inner: RwLock<Inner>,
}

impl MvStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table if it does not already exist.
    pub fn create_table(&self, table: &str) {
        let mut inner = self.inner.write();
        inner.tables.entry(table.to_string()).or_default();
    }

    /// All table names.
    pub fn tables(&self) -> Vec<TableName> {
        self.inner.read().tables.keys().cloned().collect()
    }

    /// All row ids currently allocated in a table (whatever their
    /// visibility).
    pub fn row_ids(&self, table: &str) -> Vec<RowId> {
        self.inner
            .read()
            .tables
            .get(table)
            .map(|t| t.rows.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Insert a new row as an uncommitted version by `writer`, returning
    /// its id.  The table is created on demand.
    pub fn insert(&self, table: &str, writer: TxnToken, row: Row) -> RowId {
        let mut inner = self.inner.write();
        let data = inner.tables.entry(table.to_string()).or_default();
        let id = RowId(data.next_row_id);
        data.next_row_id += 1;
        data.rows.entry(id).or_default().install(writer, Some(row));
        inner
            .writes
            .entry(writer)
            .or_default()
            .push((table.to_string(), id, WriteKind::Insert));
        id
    }

    /// Install a new uncommitted version of an existing row.
    pub fn update(
        &self,
        table: &str,
        writer: TxnToken,
        id: RowId,
        row: Row,
    ) -> Result<(), StorageError> {
        self.write_version(table, writer, id, Some(row), WriteKind::Update)
    }

    /// Install an uncommitted tombstone for an existing row.
    pub fn delete(&self, table: &str, writer: TxnToken, id: RowId) -> Result<(), StorageError> {
        self.write_version(table, writer, id, None, WriteKind::Delete)
    }

    fn write_version(
        &self,
        table: &str,
        writer: TxnToken,
        id: RowId,
        row: Option<Row>,
        kind: WriteKind,
    ) -> Result<(), StorageError> {
        let mut inner = self.inner.write();
        let data = inner
            .tables
            .get_mut(table)
            .ok_or_else(|| StorageError::NoSuchTable(table.to_string()))?;
        let chain = data
            .rows
            .get_mut(&id)
            .ok_or_else(|| StorageError::NoSuchRow(table.to_string(), id))?;
        chain.install(writer, row);
        inner
            .writes
            .entry(writer)
            .or_default()
            .push((table.to_string(), id, kind));
        Ok(())
    }

    fn read_row<F>(&self, table: &str, id: RowId, pick: F) -> Option<Row>
    where
        F: Fn(&VersionChain) -> Option<Row>,
    {
        let inner = self.inner.read();
        inner
            .tables
            .get(table)
            .and_then(|t| t.rows.get(&id))
            .and_then(|chain| pick(chain))
    }

    /// Read the most recent version regardless of commit state (a dirty
    /// read).  Returns `None` if the row does not exist or its latest
    /// version is a tombstone.
    pub fn get_latest_any(&self, table: &str, id: RowId) -> Option<Row> {
        self.read_row(table, id, |c| c.latest_any().and_then(|v| v.row.clone()))
    }

    /// Read the most recent committed version.
    pub fn get_latest_committed(&self, table: &str, id: RowId) -> Option<Row> {
        self.read_row(table, id, |c| {
            c.latest_committed().and_then(|v| v.row.clone())
        })
    }

    /// Read the version committed as of `ts`.
    pub fn get_committed_as_of(&self, table: &str, id: RowId, ts: Timestamp) -> Option<Row> {
        self.read_row(table, id, |c| {
            c.committed_as_of(ts).and_then(|v| v.row.clone())
        })
    }

    /// Read with Snapshot Isolation visibility: `reader`'s own uncommitted
    /// write if any, otherwise the version committed as of `start_ts`.
    pub fn get_visible(
        &self,
        table: &str,
        id: RowId,
        reader: TxnToken,
        start_ts: Timestamp,
    ) -> Option<Row> {
        self.read_row(table, id, |c| {
            c.visible_for(reader, start_ts).and_then(|v| v.row.clone())
        })
    }

    fn scan<F>(&self, predicate: &RowPredicate, pick: F) -> Vec<(RowId, Row)>
    where
        F: Fn(&VersionChain) -> Option<Row>,
    {
        let inner = self.inner.read();
        let Some(data) = inner.tables.get(&predicate.table) else {
            return Vec::new();
        };
        data.rows
            .iter()
            .filter_map(|(id, chain)| {
                pick(chain)
                    .filter(|row| predicate.matches(&predicate.table, row))
                    .map(|row| (*id, row))
            })
            .collect()
    }

    /// Scan the rows satisfying `predicate` in the latest committed state.
    pub fn scan_latest_committed(&self, predicate: &RowPredicate) -> Vec<(RowId, Row)> {
        self.scan(predicate, |c| {
            c.latest_committed().and_then(|v| v.row.clone())
        })
    }

    /// Scan the rows satisfying `predicate`, dirty reads included.
    pub fn scan_latest_any(&self, predicate: &RowPredicate) -> Vec<(RowId, Row)> {
        self.scan(predicate, |c| c.latest_any().and_then(|v| v.row.clone()))
    }

    /// Scan with Snapshot Isolation visibility.
    pub fn scan_visible(
        &self,
        predicate: &RowPredicate,
        reader: TxnToken,
        start_ts: Timestamp,
    ) -> Vec<(RowId, Row)> {
        self.scan(predicate, |c| {
            c.visible_for(reader, start_ts).and_then(|v| v.row.clone())
        })
    }

    /// Scan the committed state as of `ts`.
    pub fn scan_committed_as_of(
        &self,
        predicate: &RowPredicate,
        ts: Timestamp,
    ) -> Vec<(RowId, Row)> {
        self.scan(predicate, |c| {
            c.committed_as_of(ts).and_then(|v| v.row.clone())
        })
    }

    /// The rows written so far by an in-flight transaction, in write order.
    pub fn writes_of(&self, writer: TxnToken) -> Vec<(TableName, RowId, WriteKind)> {
        self.inner
            .read()
            .writes
            .get(&writer)
            .cloned()
            .unwrap_or_default()
    }

    /// The First-Committer-Wins check (Section 4.2): returns the first of
    /// `writer`'s written rows that was also written by a transaction that
    /// committed after `start_ts`, if any.  A non-`None` result means
    /// `writer` must abort rather than commit.
    pub fn first_committer_conflict(
        &self,
        writer: TxnToken,
        start_ts: Timestamp,
    ) -> Option<(TableName, RowId)> {
        let inner = self.inner.read();
        let writes = inner.writes.get(&writer)?;
        for (table, id, _) in writes {
            if let Some(chain) = inner.tables.get(table).and_then(|t| t.rows.get(id)) {
                if chain.committed_after(start_ts, writer) {
                    return Some((table.clone(), *id));
                }
            }
        }
        None
    }

    /// True if any row written by `writer` currently has an uncommitted
    /// version installed by a *different* transaction (used by
    /// first-writer-wins style schedulers).
    pub fn has_foreign_uncommitted_on_writes(&self, writer: TxnToken) -> bool {
        let inner = self.inner.read();
        let Some(writes) = inner.writes.get(&writer) else {
            return false;
        };
        writes.iter().any(|(table, id, _)| {
            inner
                .tables
                .get(table)
                .and_then(|t| t.rows.get(id))
                .is_some_and(|chain| chain.has_foreign_uncommitted(writer))
        })
    }

    /// Commit all of `writer`'s versions at timestamp `ts`.
    pub fn commit(&self, writer: TxnToken, ts: Timestamp) {
        let mut inner = self.inner.write();
        let writes = inner.writes.remove(&writer).unwrap_or_default();
        for (table, id, _) in writes {
            if let Some(chain) = inner
                .tables
                .get_mut(&table)
                .and_then(|t| t.rows.get_mut(&id))
            {
                chain.commit(writer, ts);
            }
        }
    }

    /// Roll back all of `writer`'s uncommitted versions (before images
    /// become current again).
    pub fn abort(&self, writer: TxnToken) {
        let mut inner = self.inner.write();
        let writes = inner.writes.remove(&writer).unwrap_or_default();
        for (table, id, _) in writes {
            if let Some(chain) = inner
                .tables
                .get_mut(&table)
                .and_then(|t| t.rows.get_mut(&id))
            {
                chain.abort(writer);
            }
        }
    }

    /// A read-only snapshot view of the committed state as of `ts`.
    pub fn snapshot(&self, ts: Timestamp) -> crate::snapshot::Snapshot<'_> {
        crate::snapshot::Snapshot::new(self, ts)
    }

    /// Number of rows whose latest committed version exists (i.e. not
    /// deleted) in `table`.
    pub fn committed_row_count(&self, table: &str) -> usize {
        let inner = self.inner.read();
        inner
            .tables
            .get(table)
            .map(|t| {
                t.rows
                    .values()
                    .filter(|c| {
                        c.latest_committed()
                            .map(|v| !v.is_tombstone())
                            .unwrap_or(false)
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    /// Total number of versions across all chains (storage footprint
    /// metric used by the benches).
    pub fn version_count(&self) -> usize {
        let inner = self.inner.read();
        inner
            .tables
            .values()
            .flat_map(|t| t.rows.values())
            .map(|c| c.len())
            .sum()
    }
}

impl fmt::Debug for MvStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("MvStore")
            .field("tables", &inner.tables.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Condition, RowPredicate};

    fn balance_row(v: i64) -> Row {
        Row::new().with("balance", v)
    }

    #[test]
    fn insert_commit_read_cycle() {
        let store = MvStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(50));
        assert!(store.get_latest_committed("accounts", id).is_none());
        assert_eq!(
            store
                .get_latest_any("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(50)
        );
        store.commit(TxnToken(1), Timestamp(1));
        assert_eq!(
            store
                .get_latest_committed("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(50)
        );
    }

    #[test]
    fn update_requires_existing_row() {
        let store = MvStore::new();
        store.create_table("accounts");
        let err = store
            .update("accounts", TxnToken(1), RowId(99), balance_row(1))
            .unwrap_err();
        assert!(matches!(err, StorageError::NoSuchRow(_, _)));
        let err = store
            .update("missing", TxnToken(1), RowId(0), balance_row(1))
            .unwrap_err();
        assert!(matches!(err, StorageError::NoSuchTable(_)));
    }

    #[test]
    fn abort_restores_before_image() {
        let store = MvStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(100));
        store.commit(TxnToken(1), Timestamp(1));
        store
            .update("accounts", TxnToken(2), id, balance_row(999))
            .unwrap();
        assert_eq!(
            store
                .get_latest_any("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(999)
        );
        store.abort(TxnToken(2));
        assert_eq!(
            store
                .get_latest_any("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(100)
        );
        assert!(store.writes_of(TxnToken(2)).is_empty());
    }

    #[test]
    fn snapshot_reads_ignore_later_commits() {
        let store = MvStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(50));
        store.commit(TxnToken(1), Timestamp(1));
        store
            .update("accounts", TxnToken(2), id, balance_row(10))
            .unwrap();
        store.commit(TxnToken(2), Timestamp(5));

        assert_eq!(
            store
                .get_committed_as_of("accounts", id, Timestamp(1))
                .unwrap()
                .get_int("balance"),
            Some(50)
        );
        assert_eq!(
            store
                .get_committed_as_of("accounts", id, Timestamp(5))
                .unwrap()
                .get_int("balance"),
            Some(10)
        );
        assert_eq!(
            store
                .get_visible("accounts", id, TxnToken(9), Timestamp(2))
                .unwrap()
                .get_int("balance"),
            Some(50)
        );
    }

    #[test]
    fn deleted_rows_disappear_from_committed_reads() {
        let store = MvStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(50));
        store.commit(TxnToken(1), Timestamp(1));
        store.delete("accounts", TxnToken(2), id).unwrap();
        store.commit(TxnToken(2), Timestamp(2));
        assert!(store.get_latest_committed("accounts", id).is_none());
        assert_eq!(store.committed_row_count("accounts"), 0);
        // Time travel still sees it.
        assert!(store
            .get_committed_as_of("accounts", id, Timestamp(1))
            .is_some());
    }

    #[test]
    fn predicate_scans_respect_visibility() {
        let store = MvStore::new();
        let active = RowPredicate::new("employees", Condition::eq("active", true));
        let e1 = store.insert("employees", TxnToken(1), Row::new().with("active", true));
        store.insert("employees", TxnToken(1), Row::new().with("active", false));
        store.commit(TxnToken(1), Timestamp(1));

        // T2 inserts a new active employee but has not committed.
        store.insert("employees", TxnToken(2), Row::new().with("active", true));

        let committed = store.scan_latest_committed(&active);
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].0, e1);

        let dirty = store.scan_latest_any(&active);
        assert_eq!(dirty.len(), 2);

        let si_view = store.scan_visible(&active, TxnToken(3), Timestamp(1));
        assert_eq!(si_view.len(), 1);
        let own_view = store.scan_visible(&active, TxnToken(2), Timestamp(1));
        assert_eq!(own_view.len(), 2);

        store.commit(TxnToken(2), Timestamp(2));
        assert_eq!(store.scan_committed_as_of(&active, Timestamp(1)).len(), 1);
        assert_eq!(store.scan_committed_as_of(&active, Timestamp(2)).len(), 2);
    }

    #[test]
    fn first_committer_conflict_detection() {
        let store = MvStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(100));
        store.commit(TxnToken(1), Timestamp(1));

        // T2 and T3 both start at ts 1 and write the same row.
        store
            .update("accounts", TxnToken(2), id, balance_row(120))
            .unwrap();
        store
            .update("accounts", TxnToken(3), id, balance_row(130))
            .unwrap();
        // T2 commits first.
        store.commit(TxnToken(2), Timestamp(2));
        // T3 must now fail the first-committer-wins check.
        let conflict = store.first_committer_conflict(TxnToken(3), Timestamp(1));
        assert_eq!(conflict, Some(("accounts".to_string(), id)));
        // A transaction with no writes has no conflict.
        assert!(store
            .first_committer_conflict(TxnToken(9), Timestamp(0))
            .is_none());
    }

    #[test]
    fn foreign_uncommitted_write_detection() {
        let store = MvStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(100));
        store.commit(TxnToken(1), Timestamp(1));
        store
            .update("accounts", TxnToken(2), id, balance_row(120))
            .unwrap();
        store
            .update("accounts", TxnToken(3), id, balance_row(130))
            .unwrap();
        assert!(store.has_foreign_uncommitted_on_writes(TxnToken(2)));
        assert!(store.has_foreign_uncommitted_on_writes(TxnToken(3)));
        store.abort(TxnToken(2));
        assert!(!store.has_foreign_uncommitted_on_writes(TxnToken(3)));
    }

    #[test]
    fn bookkeeping_counters() {
        let store = MvStore::new();
        assert_eq!(store.version_count(), 0);
        let id = store.insert("t", TxnToken(1), balance_row(1));
        store.commit(TxnToken(1), Timestamp(1));
        store.update("t", TxnToken(2), id, balance_row(2)).unwrap();
        store.commit(TxnToken(2), Timestamp(2));
        assert_eq!(store.version_count(), 2);
        assert_eq!(store.committed_row_count("t"), 1);
        assert_eq!(store.tables(), vec!["t".to_string()]);
        assert_eq!(store.row_ids("t"), vec![id]);
        assert!(store.row_ids("missing").is_empty());
    }
}
