//! The multi-version store: tables of row version chains, hash-partitioned
//! into shards.
//!
//! The store used to be a single `RwLock` around every table, which meant
//! the threaded benchmark drivers measured that mutex instead of the
//! concurrency-control disciplines above it.  The sharded layout removes
//! the chokepoint while keeping the visibility semantics identical:
//!
//! * a **table registry** maps each interned table name (`Arc<str>`) to its
//!   metadata; row ids are allocated from a per-table atomic counter, so
//!   inserts into different tables — or even the same table — never contend
//!   on a global lock;
//! * row version chains live in `N` **shards**, each behind its own
//!   `RwLock`, selected by hashing `(table, row id)`; point reads and
//!   writes touch exactly one shard, scans visit each shard once and merge
//!   in row-id order (so scan output is byte-identical to the old
//!   single-map store);
//! * the per-transaction **write sets** (the rows a transaction has written,
//!   in order — the input to commit, abort, and First-Committer-Wins) live
//!   in their own partitions keyed by `TxnToken`, so bookkeeping for one
//!   transaction never blocks another's reads.

use crate::backend::{sort_scan_output, ScanView};
use crate::predicate::{KeyInterval, RowPredicate};
use crate::row::{Row, RowId};
use crate::timestamp::{Timestamp, TxnToken};
use crate::version::VersionChain;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A table name.
pub type TableName = String;

/// Default number of store shards (and write-set partitions).
pub const DEFAULT_SHARDS: usize = 16;

/// The kind of write a transaction performed on a row — used by the engine
/// to decide whether the write inserts into or mutates within a predicate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum WriteKind {
    /// A new row was created.
    Insert,
    /// An existing row's contents were replaced.
    Update,
    /// The row was deleted (tombstone installed).
    Delete,
}

/// Errors returned by the store.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StorageError {
    /// The referenced table does not exist.
    NoSuchTable(TableName),
    /// The referenced row does not exist in the table.
    NoSuchRow(TableName, RowId),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            StorageError::NoSuchRow(t, id) => write!(f, "no such row: {t}{id}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Per-table metadata: the interned name and the row-id allocator.  Row ids
/// are handed out by `fetch_add` on an atomic, so concurrent inserters into
/// the same table get distinct, gap-free ids without taking any shard lock.
struct TableMeta {
    name: Arc<str>,
    next_row_id: AtomicU64,
    /// Column the table's ordered secondary index covers, if one has been
    /// registered ([`MvStore::create_index`]).
    indexed_column: RwLock<Option<Arc<str>>>,
}

/// One write performed by an in-flight transaction.  The table name is a
/// clone of the interned `Arc<str>` — recording a write allocates no new
/// `String`.
type OwnedWrite = (Arc<str>, RowId, WriteKind);

/// The version chains whose `(table, row)` pair hashes into this shard.
#[derive(Default)]
struct Shard {
    tables: HashMap<Arc<str>, BTreeMap<RowId, VersionChain>>,
    /// This shard's slice of each table's ordered secondary index:
    /// `(key, row id) →` number of live versions of that row carrying the
    /// key.  Refcounts, not presence bits — two versions of one row may
    /// share a key, and an abort must not over-remove.  The index is a
    /// *superset* of any one visibility view (it covers every live
    /// version, committed or not), so range scans re-filter the picked
    /// version precisely; staleness towards "too many candidates" is
    /// harmless.
    indexes: HashMap<Arc<str>, BTreeMap<(i64, RowId), usize>>,
}

impl Shard {
    fn index_add(&mut self, table: &Arc<str>, key: i64, id: RowId) {
        *self
            .indexes
            .entry(Arc::clone(table))
            .or_default()
            .entry((key, id))
            .or_insert(0) += 1;
    }

    fn index_remove(&mut self, table: &str, key: i64, id: RowId) {
        if let Some(index) = self.indexes.get_mut(table) {
            if let Some(count) = index.get_mut(&(key, id)) {
                *count -= 1;
                if *count == 0 {
                    index.remove(&(key, id));
                }
            }
        }
    }
}

type WriteSet = BTreeMap<TxnToken, Vec<OwnedWrite>>;

/// An in-memory multi-version row store, hash-partitioned into shards.
///
/// All methods take `&self`; each shard is internally synchronised with its
/// own read-write lock, so the store can be shared between threads (the
/// threaded benchmark drivers rely on this) and operations on rows in
/// different shards proceed in parallel.
pub struct MvStore {
    /// Interned table names → metadata, sorted so [`MvStore::tables`] is
    /// deterministic.
    registry: RwLock<BTreeMap<Arc<str>, Arc<TableMeta>>>,
    shards: Box<[RwLock<Shard>]>,
    write_sets: Box<[Mutex<WriteSet>]>,
}

impl Default for MvStore {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

fn chain_hash(table: &str, id: RowId) -> u64 {
    let mut hasher = DefaultHasher::new();
    table.hash(&mut hasher);
    id.0.hash(&mut hasher);
    hasher.finish()
}

impl MvStore {
    /// An empty store with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store with an explicit shard count (clamped to at least 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        MvStore {
            registry: RwLock::new(BTreeMap::new()),
            shards: (0..shards).map(|_| RwLock::new(Shard::default())).collect(),
            write_sets: (0..shards).map(|_| Mutex::new(WriteSet::new())).collect(),
        }
    }

    /// Number of shards the store is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, table: &str, id: RowId) -> &RwLock<Shard> {
        &self.shards[(chain_hash(table, id) % self.shards.len() as u64) as usize]
    }

    fn write_set_for(&self, writer: TxnToken) -> &Mutex<WriteSet> {
        &self.write_sets[(writer.0 % self.write_sets.len() as u64) as usize]
    }

    fn meta(&self, table: &str) -> Option<Arc<TableMeta>> {
        self.registry.read().get(table).cloned()
    }

    /// Look up the interned metadata for a table, creating it on first use.
    fn intern(&self, table: &str) -> Arc<TableMeta> {
        if let Some(meta) = self.meta(table) {
            return meta;
        }
        let mut registry = self.registry.write();
        if let Some(meta) = registry.get(table) {
            return Arc::clone(meta);
        }
        let name: Arc<str> = Arc::from(table);
        let meta = Arc::new(TableMeta {
            name: Arc::clone(&name),
            next_row_id: AtomicU64::new(0),
            indexed_column: RwLock::new(None),
        });
        registry.insert(name, Arc::clone(&meta));
        meta
    }

    /// The indexed column of `table`, if an index has been registered.
    pub fn indexed_column(&self, table: &str) -> Option<String> {
        self.meta(table)
            .and_then(|meta| meta.indexed_column.read().as_ref().map(|c| c.to_string()))
    }

    fn indexed_column_arc(&self, table: &str) -> Option<Arc<str>> {
        self.meta(table)
            .and_then(|meta| meta.indexed_column.read().clone())
    }

    /// Register an ordered secondary index over the integer values of
    /// `column`, creating the table on demand and backfilling the keys of
    /// every live version already stored.  Setup-time API: concurrent
    /// writers racing the backfill may be missed — register indexes
    /// before traffic starts.
    pub fn create_index(&self, table: &str, column: &str) {
        let meta = self.intern(table);
        {
            let mut slot = meta.indexed_column.write();
            if slot.as_deref() == Some(column) {
                return;
            }
            *slot = Some(Arc::from(column));
        }
        for shard in self.shards.iter() {
            let mut shard = shard.write();
            let entries: Vec<(i64, RowId)> = shard
                .tables
                .get(&*meta.name)
                .map(|chains| {
                    chains
                        .iter()
                        .flat_map(|(id, chain)| {
                            chain
                                .versions()
                                .iter()
                                .filter_map(|v| v.row.as_ref().and_then(|r| r.get_int(column)))
                                .map(|key| (key, *id))
                                .collect::<Vec<_>>()
                        })
                        .collect()
                })
                .unwrap_or_default();
            let index = shard.indexes.entry(Arc::clone(&meta.name)).or_default();
            index.clear();
            for (key, id) in entries {
                *index.entry((key, id)).or_insert(0) += 1;
            }
        }
    }

    fn record_write(&self, writer: TxnToken, write: OwnedWrite) {
        self.write_set_for(writer)
            .lock()
            .entry(writer)
            .or_default()
            .push(write);
    }

    /// Create a table if it does not already exist.
    pub fn create_table(&self, table: &str) {
        self.intern(table);
    }

    /// All table names.
    pub fn tables(&self) -> Vec<TableName> {
        self.registry.read().keys().map(|k| k.to_string()).collect()
    }

    /// All row ids currently allocated in a table (whatever their
    /// visibility), in ascending order.
    pub fn row_ids(&self, table: &str) -> Vec<RowId> {
        let mut ids: Vec<RowId> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .read()
                    .tables
                    .get(table)
                    .map(|rows| rows.keys().copied().collect::<Vec<_>>())
                    .unwrap_or_default()
            })
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Insert a new row as an uncommitted version by `writer`, returning
    /// its id.  The table is created on demand.
    pub fn insert(&self, table: &str, writer: TxnToken, row: Row) -> RowId {
        let meta = self.intern(table);
        let key = meta
            .indexed_column
            .read()
            .as_deref()
            .and_then(|col| row.get_int(col));
        // Relaxed is enough: the id only needs to be unique, and the shard
        // lock below publishes the chain before any reader can observe it.
        let id = RowId(meta.next_row_id.fetch_add(1, Ordering::Relaxed));
        {
            let mut shard = self.shard_for(table, id).write();
            shard
                .tables
                .entry(Arc::clone(&meta.name))
                .or_default()
                .entry(id)
                .or_default()
                .install(writer, Some(row));
            if let Some(key) = key {
                shard.index_add(&meta.name, key, id);
            }
        }
        self.record_write(writer, (Arc::clone(&meta.name), id, WriteKind::Insert));
        id
    }

    /// Install a new uncommitted version of an existing row.
    pub fn update(
        &self,
        table: &str,
        writer: TxnToken,
        id: RowId,
        row: Row,
    ) -> Result<(), StorageError> {
        self.write_version(table, writer, id, Some(row), WriteKind::Update)
    }

    /// Install an uncommitted tombstone for an existing row.
    pub fn delete(&self, table: &str, writer: TxnToken, id: RowId) -> Result<(), StorageError> {
        self.write_version(table, writer, id, None, WriteKind::Delete)
    }

    fn write_version(
        &self,
        table: &str,
        writer: TxnToken,
        id: RowId,
        row: Option<Row>,
        kind: WriteKind,
    ) -> Result<(), StorageError> {
        let meta = self
            .meta(table)
            .ok_or_else(|| StorageError::NoSuchTable(table.to_string()))?;
        let key = meta
            .indexed_column
            .read()
            .as_deref()
            .and_then(|col| row.as_ref().and_then(|r| r.get_int(col)));
        {
            let mut shard = self.shard_for(table, id).write();
            let chain = shard
                .tables
                .get_mut(table)
                .and_then(|rows| rows.get_mut(&id))
                .ok_or_else(|| StorageError::NoSuchRow(table.to_string(), id))?;
            chain.install(writer, row);
            if let Some(key) = key {
                shard.index_add(&meta.name, key, id);
            }
        }
        self.record_write(writer, (Arc::clone(&meta.name), id, kind));
        Ok(())
    }

    fn read_row<F>(&self, table: &str, id: RowId, pick: F) -> Option<Row>
    where
        F: Fn(&VersionChain) -> Option<Row>,
    {
        let shard = self.shard_for(table, id).read();
        shard
            .tables
            .get(table)
            .and_then(|rows| rows.get(&id))
            .and_then(pick)
    }

    /// Read the most recent version regardless of commit state (a dirty
    /// read).  Returns `None` if the row does not exist or its latest
    /// version is a tombstone.
    pub fn get_latest_any(&self, table: &str, id: RowId) -> Option<Row> {
        self.read_row(table, id, |c| c.latest_any().and_then(|v| v.row.clone()))
    }

    /// Read the most recent committed version.
    pub fn get_latest_committed(&self, table: &str, id: RowId) -> Option<Row> {
        self.read_row(table, id, |c| {
            c.latest_committed().and_then(|v| v.row.clone())
        })
    }

    /// Read the version committed as of `ts`.
    pub fn get_committed_as_of(&self, table: &str, id: RowId, ts: Timestamp) -> Option<Row> {
        self.read_row(table, id, |c| {
            c.committed_as_of(ts).and_then(|v| v.row.clone())
        })
    }

    /// Read with Snapshot Isolation visibility: `reader`'s own uncommitted
    /// write if any, otherwise the version committed as of `start_ts`.
    pub fn get_visible(
        &self,
        table: &str,
        id: RowId,
        reader: TxnToken,
        start_ts: Timestamp,
    ) -> Option<Row> {
        self.read_row(table, id, |c| {
            c.visible_for(reader, start_ts).and_then(|v| v.row.clone())
        })
    }

    /// Visit each shard once, collect the matching rows, and merge into
    /// the pinned scan order (see [`sort_scan_output`]): ascending row id,
    /// or ascending (index key, row id) once the table carries an index.
    fn scan<F>(&self, predicate: &RowPredicate, pick: F) -> Vec<(RowId, Row)>
    where
        F: Fn(&VersionChain) -> Option<Row>,
    {
        let mut rows: Vec<(RowId, Row)> = self
            .shards
            .iter()
            .flat_map(|shard| {
                let shard = shard.read();
                let Some(chains) = shard.tables.get(predicate.table.as_str()) else {
                    return Vec::new();
                };
                chains
                    .iter()
                    .filter_map(|(id, chain)| {
                        pick(chain)
                            .filter(|row| predicate.matches(&predicate.table, row))
                            .map(|row| (*id, row))
                    })
                    .collect()
            })
            .collect();
        sort_scan_output(
            self.indexed_column_arc(&predicate.table).as_deref(),
            &mut rows,
        );
        rows
    }

    /// Range scan over the integer key space of `column`: the rows whose
    /// picked version holds an `Int` value inside `range`, in ascending
    /// `(key, row id)` order.  When the table's ordered index covers
    /// `column` the candidate set comes from an index range probe (the
    /// index covers every live version, so it can only over-approximate —
    /// the picked version is always re-filtered precisely); otherwise the
    /// scan falls back to a full pass with identical results.
    pub fn scan_range(
        &self,
        table: &str,
        column: &str,
        range: &KeyInterval,
        view: ScanView,
    ) -> Vec<(RowId, Row)> {
        if range.is_int_empty() {
            return Vec::new();
        }
        let pick = |chain: &VersionChain| -> Option<Row> {
            match view {
                ScanView::LatestAny => chain.latest_any().and_then(|v| v.row.clone()),
                ScanView::LatestCommitted => chain.latest_committed().and_then(|v| v.row.clone()),
                ScanView::CommittedAsOf(ts) => {
                    chain.committed_as_of(ts).and_then(|v| v.row.clone())
                }
                ScanView::Visible { reader, start_ts } => chain
                    .visible_for(reader, start_ts)
                    .and_then(|v| v.row.clone()),
            }
        };
        let use_index = self.indexed_column_arc(table).as_deref() == Some(column);
        let mut rows: Vec<(i64, RowId, Row)> = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.read();
            let Some(chains) = shard.tables.get(table) else {
                continue;
            };
            if use_index {
                let Some(index) = shard.indexes.get(table) else {
                    continue;
                };
                let lo = (range.lo().unwrap_or(i64::MIN), RowId(0));
                let hi = (range.hi().unwrap_or(i64::MAX), RowId(u64::MAX));
                let mut visited = std::collections::HashSet::new();
                for &(_, id) in index.range(lo..=hi).map(|(entry, _)| entry) {
                    // One row may carry several in-range keys across its
                    // versions; visit it once.
                    if !visited.insert(id) {
                        continue;
                    }
                    if let Some(row) = chains.get(&id).and_then(&pick) {
                        if let Some(key) = row.get_int(column) {
                            if range.contains(key) {
                                rows.push((key, id, row));
                            }
                        }
                    }
                }
            } else {
                for (id, chain) in chains {
                    if let Some(row) = pick(chain) {
                        if let Some(key) = row.get_int(column) {
                            if range.contains(key) {
                                rows.push((key, *id, row));
                            }
                        }
                    }
                }
            }
        }
        rows.sort_unstable_by_key(|(key, id, _)| (*key, *id));
        rows.into_iter().map(|(_, id, row)| (id, row)).collect()
    }

    /// Scan the rows satisfying `predicate` in the latest committed state.
    pub fn scan_latest_committed(&self, predicate: &RowPredicate) -> Vec<(RowId, Row)> {
        self.scan(predicate, |c| {
            c.latest_committed().and_then(|v| v.row.clone())
        })
    }

    /// Scan the rows satisfying `predicate`, dirty reads included.
    pub fn scan_latest_any(&self, predicate: &RowPredicate) -> Vec<(RowId, Row)> {
        self.scan(predicate, |c| c.latest_any().and_then(|v| v.row.clone()))
    }

    /// Scan with Snapshot Isolation visibility.
    pub fn scan_visible(
        &self,
        predicate: &RowPredicate,
        reader: TxnToken,
        start_ts: Timestamp,
    ) -> Vec<(RowId, Row)> {
        self.scan(predicate, |c| {
            c.visible_for(reader, start_ts).and_then(|v| v.row.clone())
        })
    }

    /// Scan the committed state as of `ts`.
    pub fn scan_committed_as_of(
        &self,
        predicate: &RowPredicate,
        ts: Timestamp,
    ) -> Vec<(RowId, Row)> {
        self.scan(predicate, |c| {
            c.committed_as_of(ts).and_then(|v| v.row.clone())
        })
    }

    /// The rows written so far by an in-flight transaction, in write order.
    pub fn writes_of(&self, writer: TxnToken) -> Vec<(TableName, RowId, WriteKind)> {
        self.write_set_for(writer)
            .lock()
            .get(&writer)
            .map(|writes| {
                writes
                    .iter()
                    .map(|(table, id, kind)| (table.to_string(), *id, *kind))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Snapshot of a transaction's write set with the interned names.
    fn owned_writes_of(&self, writer: TxnToken) -> Vec<OwnedWrite> {
        self.write_set_for(writer)
            .lock()
            .get(&writer)
            .cloned()
            .unwrap_or_default()
    }

    /// The First-Committer-Wins check (Section 4.2): returns the first of
    /// `writer`'s written rows that was also written by a transaction that
    /// committed after `start_ts`, if any.  A non-`None` result means
    /// `writer` must abort rather than commit.
    pub fn first_committer_conflict(
        &self,
        writer: TxnToken,
        start_ts: Timestamp,
    ) -> Option<(TableName, RowId)> {
        for (table, id, _) in self.owned_writes_of(writer) {
            let shard = self.shard_for(&table, id).read();
            let conflict = shard
                .tables
                .get(&*table)
                .and_then(|rows| rows.get(&id))
                .unwrap_or_else(|| {
                    panic!(
                        "first_committer_conflict({writer}): write set names {table}{id} but its \
                         version chain is gone — chains must outlive every write-set reference"
                    )
                })
                .committed_after(start_ts, writer);
            if conflict {
                return Some((table.to_string(), id));
            }
        }
        None
    }

    /// True if any row written by `writer` currently has an uncommitted
    /// version installed by a *different* transaction (used by
    /// first-writer-wins style schedulers).
    pub fn has_foreign_uncommitted_on_writes(&self, writer: TxnToken) -> bool {
        self.owned_writes_of(writer).iter().any(|(table, id, _)| {
            let shard = self.shard_for(table, *id).read();
            shard
                .tables
                .get(&**table)
                .and_then(|rows| rows.get(id))
                .unwrap_or_else(|| {
                    panic!(
                        "has_foreign_uncommitted_on_writes({writer}): write set names \
                         {table}{id} but its version chain is gone — chains must outlive \
                         every write-set reference"
                    )
                })
                .has_foreign_uncommitted(writer)
        })
    }

    /// Group a write set by shard index so commit/abort lock each shard
    /// exactly once, in ascending order.
    fn writes_by_shard(&self, writes: &[OwnedWrite]) -> BTreeMap<usize, Vec<(Arc<str>, RowId)>> {
        let mut by_shard: BTreeMap<usize, Vec<(Arc<str>, RowId)>> = BTreeMap::new();
        for (table, id, _) in writes {
            let idx = (chain_hash(table, *id) % self.shards.len() as u64) as usize;
            by_shard
                .entry(idx)
                .or_default()
                .push((Arc::clone(table), *id));
        }
        by_shard
    }

    /// Commit all of `writer`'s versions at timestamp `ts`.
    pub fn commit(&self, writer: TxnToken, ts: Timestamp) {
        let writes = self
            .write_set_for(writer)
            .lock()
            .remove(&writer)
            .unwrap_or_default();
        for (idx, rows) in self.writes_by_shard(&writes) {
            let mut shard = self.shards[idx].write();
            for (table, id) in rows {
                shard
                    .tables
                    .get_mut(&table)
                    .and_then(|rows| rows.get_mut(&id))
                    .unwrap_or_else(|| {
                        panic!(
                            "commit({writer} at {ts}): write set names {table}{id} but shard \
                             {idx} has no version chain for it — every recorded write must \
                             have installed a version"
                        )
                    })
                    .commit(writer, ts);
            }
        }
    }

    /// Roll back all of `writer`'s uncommitted versions (before images
    /// become current again).
    pub fn abort(&self, writer: TxnToken) {
        let writes = self
            .write_set_for(writer)
            .lock()
            .remove(&writer)
            .unwrap_or_default();
        for (idx, rows) in self.writes_by_shard(&writes) {
            let mut shard = self.shards[idx].write();
            for (table, id) in rows {
                let indexed = self
                    .meta(&table)
                    .and_then(|meta| meta.indexed_column.read().clone());
                let chain = shard
                    .tables
                    .get_mut(&table)
                    .and_then(|rows| rows.get_mut(&id))
                    .unwrap_or_else(|| {
                        panic!(
                            "abort({writer}): write set names {table}{id} but shard {idx} has \
                             no version chain for it — rollback would silently leak the \
                             uncommitted version"
                        )
                    });
                // The keys the writer's vanishing versions contributed to
                // the ordered index, collected before the chain drops them.
                let removed: Vec<i64> = indexed
                    .as_deref()
                    .map(|col| {
                        chain
                            .versions()
                            .iter()
                            .filter(|v| !v.is_committed() && v.writer == writer)
                            .filter_map(|v| v.row.as_ref().and_then(|r| r.get_int(col)))
                            .collect()
                    })
                    .unwrap_or_default();
                chain.abort(writer);
                for key in removed {
                    shard.index_remove(&table, key, id);
                }
            }
        }
    }

    /// A read-only snapshot view of the committed state as of `ts`.
    pub fn snapshot(&self, ts: Timestamp) -> crate::snapshot::Snapshot<'_> {
        crate::snapshot::Snapshot::new(self, ts)
    }

    /// Number of rows whose latest committed version exists (i.e. not
    /// deleted) in `table`.
    pub fn committed_row_count(&self, table: &str) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .read()
                    .tables
                    .get(table)
                    .map(|rows| {
                        rows.values()
                            .filter(|c| {
                                c.latest_committed()
                                    .map(|v| !v.is_tombstone())
                                    .unwrap_or(false)
                            })
                            .count()
                    })
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Total number of versions across all chains (storage footprint
    /// metric used by the benches).
    pub fn version_count(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .read()
                    .tables
                    .values()
                    .flat_map(|rows| rows.values())
                    .map(|c| c.len())
                    .sum::<usize>()
            })
            .sum()
    }
}

impl fmt::Debug for MvStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MvStore")
            .field("shards", &self.shards.len())
            .field("tables", &self.registry.read().keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Condition, RowPredicate};

    fn balance_row(v: i64) -> Row {
        Row::new().with("balance", v)
    }

    #[test]
    fn insert_commit_read_cycle() {
        let store = MvStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(50));
        assert!(store.get_latest_committed("accounts", id).is_none());
        assert_eq!(
            store
                .get_latest_any("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(50)
        );
        store.commit(TxnToken(1), Timestamp(1));
        assert_eq!(
            store
                .get_latest_committed("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(50)
        );
    }

    #[test]
    fn update_requires_existing_row() {
        let store = MvStore::new();
        store.create_table("accounts");
        let err = store
            .update("accounts", TxnToken(1), RowId(99), balance_row(1))
            .unwrap_err();
        assert!(matches!(err, StorageError::NoSuchRow(_, _)));
        let err = store
            .update("missing", TxnToken(1), RowId(0), balance_row(1))
            .unwrap_err();
        assert!(matches!(err, StorageError::NoSuchTable(_)));
    }

    #[test]
    fn abort_restores_before_image() {
        let store = MvStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(100));
        store.commit(TxnToken(1), Timestamp(1));
        store
            .update("accounts", TxnToken(2), id, balance_row(999))
            .unwrap();
        assert_eq!(
            store
                .get_latest_any("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(999)
        );
        store.abort(TxnToken(2));
        assert_eq!(
            store
                .get_latest_any("accounts", id)
                .unwrap()
                .get_int("balance"),
            Some(100)
        );
        assert!(store.writes_of(TxnToken(2)).is_empty());
    }

    #[test]
    fn snapshot_reads_ignore_later_commits() {
        let store = MvStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(50));
        store.commit(TxnToken(1), Timestamp(1));
        store
            .update("accounts", TxnToken(2), id, balance_row(10))
            .unwrap();
        store.commit(TxnToken(2), Timestamp(5));

        assert_eq!(
            store
                .get_committed_as_of("accounts", id, Timestamp(1))
                .unwrap()
                .get_int("balance"),
            Some(50)
        );
        assert_eq!(
            store
                .get_committed_as_of("accounts", id, Timestamp(5))
                .unwrap()
                .get_int("balance"),
            Some(10)
        );
        assert_eq!(
            store
                .get_visible("accounts", id, TxnToken(9), Timestamp(2))
                .unwrap()
                .get_int("balance"),
            Some(50)
        );
    }

    #[test]
    fn deleted_rows_disappear_from_committed_reads() {
        let store = MvStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(50));
        store.commit(TxnToken(1), Timestamp(1));
        store.delete("accounts", TxnToken(2), id).unwrap();
        store.commit(TxnToken(2), Timestamp(2));
        assert!(store.get_latest_committed("accounts", id).is_none());
        assert_eq!(store.committed_row_count("accounts"), 0);
        // Time travel still sees it.
        assert!(store
            .get_committed_as_of("accounts", id, Timestamp(1))
            .is_some());
    }

    #[test]
    fn predicate_scans_respect_visibility() {
        let store = MvStore::new();
        let active = RowPredicate::new("employees", Condition::eq("active", true));
        let e1 = store.insert("employees", TxnToken(1), Row::new().with("active", true));
        store.insert("employees", TxnToken(1), Row::new().with("active", false));
        store.commit(TxnToken(1), Timestamp(1));

        // T2 inserts a new active employee but has not committed.
        store.insert("employees", TxnToken(2), Row::new().with("active", true));

        let committed = store.scan_latest_committed(&active);
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].0, e1);

        let dirty = store.scan_latest_any(&active);
        assert_eq!(dirty.len(), 2);

        let si_view = store.scan_visible(&active, TxnToken(3), Timestamp(1));
        assert_eq!(si_view.len(), 1);
        let own_view = store.scan_visible(&active, TxnToken(2), Timestamp(1));
        assert_eq!(own_view.len(), 2);

        store.commit(TxnToken(2), Timestamp(2));
        assert_eq!(store.scan_committed_as_of(&active, Timestamp(1)).len(), 1);
        assert_eq!(store.scan_committed_as_of(&active, Timestamp(2)).len(), 2);
    }

    #[test]
    fn first_committer_conflict_detection() {
        let store = MvStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(100));
        store.commit(TxnToken(1), Timestamp(1));

        // T2 and T3 both start at ts 1 and write the same row.
        store
            .update("accounts", TxnToken(2), id, balance_row(120))
            .unwrap();
        store
            .update("accounts", TxnToken(3), id, balance_row(130))
            .unwrap();
        // T2 commits first.
        store.commit(TxnToken(2), Timestamp(2));
        // T3 must now fail the first-committer-wins check.
        let conflict = store.first_committer_conflict(TxnToken(3), Timestamp(1));
        assert_eq!(conflict, Some(("accounts".to_string(), id)));
        // A transaction with no writes has no conflict.
        assert!(store
            .first_committer_conflict(TxnToken(9), Timestamp(0))
            .is_none());
    }

    #[test]
    fn foreign_uncommitted_write_detection() {
        let store = MvStore::new();
        let id = store.insert("accounts", TxnToken(1), balance_row(100));
        store.commit(TxnToken(1), Timestamp(1));
        store
            .update("accounts", TxnToken(2), id, balance_row(120))
            .unwrap();
        store
            .update("accounts", TxnToken(3), id, balance_row(130))
            .unwrap();
        assert!(store.has_foreign_uncommitted_on_writes(TxnToken(2)));
        assert!(store.has_foreign_uncommitted_on_writes(TxnToken(3)));
        store.abort(TxnToken(2));
        assert!(!store.has_foreign_uncommitted_on_writes(TxnToken(3)));
    }

    #[test]
    fn bookkeeping_counters() {
        let store = MvStore::new();
        assert_eq!(store.version_count(), 0);
        let id = store.insert("t", TxnToken(1), balance_row(1));
        store.commit(TxnToken(1), Timestamp(1));
        store.update("t", TxnToken(2), id, balance_row(2)).unwrap();
        store.commit(TxnToken(2), Timestamp(2));
        assert_eq!(store.version_count(), 2);
        assert_eq!(store.committed_row_count("t"), 1);
        assert_eq!(store.tables(), vec!["t".to_string()]);
        assert_eq!(store.row_ids("t"), vec![id]);
        assert!(store.row_ids("missing").is_empty());
    }

    #[test]
    fn row_ids_are_sequential_and_sorted_across_shards() {
        // With several shards the chains scatter, but id allocation is a
        // per-table counter and row_ids() must come back sorted and
        // gap-free exactly like the single-map store.
        for shards in [1, 2, 7, 16] {
            let store = MvStore::with_shards(shards);
            assert_eq!(store.shard_count(), shards);
            let ids: Vec<RowId> = (0..40)
                .map(|_| store.insert("t", TxnToken(1), balance_row(0)))
                .collect();
            assert_eq!(ids, (0..40).map(RowId).collect::<Vec<_>>());
            assert_eq!(store.row_ids("t"), ids);
        }
    }

    #[test]
    fn row_id_allocation_is_per_table() {
        let store = MvStore::new();
        let a0 = store.insert("a", TxnToken(1), balance_row(0));
        let b0 = store.insert("b", TxnToken(1), balance_row(0));
        let a1 = store.insert("a", TxnToken(1), balance_row(0));
        assert_eq!((a0, b0, a1), (RowId(0), RowId(0), RowId(1)));
    }

    #[test]
    fn scans_merge_shards_in_row_id_order() {
        let store = MvStore::with_shards(4);
        for i in 0..32 {
            store.insert("t", TxnToken(1), balance_row(i));
        }
        store.commit(TxnToken(1), Timestamp(1));
        let all = RowPredicate::whole_table("t");
        let rows = store.scan_latest_committed(&all);
        assert_eq!(rows.len(), 32);
        for (i, (id, row)) in rows.iter().enumerate() {
            assert_eq!(*id, RowId(i as u64));
            assert_eq!(row.get_int("balance"), Some(i as i64));
        }
    }

    #[test]
    fn ordered_index_backfills_and_tracks_writes() {
        let store = MvStore::with_shards(4);
        // Rows exist before the index: create_index must backfill.
        let a = store.insert("t", TxnToken(1), balance_row(30));
        let b = store.insert("t", TxnToken(1), balance_row(10));
        store.commit(TxnToken(1), Timestamp(1));
        store.create_index("t", "balance");
        assert_eq!(store.indexed_column("t").as_deref(), Some("balance"));
        // Re-registering the same column is a no-op.
        store.create_index("t", "balance");

        let all = store.scan_range(
            "t",
            "balance",
            &KeyInterval::everything(),
            ScanView::LatestCommitted,
        );
        assert_eq!(
            all.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![b, a],
            "ascending (key, row id) order"
        );
        let low = store.scan_range(
            "t",
            "balance",
            &KeyInterval::at_most(15),
            ScanView::LatestCommitted,
        );
        assert_eq!(low.iter().map(|(id, _)| *id).collect::<Vec<_>>(), vec![b]);

        // Maintained through update/abort: an aborted rewrite of `a`'s key
        // must leave the index where it was.
        store.update("t", TxnToken(2), a, balance_row(5)).unwrap();
        let dirty = store.scan_range(
            "t",
            "balance",
            &KeyInterval::at_most(15),
            ScanView::LatestAny,
        );
        assert_eq!(
            dirty.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![a, b]
        );
        store.abort(TxnToken(2));
        let after = store.scan_range(
            "t",
            "balance",
            &KeyInterval::at_most(15),
            ScanView::LatestAny,
        );
        assert_eq!(after.iter().map(|(id, _)| *id).collect::<Vec<_>>(), vec![b]);

        // Plain scans over an indexed table come back in key order too,
        // with unkeyed rows after every keyed one.
        let c = store.insert("t", TxnToken(3), Row::new().with("owner", "x"));
        store.commit(TxnToken(3), Timestamp(2));
        let pred = RowPredicate::whole_table("t");
        let scanned = store.scan_latest_committed(&pred);
        assert_eq!(
            scanned.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![b, a, c]
        );
    }

    #[test]
    fn scan_range_views_and_fallback_agree() {
        let store = MvStore::with_shards(4);
        store.create_index("t", "balance");
        let ids: Vec<RowId> = (0..6)
            .map(|i| store.insert("t", TxnToken(1), balance_row(i * 10)))
            .collect();
        store.commit(TxnToken(1), Timestamp(1));
        store
            .update("t", TxnToken(2), ids[0], balance_row(25))
            .unwrap();

        let mid = store.scan_range(
            "t",
            "balance",
            &KeyInterval::range(Some(10), Some(30)),
            ScanView::LatestCommitted,
        );
        assert_eq!(
            mid.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![ids[1], ids[2], ids[3]]
        );
        // The dirty view sees ids[0]'s uncommitted key move into range.
        let dirty = store.scan_range(
            "t",
            "balance",
            &KeyInterval::range(Some(10), Some(30)),
            ScanView::LatestAny,
        );
        assert_eq!(
            dirty.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![ids[1], ids[2], ids[0], ids[3]]
        );
        // SI visibility: the writer sees its own move, others do not.
        let writer_view = store.scan_range(
            "t",
            "balance",
            &KeyInterval::range(Some(10), Some(30)),
            ScanView::Visible {
                reader: TxnToken(2),
                start_ts: Timestamp(1),
            },
        );
        assert_eq!(writer_view.len(), 4);
        let other_view = store.scan_range(
            "t",
            "balance",
            &KeyInterval::range(Some(10), Some(30)),
            ScanView::Visible {
                reader: TxnToken(9),
                start_ts: Timestamp(1),
            },
        );
        assert_eq!(other_view.len(), 3);
        store.abort(TxnToken(2));

        // An unindexed column takes the full-pass fallback with the same
        // contract; an empty interval is empty either way.
        assert!(store
            .scan_range("t", "balance", &KeyInterval::empty(), ScanView::LatestAny)
            .is_empty());
        let fallback = store.scan_range(
            "t",
            "missing",
            &KeyInterval::everything(),
            ScanView::LatestAny,
        );
        assert!(fallback.is_empty());
    }

    #[test]
    fn single_shard_store_still_works() {
        let store = MvStore::with_shards(0); // clamped to 1
        assert_eq!(store.shard_count(), 1);
        let id = store.insert("t", TxnToken(1), balance_row(5));
        store.commit(TxnToken(1), Timestamp(1));
        assert_eq!(
            store
                .get_latest_committed("t", id)
                .unwrap()
                .get_int("balance"),
            Some(5)
        );
    }
}
