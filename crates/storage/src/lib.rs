//! # critique-storage
//!
//! A small multi-version row store: the storage substrate underneath every
//! scheduler in the workspace.
//!
//! The paper's isolation levels place requirements on *when a transaction
//! may observe which version of a data item*:
//!
//! * the locking levels of Table 2 operate on the latest version, relying
//!   on locks to prevent conflicting access — but they still need
//!   **before images** so that a rollback can undo updates (the paper's
//!   P0/recovery argument in Section 3);
//! * Snapshot Isolation (Section 4.2) needs **version chains** with commit
//!   timestamps so a transaction can read the committed state as of its
//!   start timestamp, and needs to know which items were written by
//!   transactions that committed during its execution interval
//!   (First-Committer-Wins);
//! * Oracle Read Consistency (Section 4.3) needs the same chains, queried
//!   at statement granularity.
//!
//! The store keeps the visibility rules deliberately simple — tables →
//! rows → version chains, plus predicate scans over row values so the
//! phantom scenarios can be executed rather than merely narrated.  Those
//! rules are fixed by the [`backend::StorageBackend`] trait; the
//! *representation* is pluggable:
//!
//! * [`store::MvStore`] (default) — version chains hash-partitioned into
//!   shards with per-table atomic row-id allocation, so concurrent
//!   transactions on different rows never serialise on a global lock;
//! * [`logstore::LogStore`] — an append-only log of versioned records in
//!   segments behind a per-table hash index, with watermark-triggered
//!   compaction and optional payload spill to a temp file.
//!
//! A differential property test (`tests/backend_equivalence.rs`) replays
//! identical op sequences against both and requires identical answers
//! from every read surface, and the engine-level conformance exerciser
//! proves the Table 3/4 verdicts hold per backend.
//!
//! ```
//! use critique_storage::prelude::*;
//!
//! let store = MvStore::new();
//! let ts = TimestampOracle::new();
//!
//! // Transaction 1 inserts a row and commits at timestamp 1.
//! let t1 = TxnToken(1);
//! let row = Row::new().with("balance", 50);
//! let id = store.insert("accounts", t1, row);
//! store.commit(t1, ts.next());
//!
//! // A later snapshot sees the committed row.
//! let snap = store.snapshot(ts.current());
//! assert_eq!(snap.get("accounts", id).unwrap().get_int("balance"), Some(50));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// `unsafe` is denied crate-wide and granted back only to the handful of
// audited sites in `ebr`, `version`, and `store` that implement the
// epoch-pinned lock-free read path; every such block documents the
// invariant that makes it sound.  Everything else stays safe Rust.
#![deny(unsafe_code)]

pub mod backend;
pub mod ebr;
pub mod logstore;
pub mod predicate;
pub mod row;
pub mod snapshot;
pub mod store;
pub mod timestamp;
pub mod value;
pub mod version;

pub use crate::backend::{BackendKind, Durability, GroupCommit, ScanView, StorageBackend};
pub use crate::ebr::{Ebr, Guard, ReclamationStats};
pub use crate::logstore::{LogStore, LogStoreConfig};
pub use crate::predicate::{Comparison, Condition, KeyInterval, RowPredicate};
pub use crate::row::{Row, RowId};
pub use crate::snapshot::Snapshot;
pub use crate::store::{
    MvReadStats, MvStore, ReadPath, StorageError, TableName, WriteKind, DEFAULT_SHARDS,
};
pub use crate::timestamp::{Timestamp, TimestampOracle, TxnToken};
pub use crate::value::ColumnValue;
pub use crate::version::{ChainHead, Version, VersionChain, VersionNode};

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::backend::{BackendKind, Durability, GroupCommit, ScanView, StorageBackend};
    pub use crate::ebr::{Ebr, Guard, ReclamationStats};
    pub use crate::logstore::{LogStore, LogStoreConfig};
    pub use crate::predicate::{Comparison, Condition, KeyInterval, RowPredicate};
    pub use crate::row::{Row, RowId};
    pub use crate::snapshot::Snapshot;
    pub use crate::store::{
        MvReadStats, MvStore, ReadPath, StorageError, TableName, WriteKind, DEFAULT_SHARDS,
    };
    pub use crate::timestamp::{Timestamp, TimestampOracle, TxnToken};
    pub use crate::value::ColumnValue;
    pub use crate::version::{ChainHead, Version, VersionChain, VersionNode};
}
