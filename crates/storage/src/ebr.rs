//! Hand-rolled epoch-based reclamation (EBR): the memory-safety substrate
//! under the lock-free read path of [`crate::store::MvStore`].
//!
//! Multiversion reads never need to block — but once readers traverse
//! version chains without taking the shard lock, a writer that unlinks an
//! aborted version can no longer free it immediately: a reader may still be
//! half-way down the chain holding a pointer to it.  The classic answer
//! (Fraser's epoch scheme, the shape crossbeam-epoch implements — we ship
//! offline shims, so this is a from-scratch implementation) is:
//!
//! * a **global epoch** counter that only ever advances;
//! * readers **pin** the current epoch in a shared slot for the duration of
//!   one operation and clear it when done — pinning is wait-free in the
//!   common case (one CAS on the thread's home slot);
//! * writers **retire** unlinked nodes onto a garbage bag tagged with the
//!   epoch current at retirement — the node is unreachable from the data
//!   structure, but not yet freed;
//! * a bag is **reclaimed** only once the global epoch has advanced **two
//!   steps** past its tag.  Advancing from `e` to `e + 1` requires every
//!   pinned slot to read exactly `e`, so by the time `tag + 2` is reached
//!   every reader that could have observed the node has unpinned.
//!
//! Why two steps is enough: a reader that can still hold a reference to a
//! retired node must have pinned *before* the node was unlinked, hence with
//! a slot value `v ≤ tag` (the global epoch is monotonic and the tag is
//! read after the unlink).  The advance `tag → tag + 1` may overlap that
//! reader (its slot can equal `tag`), but the advance `tag + 1 → tag + 2`
//! cannot happen until the reader's slot — frozen at `v ≤ tag ≠ tag + 1` —
//! is cleared.  On top of the epoch math, `Ebr::reclaim` refuses to free
//! any bag while *any* nonzero slot is at or before the bag's tag: slot
//! values can be transiently stale (a pin writes its claimed epoch before
//! re-verifying the global), so the conservative check defers the bag
//! rather than trusting the arithmetic alone.
//!
//! The counters exposed by [`Ebr::stats`] turn the safety argument into a
//! test invariant: `reclaimed_while_pinned` counts nodes freed before their
//! grace period elapsed and must stay **zero** (the reclamation storm test
//! asserts it), while `reclaim_deferrals` shows the conservative check
//! doing its job under contention.

use parking_lot::Mutex;
use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};

/// Number of pin slots.  Far more than any test or bench drives; if every
/// slot is momentarily taken, [`Ebr::pin`] spins until one frees (slots are
/// held only for the duration of a single read operation).
const SLOTS: usize = 64;

/// Slot value meaning "unpinned".  The global epoch starts at 1 so a live
/// pin can never legitimately store 0.
const FREE: u64 = 0;

/// A pin slot on its own cache line, so readers hammering different slots
/// do not false-share.
#[repr(align(64))]
struct Slot(AtomicU64);

/// One retired allocation: a type-erased pointer plus the monomorphised
/// drop function that frees it.
///
/// # Safety
///
/// `ptr` must come from `Box::into_raw` of the exact `T` that `drop_fn`
/// reconstructs — [`Ebr::retire`] is the only constructor and enforces it,
/// together with `T: Send` (the free may run on any thread).
struct Garbage {
    ptr: *mut (),
    drop_fn: unsafe fn(*mut ()),
}

// SAFETY: `Garbage` is only built by `Ebr::retire`, whose `T: Send` bound
// guarantees the pointee may be dropped from another thread; the raw
// pointer is owned (unlinked from every shared structure before retire).
#[allow(unsafe_code)]
unsafe impl Send for Garbage {}

/// Reconstruct and drop the `Box<T>` behind a retired pointer.
///
/// # Safety
///
/// `ptr` must be a `Box::into_raw(Box<T>)` for this exact `T`, not freed
/// before, and unreachable from any live reader (guaranteed by the epoch
/// grace period).
#[allow(unsafe_code)]
unsafe fn drop_box<T>(ptr: *mut ()) {
    drop(unsafe { Box::from_raw(ptr.cast::<T>()) });
}

/// Retired allocations tagged with the epoch current at retirement.
struct Bag {
    epoch: u64,
    items: Vec<Garbage>,
}

/// Monotonic counters describing reclamation behaviour — the observable
/// half of the safety argument.  All counts are cheap relaxed atomics and
/// always compiled (the `epoch_stress` CI leg asserts them in release
/// mode).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ReclamationStats {
    /// Allocations handed to [`Ebr::retire`] so far.
    pub retired: u64,
    /// Retired allocations actually freed so far.
    pub reclaimed: u64,
    /// Times a grace-period-expired bag was kept because some slot still
    /// pinned an epoch at or before its tag (the conservative re-check).
    pub deferrals: u64,
    /// Allocations freed **before** their grace period elapsed.  This is
    /// the use-after-free invariant: it must always read zero, and the
    /// reclamation storm test asserts exactly that.
    pub reclaimed_while_pinned: u64,
}

/// An epoch-based reclamation domain.  One instance per [`crate::MvStore`]
/// (never a global static, so parallel tests cannot observe each other's
/// counters).
pub struct Ebr {
    /// The global epoch; starts at 1 and only advances.
    global: AtomicU64,
    slots: Box<[Slot]>,
    bags: Mutex<Vec<Bag>>,
    retired: AtomicU64,
    reclaimed: AtomicU64,
    deferrals: AtomicU64,
    reclaimed_while_pinned: AtomicU64,
}

impl Default for Ebr {
    fn default() -> Self {
        Self::new()
    }
}

/// Hands out stable per-thread home-slot hints so that a thread's pins
/// usually land on the same cache line without a hash of `ThreadId`.
static NEXT_HOME: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static HOME_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn home_slot() -> usize {
    HOME_SLOT.with(|h| {
        if h.get() == usize::MAX {
            h.set(NEXT_HOME.fetch_add(1, Ordering::Relaxed));
        }
        h.get()
    })
}

impl Ebr {
    /// A fresh domain with no pins and no garbage.
    pub fn new() -> Self {
        Ebr {
            global: AtomicU64::new(1),
            slots: (0..SLOTS).map(|_| Slot(AtomicU64::new(FREE))).collect(),
            bags: Mutex::new(Vec::new()),
            retired: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            deferrals: AtomicU64::new(0),
            reclaimed_while_pinned: AtomicU64::new(0),
        }
    }

    /// Pin the current epoch for the duration of the returned [`Guard`].
    ///
    /// Claims a free slot (home slot first, linear probe after), publishes
    /// the observed global epoch into it, and re-verifies the global did
    /// not advance in between — if it did, the slot is re-stamped with the
    /// newer epoch and re-verified.  Without the verify loop a reader could
    /// pin an epoch that reclamation already considers drained.
    pub fn pin(&self) -> Guard<'_> {
        let start = home_slot() % SLOTS;
        let mut epoch = self.global.load(Ordering::SeqCst);
        let slot = 'claim: loop {
            for probe in 0..SLOTS {
                let idx = (start + probe) % SLOTS;
                if self.slots[idx]
                    .0
                    .compare_exchange(FREE, epoch, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    break 'claim idx;
                }
            }
            std::hint::spin_loop();
            epoch = self.global.load(Ordering::SeqCst);
        };
        loop {
            fence(Ordering::SeqCst);
            let now = self.global.load(Ordering::SeqCst);
            if now == epoch {
                break;
            }
            epoch = now;
            self.slots[slot].0.store(epoch, Ordering::SeqCst);
        }
        Guard {
            ebr: self,
            slot,
            _not_send: PhantomData,
        }
    }

    /// Retire an owned, already-unlinked allocation.  The pointee is freed
    /// only after every epoch pinned at or before the current one has been
    /// released.
    ///
    /// The caller must guarantee `ptr` came from `Box::into_raw`, is
    /// unreachable from the shared structure (unlinked before this call),
    /// and is retired exactly once.
    pub fn retire<T: Send>(&self, ptr: *mut T) {
        let garbage = Garbage {
            ptr: ptr.cast::<()>(),
            drop_fn: drop_box::<T>,
        };
        let epoch = self.global.load(Ordering::SeqCst);
        {
            let mut bags = self.bags.lock();
            match bags.iter_mut().find(|bag| bag.epoch == epoch) {
                Some(bag) => bag.items.push(garbage),
                None => bags.push(Bag {
                    epoch,
                    items: vec![garbage],
                }),
            }
        }
        self.retired.fetch_add(1, Ordering::Relaxed);
        self.flush();
    }

    /// Repeatedly attempt an epoch advance and reclaim every bag whose
    /// grace period has elapsed, until a pass frees nothing more.  On a
    /// quiescent domain (no pins) this drains *all* garbage: each pass
    /// advances the global epoch by one, and a bag tagged at the current
    /// epoch needs two advances before its grace period has provably
    /// elapsed.  Called from every [`Ebr::retire`] (where the first pass
    /// almost always suffices); exposed so quiescent callers (tests,
    /// shutdown paths) can drain garbage without producing more.
    pub fn flush(&self) {
        // A bag retired this instant is tagged with the current global
        // epoch and becomes freeable only once the global is two ahead of
        // that tag, so two advance+reclaim passes are always attempted;
        // past that, keep going only while passes actually free garbage
        // (bounded: continuation requires `reclaimed` to grow, and it is
        // capped by `retired`).  On a quiescent domain this drains every
        // bag; with readers pinned, undrainable bags are simply kept.
        for _ in 0..2 {
            self.try_advance();
            self.reclaim();
        }
        loop {
            let before = self.reclaimed.load(Ordering::Relaxed);
            self.try_advance();
            self.reclaim();
            if self.reclaimed.load(Ordering::Relaxed) == before {
                return;
            }
        }
    }

    /// Advance the global epoch iff every pinned slot reads exactly the
    /// current epoch.  A lost CAS race just means someone else advanced.
    fn try_advance(&self) {
        let epoch = self.global.load(Ordering::SeqCst);
        for slot in self.slots.iter() {
            let v = slot.0.load(Ordering::SeqCst);
            if v != FREE && v != epoch {
                return;
            }
        }
        let _ = self
            .global
            .compare_exchange(epoch, epoch + 1, Ordering::SeqCst, Ordering::SeqCst);
    }

    /// True if any slot currently pins an epoch at or before `epoch`.
    fn any_pin_at_or_before(&self, epoch: u64) -> bool {
        self.slots.iter().any(|slot| {
            let v = slot.0.load(Ordering::SeqCst);
            v != FREE && v <= epoch
        })
    }

    /// Free every bag that is (a) two epochs behind the global and (b) not
    /// pinned by any slot at or before its tag.  Bags failing (b) despite
    /// passing (a) are *deferred*, never freed — that conservatism is what
    /// keeps `reclaimed_while_pinned` structurally zero.
    fn reclaim(&self) {
        let global = self.global.load(Ordering::SeqCst);
        let mut bags = self.bags.lock();
        let mut kept = Vec::with_capacity(bags.len());
        for bag in bags.drain(..) {
            if bag.epoch + 2 > global {
                kept.push(bag);
            } else if self.any_pin_at_or_before(bag.epoch) {
                self.deferrals.fetch_add(1, Ordering::Relaxed);
                kept.push(bag);
            } else {
                self.free_bag(bag, global);
            }
        }
        *bags = kept;
    }

    /// Free one bag's items, accounting the safety invariant at the moment
    /// of the free: if the grace period had *not* elapsed this would be a
    /// use-after-free, and `reclaimed_while_pinned` records it instead of
    /// hiding it.  (The epoch is monotonic, so this re-check is race-free —
    /// unlike the slot scan, which can observe transiently stale claims and
    /// therefore only ever defers.)
    fn free_bag(&self, bag: Bag, global: u64) {
        let n = bag.items.len() as u64;
        if bag.epoch + 2 > global {
            self.reclaimed_while_pinned.fetch_add(n, Ordering::Relaxed);
        }
        for garbage in bag.items {
            // SAFETY: `garbage` was built by `retire` from a uniquely-owned
            // `Box::into_raw` pointer, unlinked before retirement; the bag's
            // grace period has elapsed (checked by `reclaim`), so no pinned
            // reader can still hold a reference to the pointee.
            #[allow(unsafe_code)]
            unsafe {
                (garbage.drop_fn)(garbage.ptr)
            };
        }
        self.reclaimed.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot of the reclamation counters.
    pub fn stats(&self) -> ReclamationStats {
        ReclamationStats {
            retired: self.retired.load(Ordering::Relaxed),
            reclaimed: self.reclaimed.load(Ordering::Relaxed),
            deferrals: self.deferrals.load(Ordering::Relaxed),
            reclaimed_while_pinned: self.reclaimed_while_pinned.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Ebr {
    fn drop(&mut self) {
        // `&mut self` proves no `Guard` borrows the domain, so every bag's
        // readers are gone regardless of epoch arithmetic; free directly.
        let bags = std::mem::take(&mut *self.bags.lock());
        for bag in bags {
            for garbage in bag.items {
                // SAFETY: same ownership contract as `free_bag`; exclusive
                // access (`&mut self`) rules out any live pin.
                #[allow(unsafe_code)]
                unsafe {
                    (garbage.drop_fn)(garbage.ptr)
                };
            }
        }
    }
}

impl std::fmt::Debug for Ebr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ebr")
            .field("global", &self.global.load(Ordering::SeqCst))
            .field("stats", &self.stats())
            .finish()
    }
}

/// Proof that the holding thread has an epoch pinned: lock-free readers
/// take one per operation and thread it (by reference) through every chain
/// traversal, tying the lifetime of the references they return to the pin.
///
/// Dropping the guard releases the slot.  Guards are intentionally neither
/// `Send` nor `Sync` — a pin protects the pinning thread only.
pub struct Guard<'a> {
    ebr: &'a Ebr,
    slot: usize,
    _not_send: PhantomData<*const ()>,
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        self.ebr.slots[self.slot].0.store(FREE, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for Guard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Guard").field("slot", &self.slot).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    /// A retire payload whose drop is observable.
    struct DropFlag(Arc<AtomicUsize>);

    impl Drop for DropFlag {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn retired_garbage_is_freed_after_two_advances() {
        let ebr = Ebr::new();
        let drops = Arc::new(AtomicUsize::new(0));
        ebr.retire(Box::into_raw(Box::new(DropFlag(Arc::clone(&drops)))));
        // One retire triggers at most one advance; drain with flushes.
        ebr.flush();
        ebr.flush();
        ebr.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        let stats = ebr.stats();
        assert_eq!(stats.retired, 1);
        assert_eq!(stats.reclaimed, 1);
        assert_eq!(stats.reclaimed_while_pinned, 0);
    }

    #[test]
    fn a_pin_blocks_reclamation_until_released() {
        let ebr = Ebr::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let guard = ebr.pin();
        ebr.retire(Box::into_raw(Box::new(DropFlag(Arc::clone(&drops)))));
        for _ in 0..8 {
            ebr.flush();
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "a live pin at the retire epoch must hold the bag"
        );
        drop(guard);
        for _ in 0..4 {
            ebr.flush();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        assert_eq!(ebr.stats().reclaimed_while_pinned, 0);
    }

    #[test]
    fn dropping_the_domain_frees_outstanding_garbage() {
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let ebr = Ebr::new();
            for _ in 0..5 {
                ebr.retire(Box::into_raw(Box::new(DropFlag(Arc::clone(&drops)))));
            }
            // No flushing: some garbage likely still sits in bags.
        }
        assert_eq!(drops.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn pins_are_reentrant_across_slots() {
        let ebr = Ebr::new();
        let g1 = ebr.pin();
        let g2 = ebr.pin();
        drop(g1);
        drop(g2);
        // All slots free again: an advance must succeed.
        let before = ebr.global.load(Ordering::SeqCst);
        ebr.try_advance();
        assert_eq!(ebr.global.load(Ordering::SeqCst), before + 1);
    }

    #[test]
    fn threaded_retire_storm_loses_nothing() {
        let ebr = Arc::new(Ebr::new());
        let drops = Arc::new(AtomicUsize::new(0));
        let total = 4 * 200;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let ebr = Arc::clone(&ebr);
                let drops = Arc::clone(&drops);
                scope.spawn(move || {
                    for _ in 0..200 {
                        let _guard = ebr.pin();
                        ebr.retire(Box::into_raw(Box::new(DropFlag(Arc::clone(&drops)))));
                    }
                });
            }
        });
        let stats = ebr.stats();
        assert_eq!(stats.retired, total);
        assert_eq!(stats.reclaimed_while_pinned, 0);
        drop(ebr);
        assert_eq!(drops.load(Ordering::SeqCst) as u64, total);
    }
}
